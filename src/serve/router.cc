#include "serve/router.h"

#include <chrono>
#include <memory>
#include <utility>

#include "ingest/delta.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "serve/serve_metrics.h"
#include "serve/wire.h"

namespace prox {
namespace serve {

namespace {

HttpResponse JsonResponse(int status, const JsonValue& doc) {
  HttpResponse response;
  response.status = status;
  response.body = WriteJson(doc);
  response.body.push_back('\n');
  return response;
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForCode(status.code()), StatusToJson(status));
}

HttpResponse SimpleError(int status, const std::string& message) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(StatusReason(status)));
  error.Set("message", JsonValue::Str(message));
  JsonValue doc = JsonValue::Object();
  doc.Set("error", std::move(error));
  return JsonResponse(status, doc);
}

/// Bounded-cardinality route label for prox_serve_requests_total.
const std::string& RouteLabel(const HttpRequest& request) {
  static const std::string kSelect = "/v1/select";
  static const std::string kSummarize = "/v1/summarize";
  static const std::string kIngest = "/v1/ingest";
  static const std::string kGroups = "/v1/summary/groups";
  static const std::string kEvaluate = "/v1/evaluate";
  static const std::string kDebugRequests = "/v1/debug/requests";
  static const std::string kHealthz = "/healthz";
  static const std::string kMetrics = "/metrics";
  static const std::string kOther = "other";
  if (request.target == kSelect) return kSelect;
  if (request.target == kSummarize) return kSummarize;
  if (request.target == kIngest) return kIngest;
  if (request.target == kGroups) return kGroups;
  if (request.target == kEvaluate) return kEvaluate;
  if (request.target == kDebugRequests) return kDebugRequests;
  if (request.target == kHealthz) return kHealthz;
  if (request.target == kMetrics) return kMetrics;
  return kOther;
}

/// The X-Prox-Cache value a handler attached, or "".
std::string CacheOutcome(const HttpResponse& response) {
  for (const auto& [name, value] : response.headers) {
    if (name == "X-Prox-Cache") return value;
  }
  return std::string();
}

int64_t WallClockUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

JsonValue SpanToJson(const obs::SpanRecord& span) {
  JsonValue doc = JsonValue::Object();
  doc.Set("id", JsonValue::Int(static_cast<int64_t>(span.id)));
  doc.Set("parent", JsonValue::Int(static_cast<int64_t>(span.parent_id)));
  doc.Set("depth", JsonValue::Int(span.depth));
  doc.Set("name", JsonValue::Str(span.name));
  doc.Set("start_nanos", JsonValue::Int(span.start_nanos));
  doc.Set("duration_nanos", JsonValue::Int(span.duration_nanos));
  return doc;
}

JsonValue RequestRecordToJson(const obs::RequestRecord& record) {
  JsonValue doc = JsonValue::Object();
  doc.Set("trace_id", JsonValue::Str(record.trace_id));
  doc.Set("method", JsonValue::Str(record.method));
  doc.Set("path", JsonValue::Str(record.path));
  doc.Set("status", JsonValue::Int(record.status));
  doc.Set("bytes", JsonValue::Int(static_cast<int64_t>(record.bytes)));
  doc.Set("latency_nanos", JsonValue::Int(record.latency_nanos));
  doc.Set("start_unix_ms", JsonValue::Int(record.start_unix_ms));
  doc.Set("cache", JsonValue::Str(record.cache));
  doc.Set("spans_dropped",
          JsonValue::Int(static_cast<int64_t>(record.spans_dropped)));
  JsonValue spans = JsonValue::Array();
  for (const obs::SpanRecord& span : record.spans) {
    spans.Append(SpanToJson(span));
  }
  doc.Set("spans", std::move(spans));
  return doc;
}

}  // namespace

Router::Router(ProxSession* session, SummaryCache* cache, Options options)
    : session_(session),
      cache_(cache),
      options_(options),
      route_stats_(options.route_stats),
      recorder_(options.recorder),
      fingerprint_(session->fingerprint()),
      selection_key_(SelectAllKey()),
      maintainer_(session) {
  // The session starts with the whole provenance selected, so a summarize
  // with no prior select is well-defined (and cacheable under "all").
  session_->SelectAll();
}

HttpResponse Router::Handle(const HttpRequest& request) {
  const std::string& route = RouteLabel(request);
  ServeRequests(route)->Increment();
  static obs::Histogram* duration = ServeDuration();

  if (!obs::Enabled()) {
    // Kill switch: no context, no trace header, no log, no recorder —
    // the request costs what it did before tracing existed.
    HttpResponse response = Dispatch(request);
    ServeResponses(response.status)->Increment();
    return response;
  }

  obs::RequestContext context =
      obs::RequestContext::FromTraceparent(request.Header("traceparent"));
  HttpResponse response;
  int64_t latency_nanos = 0;
  {
    // Scope outlives the span close so serve.request itself is collected.
    obs::RequestScope scope(&context);
    obs::TraceSpan span("serve.request");
    response = Dispatch(request);
    latency_nanos = span.Close();
  }

  const std::string trace_hex = context.trace_id().ToHex();
  response.headers.emplace_back("X-Prox-Trace-Id", trace_hex);
  ServeResponses(response.status)->Increment();
  duration->Observe(static_cast<double>(latency_nanos));
  route_stats_.Observe(route, latency_nanos, trace_hex);

  const std::string cache = CacheOutcome(response);
  if (obs::AccessLogEnabled()) {
    obs::AccessLogRecord line;
    line.method = request.method;
    line.path = request.target;
    line.status = response.status;
    line.bytes = response.body.size();
    line.latency_us = latency_nanos / 1000;
    line.trace_id = trace_hex;
    line.cache = cache;
    obs::WriteAccessLog(line);
  }

  obs::RequestRecord record;
  record.trace_id = trace_hex;
  record.method = request.method;
  record.path = request.target;
  record.status = response.status;
  record.bytes = response.body.size();
  record.latency_nanos = latency_nanos;
  record.start_unix_ms = WallClockUnixMs();
  record.cache = cache;
  record.spans_dropped = context.spans_dropped();
  record.spans = context.TakeSpans();
  recorder_.Record(std::move(record));
  return response;
}

HttpResponse Router::Dispatch(const HttpRequest& request) {
  HttpResponse response;
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      response = SimpleError(405, "use GET");
    } else {
      JsonValue doc = JsonValue::Object();
      doc.Set("status", JsonValue::Str("ok"));
      doc.Set("dataset_fingerprint",
              JsonValue::Str(dataset_fingerprint()));
      response = JsonResponse(200, doc);
    }
  } else if (request.target == "/metrics") {
    response = request.method == "GET" ? HandleMetrics()
                                       : SimpleError(405, "use GET");
  } else if (request.target == "/v1/select") {
    response = request.method == "POST" ? HandleSelect(request)
                                        : SimpleError(405, "use POST");
  } else if (request.target == "/v1/summarize") {
    response = request.method == "POST" ? HandleSummarize(request)
                                        : SimpleError(405, "use POST");
  } else if (request.target == "/v1/ingest") {
    response = request.method == "POST" ? HandleIngest(request)
                                        : SimpleError(405, "use POST");
  } else if (request.target == "/v1/summary/groups") {
    response = request.method == "GET" ? HandleGroups()
                                       : SimpleError(405, "use GET");
  } else if (request.target == "/v1/evaluate") {
    response = request.method == "POST" ? HandleEvaluate(request)
                                        : SimpleError(405, "use POST");
  } else if (request.target == "/v1/debug/requests" &&
             options_.debug_endpoints) {
    // Without the flag the route falls through to the 404 below, exactly
    // as if it did not exist.
    response = request.method == "GET" ? HandleDebugRequests()
                                       : SimpleError(405, "use GET");
  } else {
    response = SimpleError(404, "no such endpoint: " + request.target);
  }
  return response;
}

HttpResponse Router::HandleSelect(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  bool select_all = false;
  Result<SelectionCriteria> criteria =
      SelectionCriteriaFromJson(body.value(), &select_all);
  if (!criteria.ok()) return ErrorResponse(criteria.status());

  std::lock_guard<std::mutex> lock(mu_);
  int64_t selected_size = 0;
  if (select_all) {
    selected_size = session_->SelectAll();
    selection_key_ = SelectAllKey();
  } else {
    Result<int64_t> size = session_->Select(criteria.value());
    if (!size.ok()) return ErrorResponse(size.status());
    selected_size = size.value();
    selection_key_ = CanonicalSelectionKey(criteria.value());
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("selected_size", JsonValue::Int(selected_size));
  doc.Set("selection_key", JsonValue::Str(selection_key_));
  return JsonResponse(200, doc);
}

HttpResponse Router::HandleSummarize(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  Result<SummarizationRequest> parsed =
      SummarizationRequestFromJson(body.value());
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const SummarizationRequest& summarize_request = parsed.value();
  if (Status valid = summarize_request.Validate(); !valid.ok()) {
    return ErrorResponse(valid);
  }

  // Fast path: a racy snapshot of the selection key is fine — the cache
  // key embeds it, so a stale snapshot can only yield a miss or a hit on
  // the stale selection's (still correct) bytes.
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    key = SummaryCacheKey(fingerprint_, selection_key_, summarize_request);
  }
  if (std::shared_ptr<const std::string> cached = cache_->Get(key)) {
    HttpResponse response;
    response.body = *cached;
    response.headers.emplace_back("X-Prox-Cache", "hit");
    return response;
  }

  // Cold path: compute under the router mutex so (a) the key matches the
  // selection the run uses even if a /v1/select raced in, and (b)
  // concurrent identical requests run Algorithm 1 once — the double-check
  // below turns the rest into hits, which keeps their bodies
  // byte-identical (reruns on the same registry would mint "#k"-suffixed
  // summary names).
  std::lock_guard<std::mutex> lock(mu_);
  key = SummaryCacheKey(fingerprint_, selection_key_, summarize_request);
  if (std::shared_ptr<const std::string> cached = cache_->Get(key)) {
    HttpResponse response;
    response.body = *cached;
    response.headers.emplace_back("X-Prox-Cache", "hit");
    return response;
  }
  Result<int64_t> size = session_->Summarize(summarize_request);
  if (!size.ok()) return ErrorResponse(size.status());

  JsonValue doc = SummaryOutcomeToJson(*session_->outcome(),
                                       *session_->dataset().registry);
  auto rendered = std::make_shared<std::string>(WriteJson(doc));
  rendered->push_back('\n');
  cache_->Put(key, rendered);

  HttpResponse response;
  response.body = *rendered;
  response.headers.emplace_back("X-Prox-Cache", "miss");
  return response;
}

HttpResponse Router::HandleIngest(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  Result<ingest::DeltaBatch> batch = ingest::DeltaBatchFromJson(body.value());
  if (!batch.ok()) return ErrorResponse(batch.status());

  // The optional "resummarize" directive: `true` re-summarizes with
  // default knobs, an object carries the same knobs as /v1/summarize.
  bool resummarize = false;
  SummarizationRequest summarize_request;
  if (const JsonValue* directive = body.value().Find("resummarize")) {
    if (directive->is_bool()) {
      resummarize = directive->bool_value();
    } else if (directive->is_object()) {
      resummarize = true;
      Result<SummarizationRequest> parsed =
          SummarizationRequestFromJson(*directive);
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      summarize_request = parsed.value();
    } else {
      return ErrorResponse(Status::InvalidArgument(
          "field 'resummarize' must be a bool or an object"));
    }
    if (Status valid = summarize_request.Validate(); !valid.ok()) {
      return ErrorResponse(valid);
    }
  }

  // Single-flight with /v1/summarize: the whole apply (and the optional
  // re-summarize) runs under the router mutex, so a concurrent summarize
  // either keys against the pre-ingest fingerprint (its cached bytes stay
  // correct for that dataset version) or waits and sees the new one.
  std::lock_guard<std::mutex> lock(mu_);
  Result<ingest::ApplyReceipt> receipt = maintainer_.Ingest(batch.value());
  if (!receipt.ok()) return ErrorResponse(receipt.status());
  // Chaining the fingerprint retires every cache entry keyed under the
  // old dataset version without touching the cache itself.
  fingerprint_ = session_->fingerprint();
  selection_key_ = SelectAllKey();

  JsonValue doc = ingest::ApplyReceiptToJson(receipt.value());
  doc.Set("fingerprint", JsonValue::Str(fingerprint_));

  if (resummarize) {
    Result<ingest::MaintainReport> maintained =
        maintainer_.Resummarize(summarize_request);
    if (!maintained.ok()) return ErrorResponse(maintained.status());
    const ingest::MaintainReport& report = maintained.value();

    // Publish the fresh summary under the post-ingest key so the next
    // /v1/summarize with the same knobs is a hit on these exact bytes.
    JsonValue outcome_doc = SummaryOutcomeToJson(
        *session_->outcome(), *session_->dataset().registry);
    auto rendered = std::make_shared<std::string>(WriteJson(outcome_doc));
    rendered->push_back('\n');
    cache_->Put(SummaryCacheKey(fingerprint_, selection_key_,
                                summarize_request),
                rendered);

    JsonValue summary = JsonValue::Object();
    summary.Set("warm", JsonValue::Bool(report.warm));
    summary.Set("delta_fraction", JsonValue::Double(report.delta_fraction));
    summary.Set("replayed_merges", JsonValue::Int(report.replayed_merges));
    summary.Set("continuation_steps",
                JsonValue::Int(report.continuation_steps));
    summary.Set("final_size", JsonValue::Int(report.final_size));
    summary.Set("final_distance", JsonValue::Double(report.final_distance));
    doc.Set("resummarize", std::move(summary));
  }
  return JsonResponse(200, doc);
}

HttpResponse Router::HandleGroups() {
  std::lock_guard<std::mutex> lock(mu_);
  if (session_->outcome() == nullptr) {
    return ErrorResponse(
        Status::FailedPrecondition("no summary computed yet"));
  }
  JsonValue outcome_doc = SummaryOutcomeToJson(*session_->outcome(),
                                               *session_->dataset().registry);
  JsonValue doc = JsonValue::Object();
  const JsonValue* groups = outcome_doc.Find("groups");
  const JsonValue* expression = outcome_doc.Find("expression");
  doc.Set("groups", groups != nullptr ? *groups : JsonValue::Array());
  doc.Set("expression",
          expression != nullptr ? *expression : JsonValue::Null());
  return JsonResponse(200, doc);
}

HttpResponse Router::HandleEvaluate(const HttpRequest& request) {
  Result<JsonValue> body = ParseJson(request.body);
  if (!body.ok()) return ErrorResponse(body.status());
  if (!body.value().is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("evaluate body must be a JSON object"));
  }

  bool on_summary = true;
  const JsonValue* on = body.value().Find("on");
  if (on != nullptr) {
    if (!on->is_string() || (on->string_value() != "summary" &&
                             on->string_value() != "selection")) {
      return ErrorResponse(Status::InvalidArgument(
          "field 'on' must be \"summary\" or \"selection\""));
    }
    on_summary = on->string_value() == "summary";
  }
  const JsonValue* assignment_doc = body.value().Find("assignment");
  if (assignment_doc == nullptr) {
    return ErrorResponse(
        Status::InvalidArgument("missing 'assignment' object"));
  }
  Result<Assignment> assignment = AssignmentFromJson(*assignment_doc);
  if (!assignment.ok()) return ErrorResponse(assignment.status());

  std::lock_guard<std::mutex> lock(mu_);
  Result<EvaluationReport> report =
      on_summary ? session_->EvaluateOnSummary(assignment.value())
                 : session_->EvaluateOnSelection(assignment.value());
  if (!report.ok()) return ErrorResponse(report.status());
  return JsonResponse(200, EvaluationReportToJson(report.value()));
}

HttpResponse Router::HandleMetrics() {
  obs::UpdateProcessMetrics();
  route_stats_.ExportGauges();
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body =
      obs::RenderPrometheus(obs::MetricsRegistry::Default().Snapshot());
  return response;
}

HttpResponse Router::HandleDebugRequests() {
  JsonValue doc = JsonValue::Object();
  doc.Set("recorded_total",
          JsonValue::Int(static_cast<int64_t>(recorder_.recorded_total())));
  JsonValue slowest = JsonValue::Array();
  for (const obs::RequestRecord& record : recorder_.SlowestSnapshot()) {
    slowest.Append(RequestRecordToJson(record));
  }
  doc.Set("slowest", std::move(slowest));
  JsonValue errors = JsonValue::Array();
  for (const obs::RequestRecord& record : recorder_.ErrorsSnapshot()) {
    errors.Append(RequestRecordToJson(record));
  }
  doc.Set("errors", std::move(errors));
  return JsonResponse(200, doc);
}

}  // namespace serve
}  // namespace prox
