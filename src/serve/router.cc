#include "serve/router.h"

#include <chrono>
#include <string>
#include <utility>

#include "common/json.h"
#include "obs/export.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "serve/serve_metrics.h"

namespace prox {
namespace serve {

namespace {

HttpResponse JsonResponse(int status, const JsonValue& doc) {
  HttpResponse response;
  response.status = status;
  response.body = WriteJson(doc);
  response.body.push_back('\n');
  return response;
}

/// Transport-level errors (unknown route, wrong method) — the only error
/// documents the router renders itself; domain errors arrive pre-rendered
/// from the engine.
HttpResponse SimpleError(int status, const std::string& message) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue::Str(StatusReason(status)));
  error.Set("message", JsonValue::Str(message));
  JsonValue doc = JsonValue::Object();
  doc.Set("error", std::move(error));
  return JsonResponse(status, doc);
}

/// Bounded-cardinality route label for prox_serve_requests_total.
const std::string& RouteLabel(const HttpRequest& request) {
  static const std::string kSelect = "/v1/select";
  static const std::string kSummarize = "/v1/summarize";
  static const std::string kIngest = "/v1/ingest";
  static const std::string kGroups = "/v1/summary/groups";
  static const std::string kEvaluate = "/v1/evaluate";
  static const std::string kDebugRequests = "/v1/debug/requests";
  static const std::string kHealthz = "/healthz";
  static const std::string kMetrics = "/metrics";
  static const std::string kOther = "other";
  if (request.target == kSelect) return kSelect;
  if (request.target == kSummarize) return kSummarize;
  if (request.target == kIngest) return kIngest;
  if (request.target == kGroups) return kGroups;
  if (request.target == kEvaluate) return kEvaluate;
  if (request.target == kDebugRequests) return kDebugRequests;
  if (request.target == kHealthz) return kHealthz;
  if (request.target == kMetrics) return kMetrics;
  return kOther;
}

/// The X-Prox-Cache value a handler attached, or "".
std::string CacheOutcome(const HttpResponse& response) {
  for (const auto& [name, value] : response.headers) {
    if (name == "X-Prox-Cache") return value;
  }
  return std::string();
}

int64_t WallClockUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

JsonValue SpanToJson(const obs::SpanRecord& span) {
  JsonValue doc = JsonValue::Object();
  doc.Set("id", JsonValue::Int(static_cast<int64_t>(span.id)));
  doc.Set("parent", JsonValue::Int(static_cast<int64_t>(span.parent_id)));
  doc.Set("depth", JsonValue::Int(span.depth));
  doc.Set("name", JsonValue::Str(span.name));
  doc.Set("start_nanos", JsonValue::Int(span.start_nanos));
  doc.Set("duration_nanos", JsonValue::Int(span.duration_nanos));
  return doc;
}

JsonValue RequestRecordToJson(const obs::RequestRecord& record) {
  JsonValue doc = JsonValue::Object();
  doc.Set("trace_id", JsonValue::Str(record.trace_id));
  doc.Set("method", JsonValue::Str(record.method));
  doc.Set("path", JsonValue::Str(record.path));
  doc.Set("status", JsonValue::Int(record.status));
  doc.Set("bytes", JsonValue::Int(static_cast<int64_t>(record.bytes)));
  doc.Set("latency_nanos", JsonValue::Int(record.latency_nanos));
  doc.Set("start_unix_ms", JsonValue::Int(record.start_unix_ms));
  doc.Set("cache", JsonValue::Str(record.cache));
  doc.Set("spans_dropped",
          JsonValue::Int(static_cast<int64_t>(record.spans_dropped)));
  JsonValue spans = JsonValue::Array();
  for (const obs::SpanRecord& span : record.spans) {
    spans.Append(SpanToJson(span));
  }
  doc.Set("spans", std::move(spans));
  return doc;
}

}  // namespace

Router::Router(engine::Engine* engine, Options options)
    : engine_(engine),
      options_(options),
      route_stats_(options.route_stats),
      recorder_(options.recorder) {}

HttpResponse Router::FromEngine(engine::Engine::Response response) {
  HttpResponse http;
  http.status = response.http_status;
  http.body = std::move(response.body);
  using CacheOutcome = engine::Engine::Response::CacheOutcome;
  if (response.cache != CacheOutcome::kNone) {
    http.headers.emplace_back(
        "X-Prox-Cache",
        response.cache == CacheOutcome::kHit ? "hit" : "miss");
  }
  return http;
}

HttpResponse Router::Handle(const HttpRequest& request) {
  const std::string& route = RouteLabel(request);
  ServeRequests(route)->Increment();
  static obs::Histogram* duration = ServeDuration();

  if (!obs::Enabled()) {
    // Kill switch: no context, no trace header, no log, no recorder —
    // the request costs what it did before tracing existed.
    HttpResponse response = Dispatch(request);
    ServeResponses(response.status)->Increment();
    return response;
  }

  obs::RequestContext context =
      obs::RequestContext::FromTraceparent(request.Header("traceparent"));
  HttpResponse response;
  int64_t latency_nanos = 0;
  {
    // Scope outlives the span close so serve.request itself is collected.
    obs::RequestScope scope(&context);
    obs::TraceSpan span("serve.request");
    response = Dispatch(request);
    latency_nanos = span.Close();
  }

  const std::string trace_hex = context.trace_id().ToHex();
  response.headers.emplace_back("X-Prox-Trace-Id", trace_hex);
  ServeResponses(response.status)->Increment();
  duration->Observe(static_cast<double>(latency_nanos));
  route_stats_.Observe(route, latency_nanos, trace_hex);

  const std::string cache = CacheOutcome(response);
  if (obs::AccessLogEnabled()) {
    obs::AccessLogRecord line;
    line.method = request.method;
    line.path = request.target;
    line.status = response.status;
    line.bytes = response.body.size();
    line.latency_us = latency_nanos / 1000;
    line.trace_id = trace_hex;
    line.cache = cache;
    obs::WriteAccessLog(line);
  }

  obs::RequestRecord record;
  record.trace_id = trace_hex;
  record.method = request.method;
  record.path = request.target;
  record.status = response.status;
  record.bytes = response.body.size();
  record.latency_nanos = latency_nanos;
  record.start_unix_ms = WallClockUnixMs();
  record.cache = cache;
  record.spans_dropped = context.spans_dropped();
  record.spans = context.TakeSpans();
  recorder_.Record(std::move(record));
  return response;
}

HttpResponse Router::Dispatch(const HttpRequest& request) {
  HttpResponse response;
  if (request.target == "/healthz") {
    if (request.method != "GET") {
      response = SimpleError(405, "use GET");
    } else {
      JsonValue doc = JsonValue::Object();
      doc.Set("status", JsonValue::Str("ok"));
      doc.Set("dataset_fingerprint",
              JsonValue::Str(dataset_fingerprint()));
      response = JsonResponse(200, doc);
    }
  } else if (request.target == "/metrics") {
    response = request.method == "GET" ? HandleMetrics()
                                       : SimpleError(405, "use GET");
  } else if (request.target == "/v1/select") {
    response = request.method == "POST"
                   ? FromEngine(engine_->HandleSelect(request.body))
                   : SimpleError(405, "use POST");
  } else if (request.target == "/v1/summarize") {
    response = request.method == "POST"
                   ? FromEngine(engine_->HandleSummarize(request.body))
                   : SimpleError(405, "use POST");
  } else if (request.target == "/v1/ingest") {
    response = request.method == "POST"
                   ? FromEngine(engine_->HandleIngest(request.body))
                   : SimpleError(405, "use POST");
  } else if (request.target == "/v1/summary/groups") {
    response = request.method == "GET"
                   ? FromEngine(engine_->HandleGroups())
                   : SimpleError(405, "use GET");
  } else if (request.target == "/v1/evaluate") {
    response = request.method == "POST"
                   ? FromEngine(engine_->HandleEvaluate(request.body))
                   : SimpleError(405, "use POST");
  } else if (request.target == "/v1/debug/requests" &&
             options_.debug_endpoints) {
    // Without the flag the route falls through to the 404 below, exactly
    // as if it did not exist.
    response = request.method == "GET" ? HandleDebugRequests()
                                       : SimpleError(405, "use GET");
  } else {
    response = SimpleError(404, "no such endpoint: " + request.target);
  }
  return response;
}

HttpResponse Router::HandleMetrics() {
  obs::UpdateProcessMetrics();
  route_stats_.ExportGauges();
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body =
      obs::RenderPrometheus(obs::MetricsRegistry::Default().Snapshot());
  return response;
}

HttpResponse Router::HandleDebugRequests() {
  JsonValue doc = JsonValue::Object();
  doc.Set("recorded_total",
          JsonValue::Int(static_cast<int64_t>(recorder_.recorded_total())));
  JsonValue slowest = JsonValue::Array();
  for (const obs::RequestRecord& record : recorder_.SlowestSnapshot()) {
    slowest.Append(RequestRecordToJson(record));
  }
  doc.Set("slowest", std::move(slowest));
  JsonValue errors = JsonValue::Array();
  for (const obs::RequestRecord& record : recorder_.ErrorsSnapshot()) {
    errors.Append(RequestRecordToJson(record));
  }
  doc.Set("errors", std::move(errors));
  return JsonResponse(200, doc);
}

}  // namespace serve
}  // namespace prox
