#ifndef PROX_SERVE_SERVE_METRICS_H_
#define PROX_SERVE_SERVE_METRICS_H_

#include <string>

#include "obs/metrics.h"

namespace prox {
namespace serve {

/// \file
/// The `prox_serve_*` metric families (docs/OBSERVABILITY.md). Follows
/// service_metrics.h: labels are pre-rendered strings, hot call sites
/// cache the pointer in a function-local static.

/// `prox_serve_requests_total{route="..."}`.
inline obs::Counter* ServeRequests(const std::string& route) {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_requests_total", "HTTP requests routed, by route.",
      "route=\"" + route + "\"");
}

/// `prox_serve_responses_total{code="..."}`.
inline obs::Counter* ServeResponses(int status) {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_responses_total", "HTTP responses written, by status code.",
      "code=\"" + std::to_string(status) + "\"");
}

/// `prox_serve_overload_total` — connections shed with 503.
inline obs::Counter* ServeOverload() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_overload_total",
      "Connections shed with 503 because max-inflight was reached.");
}

/// `prox_serve_connections_total` — connections accepted (shed ones too).
inline obs::Counter* ServeConnections() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_connections_total", "TCP connections accepted.");
}

/// `prox_serve_inflight` — connections admitted and not yet closed.
inline obs::Gauge* ServeInflight() {
  return obs::MetricsRegistry::Default().GetGauge(
      "prox_serve_inflight",
      "Connections currently queued or being served by a worker.");
}

/// `prox_serve_request_duration_nanos` — handler wall time.
inline obs::Histogram* ServeDuration() {
  return obs::MetricsRegistry::Default().GetHistogram(
      "prox_serve_request_duration_nanos",
      "Wall time from parsed request to rendered response, nanoseconds.",
      obs::LatencyBucketsNanos());
}

/// `prox_serve_fingerprint_fallback_total` — DatasetFingerprint calls that
/// had no snapshot checksum hint and re-hashed the full provenance text.
inline obs::Counter* FingerprintFallbacks() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_fingerprint_fallback_total",
      "Dataset fingerprints computed by re-serializing the provenance "
      "because no snapshot checksum was available.");
}

/// `prox_serve_cache_hit_total`.
inline obs::Counter* CacheHits() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_cache_hit_total", "SummaryCache lookups served from cache.");
}

/// `prox_serve_cache_miss_total`.
inline obs::Counter* CacheMisses() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_cache_miss_total", "SummaryCache lookups that missed.");
}

/// `prox_serve_cache_evict_total`.
inline obs::Counter* CacheEvictions() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_cache_evict_total",
      "SummaryCache entries evicted to stay under the byte budget.");
}

/// `prox_serve_cache_bytes` — bytes currently cached across all shards.
inline obs::Gauge* CacheBytes() {
  return obs::MetricsRegistry::Default().GetGauge(
      "prox_serve_cache_bytes", "Bytes held by the SummaryCache.");
}

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_SERVE_METRICS_H_
