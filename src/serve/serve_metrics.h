#ifndef PROX_SERVE_SERVE_METRICS_H_
#define PROX_SERVE_SERVE_METRICS_H_

#include <string>

#include "obs/metrics.h"

namespace prox {
namespace serve {

/// \file
/// The `prox_serve_*` metric families (docs/OBSERVABILITY.md). Follows
/// service_metrics.h: labels are pre-rendered strings, hot call sites
/// cache the pointer in a function-local static.

/// `prox_serve_requests_total{route="..."}`.
inline obs::Counter* ServeRequests(const std::string& route) {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_requests_total", "HTTP requests routed, by route.",
      "route=\"" + route + "\"");
}

/// `prox_serve_responses_total{code="..."}`.
inline obs::Counter* ServeResponses(int status) {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_responses_total", "HTTP responses written, by status code.",
      "code=\"" + std::to_string(status) + "\"");
}

/// `prox_serve_overload_total` — connections shed with 503.
inline obs::Counter* ServeOverload() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_overload_total",
      "Connections shed with 503 because max-inflight was reached.");
}

/// `prox_serve_connections_total` — connections accepted (shed ones too).
inline obs::Counter* ServeConnections() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_connections_total", "TCP connections accepted.");
}

/// `prox_serve_inflight` — connections admitted and not yet closed.
inline obs::Gauge* ServeInflight() {
  return obs::MetricsRegistry::Default().GetGauge(
      "prox_serve_inflight",
      "Connections currently queued or being served by a worker.");
}

/// `prox_serve_idle_reaped_total` — keep-alive connections closed because
/// they sat idle (no request in flight, empty parse buffer) past the idle
/// timeout. Shared by the blocking and epoll transports.
inline obs::Counter* ServeIdleReaped() {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_serve_idle_reaped_total",
      "Idle keep-alive connections reaped by the idle timeout.");
}

/// `prox_serve_request_duration_nanos` — handler wall time.
inline obs::Histogram* ServeDuration() {
  return obs::MetricsRegistry::Default().GetHistogram(
      "prox_serve_request_duration_nanos",
      "Wall time from parsed request to rendered response, nanoseconds.",
      obs::LatencyBucketsNanos());
}

// The fingerprint-fallback and SummaryCache families moved with their
// owners to src/engine/engine_metrics.h (same `prox_serve_` names — see
// the note there about scrape-config compatibility).

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_SERVE_METRICS_H_
