#ifndef PROX_SERVE_CLIENT_H_
#define PROX_SERVE_CLIENT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace prox {
namespace serve {

/// \brief A minimal blocking HTTP/1.1 client for loopback use — the serve
/// tests, the throughput loadgen (bench/bench_serve_throughput.cc) and
/// smoke checks drive the server through it. Not a general client: IPv4
/// only, Content-Length bodies only, no redirects.

/// A parsed response. Header names are lower-cased.
struct ClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  std::string_view Header(std::string_view name) const;
};

/// One TCP connection; supports multiple request/response exchanges
/// (keep-alive) and raw byte access for parser edge-case tests.
class ClientConnection {
 public:
  ClientConnection() = default;
  ClientConnection(ClientConnection&& other) noexcept;
  ClientConnection& operator=(ClientConnection&& other) noexcept;
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  static Result<ClientConnection> Connect(const std::string& host, int port,
                                          int timeout_ms = 10000);

  /// Sends raw bytes as-is (split sends exercise the server's
  /// incremental parser).
  Status SendRaw(std::string_view bytes);

  /// Sends a well-formed request with Content-Length.
  Status SendRequest(const std::string& method, const std::string& target,
                     const std::string& body = "",
                     const std::string& content_type = "application/json");

  /// Blocks until one full response is parsed (or the peer closes /
  /// times out, which is an error).
  Result<ClientResponse> ReadResponse();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the previous response
};

/// Connect + one exchange + close.
Result<ClientResponse> Fetch(const std::string& host, int port,
                             const std::string& method,
                             const std::string& target,
                             const std::string& body = "",
                             int timeout_ms = 10000);

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_CLIENT_H_
