#include "serve/route_stats.h"

#include <algorithm>

namespace prox {
namespace serve {

namespace {

/// Linear-rank percentile over an unsorted copy of the window (the same
/// rank rule bench_serve_throughput applies client-side, so the two are
/// comparable sample-for-sample).
double Percentile(std::vector<int64_t> values, double p) {
  if (values.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  std::nth_element(values.begin(), values.begin() + rank, values.end());
  return static_cast<double>(values[rank]);
}

}  // namespace

RouteStats::RouteStats(Options options) : options_(options) {
  if (options_.window == 0) options_.window = 1;
  if (options_.slo_target >= 1.0) options_.slo_target = 0.999;
  if (options_.slo_target < 0.0) options_.slo_target = 0.0;
}

RouteStats::PerRoute& RouteStats::GetRouteLocked(const std::string& route) {
  auto it = routes_.find(route);
  if (it != routes_.end()) return it->second;

  PerRoute state;
  const std::string labels = "route=\"" + route + "\"";
  auto& registry = obs::MetricsRegistry::Default();
  state.duration = registry.GetHistogram(
      "prox_serve_route_duration_nanos",
      "Wall time from parsed request to rendered response, nanoseconds, "
      "by route (1-2-5 buckets; slow buckets carry trace-id exemplars).",
      obs::RequestLatencyBucketsNanos(), labels);
  state.p50 = registry.GetGauge(
      "prox_serve_route_latency_p50_nanos",
      "Median latency over the rolling window of recent requests, by route.",
      labels);
  state.p99 = registry.GetGauge(
      "prox_serve_route_latency_p99_nanos",
      "99th-percentile latency over the rolling window of recent requests, "
      "by route.",
      labels);
  state.burn_rate = registry.GetGauge(
      "prox_serve_route_slo_burn_rate",
      "Rate the route spends its latency error budget: fraction of "
      "windowed requests over the SLO threshold divided by (1 - target). "
      ">1 means the budget shrinks; sustained >1 pages.",
      labels);
  state.ring.reserve(options_.window);
  return routes_.emplace(route, std::move(state)).first->second;
}

void RouteStats::Observe(const std::string& route, int64_t latency_nanos,
                         std::string_view trace_id_hex) {
  if (!obs::Enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  PerRoute& state = GetRouteLocked(route);
  state.duration->ObserveWithExemplar(static_cast<double>(latency_nanos),
                                      trace_id_hex);
  if (state.ring.size() < options_.window) {
    state.ring.push_back(latency_nanos);
  } else {
    state.ring[state.next] = latency_nanos;
    state.next = (state.next + 1) % options_.window;
  }
}

void RouteStats::ExportGauges() {
  if (!obs::Enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [route, state] : routes_) {
    (void)route;
    if (state.ring.empty()) continue;
    state.p50->Set(Percentile(state.ring, 0.50));
    state.p99->Set(Percentile(state.ring, 0.99));
    size_t over = 0;
    for (int64_t nanos : state.ring) {
      if (nanos > options_.slo_latency_nanos) ++over;
    }
    const double fraction_over =
        static_cast<double>(over) / static_cast<double>(state.ring.size());
    state.burn_rate->Set(fraction_over / (1.0 - options_.slo_target));
  }
}

}  // namespace serve
}  // namespace prox
