#ifndef PROX_SERVE_ROUTER_H_
#define PROX_SERVE_ROUTER_H_

#include <mutex>
#include <string>

#include "serve/http.h"
#include "serve/summary_cache.h"
#include "service/session.h"

namespace prox {
namespace serve {

/// \brief Maps HTTP requests onto the ProxSession workflow — the service
/// counterpart of the Chapter 7 web UI (docs/SERVING.md documents every
/// endpoint and schema):
///
///   POST /v1/select            selection view (criteria or {"all": true})
///   POST /v1/summarize         Algorithm 1 with the request's knobs
///   GET  /v1/summary/groups    groups subview of the latest summary
///   POST /v1/evaluate          approximate provisioning on summary or
///                              selection
///   GET  /healthz              liveness
///   GET  /metrics              Prometheus text (prox::obs registry)
///
/// Summarize responses are served from the SummaryCache when the
/// `(dataset fingerprint, selection, knobs)` key is present; misses
/// compute under the router mutex — which also guards selection changes,
/// so a cached body always corresponds to the selection named in its key,
/// and concurrent identical cold requests run Algorithm 1 once (the first
/// computes and caches, the rest hit). Cached and cold bodies are
/// byte-identical; the `X-Prox-Cache: hit|miss` response header tells
/// them apart.
///
/// Thread-safe: Handle may be called from any number of server workers.
class Router {
 public:
  /// `session` and `cache` must outlive the router. The dataset
  /// fingerprint is computed here, once.
  Router(ProxSession* session, SummaryCache* cache);

  HttpResponse Handle(const HttpRequest& request);

  const std::string& dataset_fingerprint() const { return fingerprint_; }

 private:
  HttpResponse HandleSelect(const HttpRequest& request);
  HttpResponse HandleSummarize(const HttpRequest& request);
  HttpResponse HandleGroups();
  HttpResponse HandleEvaluate(const HttpRequest& request);
  HttpResponse HandleMetrics();

  ProxSession* session_;
  SummaryCache* cache_;
  std::string fingerprint_;

  /// Guards selection_key_ and all session_ calls, keeping the cache key
  /// consistent with the selection a computation actually ran on.
  std::mutex mu_;
  std::string selection_key_;
};

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_ROUTER_H_
