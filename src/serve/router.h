#ifndef PROX_SERVE_ROUTER_H_
#define PROX_SERVE_ROUTER_H_

#include <mutex>
#include <string>

#include "ingest/maintainer.h"
#include "obs/flight_recorder.h"
#include "serve/http.h"
#include "serve/route_stats.h"
#include "serve/summary_cache.h"
#include "service/session.h"

namespace prox {
namespace serve {

/// \brief Maps HTTP requests onto the ProxSession workflow — the service
/// counterpart of the Chapter 7 web UI (docs/SERVING.md documents every
/// endpoint and schema):
///
///   POST /v1/select            selection view (criteria or {"all": true})
///   POST /v1/summarize         Algorithm 1 with the request's knobs
///   POST /v1/ingest            streaming delta batch (docs/INGEST.md);
///                              optional "resummarize" directive warm-
///                              starts the next summary in the same call
///   GET  /v1/summary/groups    groups subview of the latest summary
///   POST /v1/evaluate          approximate provisioning on summary or
///                              selection
///   GET  /v1/debug/requests    flight recorder (404 unless
///                              Options::debug_endpoints)
///   GET  /healthz              liveness
///   GET  /metrics              Prometheus text (prox::obs registry)
///
/// Every request is traced: Handle builds an obs::RequestContext from the
/// inbound `traceparent` header (minting a fresh id when absent or
/// malformed), installs it for the handling thread so the request's spans
/// form a per-request tree, and returns the id as `X-Prox-Trace-Id`. The
/// same id keys the access-log line (when enabled), the route histogram
/// exemplar, and the flight-recorder entry. With obs recording off
/// (PROX_OBS=0) all of this is skipped — no context, no header, no log.
///
/// Summarize responses are served from the SummaryCache when the
/// `(dataset fingerprint, selection, knobs)` key is present; misses
/// compute under the router mutex — which also guards selection changes,
/// so a cached body always corresponds to the selection named in its key,
/// and concurrent identical cold requests run Algorithm 1 once (the first
/// computes and caches, the rest hit). Cached and cold bodies are
/// byte-identical; the `X-Prox-Cache: hit|miss` response header tells
/// them apart.
///
/// Thread-safe: Handle may be called from any number of server workers.
class Router {
 public:
  struct Options {
    /// Serves GET /v1/debug/requests; off by default because the flight
    /// recorder exposes request bodies' shapes and timings.
    bool debug_endpoints = false;
    obs::FlightRecorder::Options recorder;
    RouteStats::Options route_stats;
  };

  /// `session` and `cache` must outlive the router. The dataset
  /// fingerprint comes from the session's memo (computed at most once;
  /// advanced by digest chaining on ingest).
  Router(ProxSession* session, SummaryCache* cache)
      : Router(session, cache, Options{}) {}
  Router(ProxSession* session, SummaryCache* cache, Options options);

  HttpResponse Handle(const HttpRequest& request);

  /// The current dataset fingerprint. By value: ingest advances it by
  /// digest chaining, so the string the caller saw may be replaced while
  /// they hold it.
  std::string dataset_fingerprint() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fingerprint_;
  }
  const Options& options() const { return options_; }
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  RouteStats& route_stats() { return route_stats_; }

 private:
  /// The undecorated endpoint dispatch (no tracing, headers or logging).
  HttpResponse Dispatch(const HttpRequest& request);

  HttpResponse HandleSelect(const HttpRequest& request);
  HttpResponse HandleSummarize(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleGroups();
  HttpResponse HandleEvaluate(const HttpRequest& request);
  HttpResponse HandleMetrics();
  HttpResponse HandleDebugRequests();

  ProxSession* session_;
  SummaryCache* cache_;
  Options options_;
  RouteStats route_stats_;
  obs::FlightRecorder recorder_;

  /// Guards fingerprint_, selection_key_, maintainer_, and all session_
  /// calls, keeping the cache key consistent with the selection (and the
  /// dataset contents) a computation actually ran on.
  mutable std::mutex mu_;
  std::string fingerprint_;
  std::string selection_key_;
  ingest::SummaryMaintainer maintainer_;
};

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_ROUTER_H_
