#ifndef PROX_SERVE_ROUTER_H_
#define PROX_SERVE_ROUTER_H_

#include <string>

#include "engine/engine.h"
#include "obs/flight_recorder.h"
#include "serve/http.h"
#include "serve/route_stats.h"

namespace prox {
namespace serve {

/// \brief Maps HTTP requests onto the prox::engine facade — the service
/// counterpart of the Chapter 7 web UI (docs/SERVING.md documents every
/// endpoint and schema):
///
///   POST /v1/select            selection view (criteria or {"all": true})
///   POST /v1/summarize         Algorithm 1 with the request's knobs
///   POST /v1/ingest            streaming delta batch (docs/INGEST.md);
///                              optional "resummarize" directive warm-
///                              starts the next summary in the same call
///   GET  /v1/summary/groups    groups subview of the latest summary
///   POST /v1/evaluate          approximate provisioning on summary or
///                              selection
///   GET  /v1/debug/requests    flight recorder (404 unless
///                              Options::debug_endpoints)
///   GET  /healthz              liveness
///   GET  /metrics              Prometheus text (prox::obs registry)
///
/// The router is pure transport: it parses HTTP, hands the body to the
/// Engine, and serializes the Engine's pre-rendered response — it never
/// touches the session, the summarizer, the cache or the ingest machinery
/// directly (scripts/check_layering.sh enforces that src/serve includes no
/// engine-internal headers). Domain responses come back from the Engine
/// byte-for-byte as before the engine/transport split; the engine's cache
/// outcome is surfaced as the `X-Prox-Cache: hit|miss` header.
///
/// Every request is traced: Handle builds an obs::RequestContext from the
/// inbound `traceparent` header (minting a fresh id when absent or
/// malformed), installs it for the handling thread so the request's spans
/// form a per-request tree, and returns the id as `X-Prox-Trace-Id`. The
/// same id keys the access-log line (when enabled), the route histogram
/// exemplar, and the flight-recorder entry. With obs recording off
/// (PROX_OBS=0) all of this is skipped — no context, no header, no log.
///
/// Thread-safe: Handle may be called from any number of server workers
/// (the Engine serializes domain work behind its own mutex).
class Router {
 public:
  struct Options {
    /// Serves GET /v1/debug/requests; off by default because the flight
    /// recorder exposes request bodies' shapes and timings.
    bool debug_endpoints = false;
    obs::FlightRecorder::Options recorder;
    RouteStats::Options route_stats;
  };

  /// `engine` must outlive the router.
  explicit Router(engine::Engine* engine) : Router(engine, Options{}) {}
  Router(engine::Engine* engine, Options options);

  HttpResponse Handle(const HttpRequest& request);

  /// The current dataset fingerprint. By value: ingest advances it by
  /// digest chaining, so the string the caller saw may be replaced while
  /// they hold it.
  std::string dataset_fingerprint() const { return engine_->fingerprint(); }
  const Options& options() const { return options_; }
  obs::FlightRecorder& flight_recorder() { return recorder_; }
  RouteStats& route_stats() { return route_stats_; }

 private:
  /// The undecorated endpoint dispatch (no tracing, headers or logging).
  HttpResponse Dispatch(const HttpRequest& request);

  /// Serializes an engine response onto the wire: status, body,
  /// X-Prox-Cache when the engine consulted the SummaryCache.
  static HttpResponse FromEngine(engine::Engine::Response response);

  HttpResponse HandleMetrics();
  HttpResponse HandleDebugRequests();

  engine::Engine* engine_;
  Options options_;
  RouteStats route_stats_;
  obs::FlightRecorder recorder_;
};

}  // namespace serve
}  // namespace prox

#endif  // PROX_SERVE_ROUTER_H_
