#ifndef PROX_DATASETS_WIKIPEDIA_H_
#define PROX_DATASETS_WIKIPEDIA_H_

#include <cstdint>

#include "datasets/dataset.h"

namespace prox {

/// Parameters of the synthetic Wikipedia-like workload.
struct WikipediaConfig {
  int num_users = 30;
  int num_pages = 16;
  /// Mean edits per user (jitter ±1, ≥1).
  int edits_per_user = 4;
  double zipf_skew = 0.8;
  uint64_t seed = 11;
};

/// \brief Generates a Wikipedia-style dataset (substituting the MediaWiki
/// crawl + YAGO taxonomy — see DESIGN.md §1): users with isRegistered /
/// gender / contribution level, pages attached to leaves of a WordNet-style
/// concept taxonomy, and a Table 5.1 provenance expression
///   (Username·PageTitle) ⊗ (EditType, 1) ⊕ ...
/// with SUM aggregation, page grouping constrained by common taxonomy
/// ancestors, and taxonomy-consistent cancel-single-annotation valuations.
class WikipediaGenerator {
 public:
  static Dataset Generate(const WikipediaConfig& config);
};

}  // namespace prox

#endif  // PROX_DATASETS_WIKIPEDIA_H_
