#include "datasets/ddp.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ddp/machine.h"
#include "provenance/ddp_expr.h"

namespace prox {

namespace {

/// Machine-backed generation: build a random DDP machine and compile its
/// execution provenance (the [17]-faithful path).
std::unique_ptr<DdpExpression> GenerateFromMachine(const DdpConfig& config,
                                                   AnnotationRegistry* reg,
                                                   EntityTable* costs,
                                                   EntityTable* db_table,
                                                   Rng* rng) {
  RandomMachineConfig machine_config;
  machine_config.num_states = config.machine_states;
  machine_config.num_cost_vars = config.num_cost_vars;
  machine_config.num_db_vars = config.num_db_vars;
  machine_config.max_cost = config.max_cost;
  auto output =
      RandomDdpMachine::Generate(machine_config, reg, costs, db_table, rng);
  // Enumerate generously (the generated machines are acyclic, so path
  // counts stay small) and truncate to the requested execution count.
  auto compiled = output.machine.CompileProvenance(
      config.max_transitions, /*max_executions=*/100000);
  if (compiled.ok()) {
    std::unique_ptr<DdpExpression> expr = std::move(compiled).value();
    // Keep the input reviewable: cap at num_executions executions.
    if (expr->executions().size() >
        static_cast<size_t>(config.num_executions)) {
      auto capped = std::make_unique<DdpExpression>();
      for (const auto& [var, cost] : expr->costs()) {
        capped->SetCost(var, cost);
      }
      for (int i = 0; i < config.num_executions; ++i) {
        capped->AddExecution(expr->executions()[i]);
      }
      capped->Simplify();
      return capped;
    }
    return expr;
  }
  // Path explosion: fall back to an empty expression (callers treat this
  // as a degenerate input); with the default acyclic generator this does
  // not happen.
  return std::make_unique<DdpExpression>();
}

}  // namespace

Dataset DdpGenerator::Generate(const DdpConfig& config) {
  Rng rng(config.seed);
  Dataset ds;
  ds.registry = std::make_unique<AnnotationRegistry>();
  ds.ctx.registry = ds.registry.get();
  ds.agg = AggKind::kMin;  // tropical: min over feasible executions
  // Table 5.1: logical OR on DB vars; MAX on cost keep/cancel bits, which
  // coincides with OR on {0,1} assignments.
  ds.phi.fallback = PhiKind::kOr;

  DomainId cost_domain = ds.registry->AddDomain("cost_var");
  DomainId db_domain = ds.registry->AddDomain("db_var");
  ds.domains["cost_var"] = cost_domain;
  ds.domains["db_var"] = db_domain;

  // --- Cost variables carry a Cost attribute; DB variables a Table. ------
  EntityTable cost_table("CostVars");
  AttrId cost_attr = cost_table.AddAttribute("Cost");
  EntityTable db_table("DbVars");
  AttrId table_attr = db_table.AddAttribute("Table");
  (void)table_attr;

  auto expr = std::make_unique<DdpExpression>();

  if (config.from_machine) {
    expr = GenerateFromMachine(config, ds.registry.get(), &cost_table,
                               &db_table, &rng);
    ds.provenance = std::move(expr);
    ds.constraints.SetRule(cost_domain, std::make_unique<NumericToleranceRule>(
                                            cost_attr, config.cost_tolerance));
    ds.constraints.SetRule(db_domain, std::make_unique<AnyMergeRule>("D"));
    ds.ctx.tables.emplace(cost_domain, std::move(cost_table));
    ds.ctx.tables.emplace(db_domain, std::move(db_table));
    ds.valuation_class = std::make_unique<CancelSingleAttribute>();
    ds.val_func = std::make_unique<DdpDifferenceValFunc>(
        static_cast<double>(config.max_cost),
        static_cast<double>(config.max_transitions));
    return ds;
  }

  std::vector<AnnotationId> cost_anns;
  for (int c = 0; c < config.num_cost_vars; ++c) {
    int cost = 1 + static_cast<int>(rng.PickIndex(config.max_cost));
    uint32_t row = cost_table.AddRow({std::to_string(cost)}).MoveValue();
    AnnotationId ann =
        ds.registry->Add(cost_domain, "c" + std::to_string(c + 1), row)
            .MoveValue();
    cost_anns.push_back(ann);
    expr->SetCost(ann, cost);
  }

  std::vector<AnnotationId> db_anns;
  for (int d = 0; d < config.num_db_vars; ++d) {
    uint32_t row =
        db_table.AddRow({"T" + std::to_string(d % 3)}).MoveValue();
    AnnotationId ann =
        ds.registry->Add(db_domain, "d" + std::to_string(d + 1), row)
            .MoveValue();
    db_anns.push_back(ann);
  }

  // --- Executions. ---------------------------------------------------------
  // Executions come in template families: each family shares a transition
  // skeleton, and its variants differ in the identity of one variable (the
  // Example 5.2.2 situation, where mapping d1,d3 ↦ D1 and c1,c2 ↦ C1
  // collapses two executions into one). This gives summarization actual
  // size-reduction opportunities — DDP expressions shrink only when whole
  // executions become identical.
  const int num_templates = std::max(1, config.num_executions / 2);
  int emitted = 0;
  for (int f = 0; f < num_templates && emitted < config.num_executions;
       ++f) {
    DdpExecution base;
    int len = static_cast<int>(
        rng.UniformRange(config.min_transitions, config.max_transitions));
    for (int t = 0; t < len; ++t) {
      if (rng.Bernoulli(0.5)) {
        base.transitions.push_back(
            DdpTransition::User(cost_anns[rng.PickIndex(cost_anns.size())]));
      } else {
        int arity = rng.Bernoulli(0.6) ? 2 : 1;
        std::vector<AnnotationId> factors;
        for (int a = 0; a < arity; ++a) {
          factors.push_back(db_anns[rng.PickIndex(db_anns.size())]);
        }
        base.transitions.push_back(DdpTransition::Db(
            Monomial(std::move(factors)), /*nonzero=*/rng.Bernoulli(0.7)));
      }
    }
    expr->AddExecution(base);
    ++emitted;

    // 1-2 variants, each swapping one variable of the base skeleton.
    int variants = 1 + static_cast<int>(rng.PickIndex(2));
    for (int v = 0; v < variants && emitted < config.num_executions; ++v) {
      DdpExecution variant = base;
      DdpTransition& t =
          variant.transitions[rng.PickIndex(variant.transitions.size())];
      if (t.kind == DdpTransition::Kind::kUser) {
        t.cost_var = cost_anns[rng.PickIndex(cost_anns.size())];
      } else {
        std::vector<AnnotationId> factors = t.db_factors.factors();
        factors[rng.PickIndex(factors.size())] =
            db_anns[rng.PickIndex(db_anns.size())];
        t.db_factors = Monomial(std::move(factors));
      }
      expr->AddExecution(std::move(variant));
      ++emitted;
    }
  }
  expr->Simplify();
  ds.provenance = std::move(expr);

  // --- Constraints, valuations, VAL-FUNC per Table 5.1 / Example 5.2.2. --
  ds.constraints.SetRule(cost_domain, std::make_unique<NumericToleranceRule>(
                                          cost_attr, config.cost_tolerance));
  ds.constraints.SetRule(db_domain, std::make_unique<AnyMergeRule>("D"));

  ds.ctx.tables.emplace(cost_domain, std::move(cost_table));
  ds.ctx.tables.emplace(db_domain, std::move(db_table));

  ds.valuation_class = std::make_unique<CancelSingleAttribute>();
  ds.val_func = std::make_unique<DdpDifferenceValFunc>(
      static_cast<double>(config.max_cost),
      static_cast<double>(config.max_transitions));
  return ds;
}

}  // namespace prox
