#include "datasets/movielens.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "provenance/aggregate_expr.h"

namespace prox {

namespace {

const char* const kGenders[] = {"M", "F"};
const char* const kAgeRanges[] = {"18-24", "25-34", "35-44", "45-49", "50+"};
const char* const kOccupations[] = {
    "academic", "artist",     "clerical",  "student",  "doctor",
    "engineer", "executive",  "homemaker", "lawyer",   "tradesman"};
const char* const kGenres[] = {"Comedy", "Drama", "Action", "Romance",
                               "Sci-Fi", "Thriller"};
const char* const kTitleAdjectives[] = {"Blue",  "Silent", "Last",  "Golden",
                                        "Hidden", "Broken", "Lucky", "Wild"};
const char* const kTitleNouns[] = {"Jasmine", "Point",  "River", "Summer",
                                   "Garden",  "Letter", "Horizon", "Echo"};

}  // namespace

Dataset MovieLensGenerator::Generate(const MovieLensConfig& config) {
  Rng rng(config.seed);
  Dataset ds;
  ds.registry = std::make_unique<AnnotationRegistry>();
  ds.ctx.registry = ds.registry.get();
  ds.agg = config.agg;
  ds.phi.fallback = PhiKind::kOr;  // Table 5.1: logical OR

  DomainId user_domain = ds.registry->AddDomain("user");
  DomainId movie_domain = ds.registry->AddDomain("movie");
  DomainId year_domain = ds.registry->AddDomain("year");
  ds.domains["user"] = user_domain;
  ds.domains["movie"] = movie_domain;
  ds.domains["year"] = year_domain;
  DomainId stats_domain = 0;
  if (config.with_guards) {
    stats_domain = ds.registry->AddDomain("stats");
    ds.domains["stats"] = stats_domain;
  }

  // --- Users table: Gender, AgeRange, Occupation, ZipCode (Table 5.1). ---
  EntityTable users("Users");
  AttrId gender_attr = users.AddAttribute("Gender");
  AttrId age_attr = users.AddAttribute("AgeRange");
  AttrId occupation_attr = users.AddAttribute("Occupation");
  AttrId zip_attr = users.AddAttribute("ZipCode");
  std::vector<AnnotationId> user_anns;
  // Latent per-user bias group, derived from attributes, drives ratings.
  std::vector<double> user_bias;
  for (int u = 0; u < config.num_users; ++u) {
    int gi = static_cast<int>(rng.PickIndex(2));
    int ai = static_cast<int>(rng.PickIndex(5));
    int oi = static_cast<int>(rng.PickIndex(10));
    int zi = static_cast<int>(rng.PickIndex(12));
    uint32_t row = users
                       .AddRow({kGenders[gi], kAgeRanges[ai], kOccupations[oi],
                                "9" + std::to_string(1000 + zi)})
                       .MoveValue();
    AnnotationId ann =
        ds.registry->Add(user_domain, "UID" + std::to_string(100 + u), row)
            .MoveValue();
    user_anns.push_back(ann);
    // Same-gender/age users rate alike, giving attribute merges low cost.
    user_bias.push_back(0.8 * gi + 0.4 * ai - 1.0);
  }

  // --- Movies table: Genre, Year. Year annotations are shared. -----------
  EntityTable movies("Movies");
  AttrId genre_attr = movies.AddAttribute("Genre");
  AttrId year_attr = movies.AddAttribute("Year");
  (void)genre_attr;
  (void)year_attr;
  EntityTable years("Years");
  AttrId decade_attr = years.AddAttribute("Decade");
  (void)decade_attr;
  std::vector<AnnotationId> movie_anns;
  std::vector<AnnotationId> movie_year_ann;
  std::vector<double> movie_quality;
  std::vector<int> year_values;
  std::vector<AnnotationId> year_anns;
  for (int m = 0; m < config.num_movies; ++m) {
    int year = 1990 + static_cast<int>(rng.PickIndex(16));
    std::string genre = kGenres[rng.PickIndex(6)];
    std::string title = std::string(kTitleAdjectives[rng.PickIndex(8)]) + " " +
                        kTitleNouns[rng.PickIndex(8)] + " (" +
                        std::to_string(year) + ")";
    uint32_t row =
        movies.AddRow({genre, std::to_string(year)}).MoveValue();
    // Title collisions get a sequel suffix to keep names unique.
    while (ds.registry->Find(title).ok()) title += " II";
    AnnotationId ann = ds.registry->Add(movie_domain, title, row).MoveValue();
    movie_anns.push_back(ann);
    movie_quality.push_back(2.5 + 2.0 * rng.UniformDouble());

    // Intern the year annotation (shared across same-year movies).
    auto found = std::find(year_values.begin(), year_values.end(), year);
    AnnotationId year_ann;
    if (found == year_values.end()) {
      uint32_t year_row =
          years.AddRow({std::to_string((year / 10) * 10) + "s"}).MoveValue();
      year_ann = ds.registry
                     ->Add(year_domain, "Y" + std::to_string(year), year_row)
                     .MoveValue();
      year_values.push_back(year);
      year_anns.push_back(year_ann);
    } else {
      year_ann = year_anns[found - year_values.begin()];
    }
    movie_year_ann.push_back(year_ann);
  }

  // --- Ratings → provenance expression (Table 5.1 movie structure). ------
  ZipfSampler movie_pop(static_cast<size_t>(config.num_movies),
                        config.zipf_skew);
  auto expr = std::make_unique<AggregateExpression>(config.agg);
  for (int u = 0; u < config.num_users; ++u) {
    int count = std::max<int64_t>(
        1, config.ratings_per_user + rng.UniformRange(-1, 1));
    std::set<size_t> rated;
    std::vector<TensorTerm> user_terms;
    for (int r = 0; r < count; ++r) {
      size_t m = movie_pop.Sample(&rng);
      if (!rated.insert(m).second) continue;  // no duplicate ratings
      double raw = movie_quality[m] + user_bias[u] + 0.8 * rng.Normal();
      double rating = std::clamp(std::round(raw), 1.0, 5.0);
      TensorTerm term;
      term.monomial =
          Monomial({user_anns[u], movie_anns[m], movie_year_ann[m]});
      term.group = movie_anns[m];
      term.value = AggValue{rating, 1.0};
      user_terms.push_back(std::move(term));

      ds.features[user_domain][user_anns[u]][movie_anns[m]] = rating;
    }
    if (config.with_guards) {
      // Example 2.2.1's activity guard: [S_u·U_u ⊗ NumRate > min_reviews].
      AnnotationId stats_ann =
          ds.registry
              ->Add(stats_domain, "S_" + ds.registry->name(user_anns[u]))
              .MoveValue();
      const double num_rate = static_cast<double>(user_terms.size());
      for (TensorTerm& term : user_terms) {
        term.guard = Guard(Monomial({stats_ann, user_anns[u]}), num_rate,
                           CompareOp::kGt, config.min_reviews);
      }
    }
    for (TensorTerm& term : user_terms) expr->AddTerm(std::move(term));
  }
  expr->Simplify();
  ds.provenance = std::move(expr);

  // --- Constraints, valuation class and VAL-FUNC per Table 5.1. ----------
  ds.constraints.SetRule(user_domain,
                         std::make_unique<SharedAttributeRule>(
                             std::vector<AttrId>{gender_attr, age_attr,
                                                 occupation_attr, zip_attr}));
  ds.constraints.SetRule(
      movie_domain, std::make_unique<SharedAttributeRule>(
                        std::vector<AttrId>{genre_attr, year_attr}));
  ds.constraints.SetRule(year_domain,
                         std::make_unique<SharedAttributeRule>(
                             std::vector<AttrId>{decade_attr}));

  ds.ctx.tables.emplace(user_domain, std::move(users));
  ds.ctx.tables.emplace(movie_domain, std::move(movies));
  ds.ctx.tables.emplace(year_domain, std::move(years));

  if (config.attribute_valuations) {
    ds.valuation_class = std::make_unique<CancelSingleAttribute>();
  } else {
    ds.valuation_class = std::make_unique<CancelSingleAnnotation>();
  }
  ds.val_func = std::make_unique<EuclideanValFunc>();
  return ds;
}

}  // namespace prox
