#include "datasets/wikipedia.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "provenance/aggregate_expr.h"

namespace prox {

namespace {

const char* const kUserNames[] = {
    "SalubriousToxin", "Dubulge",      "DrBackInTheStreet", "JasperPunk",
    "Ebyabe",          "Smalljim",     "QuietCartographer", "VelvetLlama",
    "PixelMonk",       "RiverWarden",  "MossyKeyboard",     "OrbitFox",
    "InkedBadger",     "SolarRaven",   "PaperLantern",      "CobaltOtter",
    "DustyAtlas",      "MirrorFinch",  "HollowReed",        "BrassComet",
    "WanderingNoun",   "SilentVerb",   "CrispAutumn",       "NeonGlacier",
    "MarbleSwift",     "TangledWire",  "AmberSentry",       "FrostedPeak",
    "LunarHarbor",     "GingerSpruce"};

struct ConceptSpec {
  const char* name;
  const char* parent;
};

/// A WordNet-flavoured class backbone (cf. the <wordnet_singer> /
/// <wordnet_guitarist> concepts of Example 5.2.1).
const ConceptSpec kConcepts[] = {
    {"wordnet_entity", nullptr},
    {"wordnet_person", "wordnet_entity"},
    {"wordnet_artist", "wordnet_person"},
    {"wordnet_singer", "wordnet_artist"},
    {"wordnet_guitarist", "wordnet_artist"},
    {"wordnet_scientist", "wordnet_person"},
    {"wordnet_physicist", "wordnet_scientist"},
    {"wordnet_chemist", "wordnet_scientist"},
    {"wordnet_location", "wordnet_entity"},
    {"wordnet_city", "wordnet_location"},
    {"wordnet_country", "wordnet_location"},
    {"wordnet_work", "wordnet_entity"},
    {"wordnet_book", "wordnet_work"},
    {"wordnet_film", "wordnet_work"},
};

/// Leaf concepts pages can denote.
const char* const kLeafConcepts[] = {
    "wordnet_singer", "wordnet_guitarist", "wordnet_physicist",
    "wordnet_chemist", "wordnet_city",     "wordnet_country",
    "wordnet_book",    "wordnet_film"};

const char* const kPageStems[] = {
    "Adele",        "CelineDion",  "LoriBlack",   "AlecBaillie",
    "MarieCurie",   "NielsBohr",   "RosalindF",   "LinusP",
    "Lisbon",       "Kyoto",       "Andorra",     "Bhutan",
    "Dune",         "Solaris",     "Metropolis",  "Stalker",
    "EmmyNoether",  "JoanBaez",    "MilesD",      "Reykjavik"};

}  // namespace

Dataset WikipediaGenerator::Generate(const WikipediaConfig& config) {
  Rng rng(config.seed);
  Dataset ds;
  ds.registry = std::make_unique<AnnotationRegistry>();
  ds.ctx.registry = ds.registry.get();
  ds.agg = AggKind::kSum;  // Table 5.1: SUM over edit types
  ds.phi.fallback = PhiKind::kOr;

  DomainId user_domain = ds.registry->AddDomain("wiki_user");
  DomainId page_domain = ds.registry->AddDomain("page");
  ds.domains["wiki_user"] = user_domain;
  ds.domains["page"] = page_domain;

  // --- Taxonomy (YAGO/WordNet substitute). --------------------------------
  Taxonomy tax;
  for (const auto& spec : kConcepts) {
    if (spec.parent == nullptr) {
      tax.AddRoot(spec.name);
    } else {
      tax.AddConcept(spec.name, tax.Find(spec.parent).MoveValue())
          .MoveValue();
    }
  }

  // --- Users table: IsRegistered, Gender, ContributionLevel. --------------
  EntityTable users("WikiUsers");
  AttrId reg_attr = users.AddAttribute("IsRegistered");
  AttrId gender_attr = users.AddAttribute("Gender");
  AttrId level_attr = users.AddAttribute("ContributionLevel");
  std::vector<AnnotationId> user_anns;
  std::vector<int> user_level;  // 0=Reviewer, 1=Contributor, 2=TopContributor
  const char* const kLevels[] = {"Reviewer", "Contributor", "TopContributor"};
  for (int u = 0; u < config.num_users; ++u) {
    int level = static_cast<int>(rng.PickIndex(3));
    bool registered = level > 0 || rng.Bernoulli(0.6);
    const char* gender = rng.Bernoulli(0.5) ? "Male" : "Female";
    uint32_t row =
        users
            .AddRow({registered ? "Registered" : "Anonymous", gender,
                     kLevels[level]})
            .MoveValue();
    std::string name = u < 30 ? kUserNames[u] : "Wikian" + std::to_string(u);
    while (ds.registry->Find(name).ok()) name += "_";
    AnnotationId ann = ds.registry->Add(user_domain, name, row).MoveValue();
    user_anns.push_back(ann);
    user_level.push_back(level);
  }

  // --- Pages, each denoting a leaf concept. -------------------------------
  std::vector<AnnotationId> page_anns;
  for (int p = 0; p < config.num_pages; ++p) {
    std::string leaf = kLeafConcepts[rng.PickIndex(8)];
    std::string title = p < 20 ? kPageStems[p]
                               : "Page" + std::to_string(p);
    while (ds.registry->Find(title).ok()) title += "_";
    AnnotationId ann =
        ds.registry->Add(page_domain, title, kNoEntity).MoveValue();
    page_anns.push_back(ann);
    ds.ctx.concept_of[ann] = tax.Find(leaf).MoveValue();
  }

  // --- Edits → provenance (SUM of edit types per page). -------------------
  ZipfSampler page_pop(static_cast<size_t>(config.num_pages),
                       config.zipf_skew);
  auto expr = std::make_unique<AggregateExpression>(AggKind::kSum);
  for (int u = 0; u < config.num_users; ++u) {
    int count = std::max<int64_t>(
        1, config.edits_per_user + rng.UniformRange(-1, 1));
    std::set<size_t> edited;
    for (int e = 0; e < count; ++e) {
      size_t p = page_pop.Sample(&rng);
      if (!edited.insert(p).second) continue;
      // Top contributors make major edits more often.
      double major_prob = 0.3 + 0.25 * user_level[u];
      double edit_type = rng.Bernoulli(major_prob) ? 1.0 : 0.0;
      TensorTerm term;
      term.monomial = Monomial({user_anns[u], page_anns[p]});
      term.group = page_anns[p];
      term.value = AggValue{edit_type, 1.0};
      expr->AddTerm(std::move(term));

      ds.features[user_domain][user_anns[u]][page_anns[p]] = edit_type;
      ds.features[page_domain][page_anns[p]][user_anns[u]] = edit_type;
    }
  }
  expr->Simplify();
  ds.provenance = std::move(expr);

  // --- Constraints, valuations, VAL-FUNC per Table 5.1. -------------------
  ds.constraints.SetRule(user_domain,
                         std::make_unique<SharedAttributeRule>(
                             std::vector<AttrId>{reg_attr, gender_attr,
                                                 level_attr}));
  ds.constraints.SetRule(page_domain,
                         std::make_unique<TaxonomyAncestorRule>());

  ds.ctx.tables.emplace(user_domain, std::move(users));
  ds.ctx.taxonomy = std::move(tax);

  ds.valuation_class = std::make_unique<CancelSingleAnnotation>(
      std::vector<DomainId>{}, /*taxonomy_consistent=*/true);
  ds.val_func = std::make_unique<EuclideanValFunc>();
  return ds;
}

}  // namespace prox
