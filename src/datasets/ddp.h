#ifndef PROX_DATASETS_DDP_H_
#define PROX_DATASETS_DDP_H_

#include <cstdint>

#include "datasets/dataset.h"

namespace prox {

/// Parameters of the synthetic data-dependent-process workload, following
/// the constants of Example 5.2.2 (max cost 10 per transition, at most 5
/// transitions per execution).
struct DdpConfig {
  int num_executions = 8;
  int min_transitions = 2;
  int max_transitions = 5;
  int num_db_vars = 10;
  int num_cost_vars = 8;
  int max_cost = 10;
  /// NumericToleranceRule slack for grouping cost variables whose costs
  /// are "more or less the same".
  double cost_tolerance = 2.0;
  /// When true, the provenance is compiled from a random DDP state
  /// machine (src/ddp/machine.h — the faithful [17] substrate) instead of
  /// sampled execution templates; num_executions then caps the path
  /// enumeration.
  bool from_machine = false;
  int machine_states = 5;
  uint64_t seed = 13;
};

/// \brief Generates a DDP dataset per [17]'s structure (Example 5.2.2):
/// each execution is a product of user transitions ⟨c_k, 1⟩ and
/// database-dependent transitions ⟨0, [d_i·d_j] ≠/= 0⟩ over the tropical ×
/// boolean semirings. Mapping constraints allow any DB-variable grouping
/// and tolerance-bounded cost-variable grouping; valuations cancel single
/// attributes (all cost variables of equal cost / all DB variables of one
/// table); VAL-FUNC is the bounded absolute cost difference.
class DdpGenerator {
 public:
  static Dataset Generate(const DdpConfig& config);
};

}  // namespace prox

#endif  // PROX_DATASETS_DDP_H_
