#ifndef PROX_DATASETS_MOVIELENS_H_
#define PROX_DATASETS_MOVIELENS_H_

#include <cstdint>

#include "datasets/dataset.h"

namespace prox {

/// Parameters of the synthetic MovieLens-like workload. The defaults give
/// provenance expressions of roughly the size PROX demonstrates (≈126
/// annotations in the selection view of Figure 7.4).
struct MovieLensConfig {
  int num_users = 40;
  int num_movies = 15;
  /// Mean ratings per user (actual counts jitter ±1, clipped to ≥1).
  int ratings_per_user = 3;
  /// Movie popularity skew (rank-0 movie most rated).
  double zipf_skew = 0.8;
  /// MAX or SUM (Table 5.1's aggregation column).
  AggKind agg = AggKind::kMax;
  /// "Cancel Single Attribute" (true, the Figures 6.1/6.2 setting) or
  /// "Cancel Single Annotation".
  bool attribute_valuations = true;
  /// Emit the full guarded structure of Example 2.2.1: every tensor gets
  /// an activity guard `[S_u·U_u ⊗ NumRate > min_reviews]` over a per-user
  /// Stats annotation. Off by default (the evaluation's Table 5.1
  /// structure is guard-free after the S ↦ 1 simplification of
  /// Example 3.1.1).
  bool with_guards = false;
  double min_reviews = 2.0;
  uint64_t seed = 7;
};

/// \brief Generates a MovieLens-style dataset (substituting the real
/// MovieLens dump — see DESIGN.md §1): users with gender / age range /
/// occupation / zip code, movies with genre and year, and a Table 5.1
/// provenance expression
///   (UserID·MovieTitle·MovieYear) ⊗ (Rating, 1) ⊕ ...
/// grouped per movie. Ratings correlate with user attributes so that
/// attribute-constrained grouping carries signal.
class MovieLensGenerator {
 public:
  static Dataset Generate(const MovieLensConfig& config);
};

}  // namespace prox

#endif  // PROX_DATASETS_MOVIELENS_H_
