#ifndef PROX_DATASETS_DATASET_H_
#define PROX_DATASETS_DATASET_H_

#include <map>
#include <memory>
#include <string>

#include "baselines/feature.h"
#include "provenance/agg_value.h"
#include "provenance/expression.h"
#include "semantics/constraints.h"
#include "semantics/context.h"
#include "summarize/mapping_state.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"

namespace prox {

/// \brief One fully configured experimental input: the provenance
/// expression plus everything Table 5.1 specifies for its dataset —
/// annotation registry, entity tables / taxonomy, mapping constraints,
/// aggregation, φ combiners, valuation class and VAL-FUNC — and the
/// feature vectors the Clustering baseline needs.
///
/// Generators return Dataset by value; all internal pointers refer to the
/// heap-allocated registry, so the struct is movable.
struct Dataset {
  std::unique_ptr<AnnotationRegistry> registry;
  SemanticContext ctx;  // ctx.registry == registry.get()
  ConstraintSet constraints;
  std::unique_ptr<ProvenanceExpression> provenance;

  /// Dataset defaults per Table 5.1.
  AggKind agg = AggKind::kMax;
  PhiConfig phi;
  std::unique_ptr<ValuationClass> valuation_class;
  std::unique_ptr<ValFunc> val_func;

  /// Named domain handles ("user", "movie", ...).
  std::map<std::string, DomainId> domains;

  /// Clustering features per clusterable domain.
  std::map<DomainId, std::map<AnnotationId, RatingVector>> features;

  /// Content fingerprint carried by snapshot-loaded datasets; empty for
  /// generated datasets. serve::DatasetFingerprint returns it verbatim
  /// when set, skipping the full ToString re-serialization (docs/STORE.md).
  std::string fingerprint_hint;

  DomainId domain(const std::string& name) const { return domains.at(name); }
};

}  // namespace prox

#endif  // PROX_DATASETS_DATASET_H_
