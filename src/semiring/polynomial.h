#ifndef PROX_SEMIRING_POLYNOMIAL_H_
#define PROX_SEMIRING_POLYNOMIAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace prox {

/// \brief A polynomial in ℕ[X] — the provenance semiring of [21].
///
/// Monomials are canonical sorted variable multisets; coefficients are
/// naturals. This is the "plain" (non-aggregate) provenance carrier, used
/// for the φ combiner polynomials of Section 3.2, for guard bodies, and for
/// the #P-hardness construction of Proposition 4.1.1.
class Polynomial {
 public:
  using Var = uint32_t;
  /// Sorted multiset of variables (with repetitions for powers).
  using Mono = std::vector<Var>;

  /// The additive identity 0.
  Polynomial() = default;

  /// The polynomial consisting of a single variable.
  static Polynomial FromVar(Var v);

  /// The constant polynomial `c`.
  static Polynomial Constant(uint64_t c);

  static Polynomial Zero() { return Polynomial(); }
  static Polynomial One() { return Constant(1); }

  bool IsZero() const { return terms_.empty(); }

  /// Number of distinct monomials.
  size_t NumMonomials() const { return terms_.size(); }

  /// Total variable occurrences, counting monomial multiplicity but not
  /// coefficients — the "number of annotations" size measure of Section 3.2.
  int64_t Size() const;

  /// Highest monomial degree (0 for constants and for the zero polynomial).
  int64_t Degree() const;

  /// Sorted list of distinct variables appearing in the polynomial.
  std::vector<Var> Variables() const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial& operator+=(const Polynomial& other);
  Polynomial& operator*=(const Polynomial& other);

  bool operator==(const Polynomial& other) const {
    return terms_ == other.terms_;
  }
  bool operator!=(const Polynomial& other) const { return !(*this == other); }

  /// Evaluates under a boolean valuation: each variable becomes 0 or 1 and
  /// the semiring operations are applied in ℕ. Returns the natural result
  /// (so `truth` of the polynomial is `EvaluateBool(...) > 0`).
  uint64_t EvaluateBool(const std::function<bool(Var)>& truth) const;

  /// Evaluates in ℕ with arbitrary natural values per variable.
  uint64_t EvaluateNat(const std::function<uint64_t(Var)>& value) const;

  /// Applies a variable renaming homomorphism h (Section 3.1); the result is
  /// re-canonicalized, merging monomials that collide under h.
  Polynomial MapVars(const std::function<Var(Var)>& h) const;

  /// Renders e.g. "2·x0·x1 + x2^2" using `name` for variables.
  std::string ToString(const std::function<std::string(Var)>& name) const;

  /// Access to the canonical term map (monomial -> coefficient).
  const std::map<Mono, uint64_t>& terms() const { return terms_; }

  /// Adds `coeff` copies of monomial `m` (which need not be sorted).
  void AddTerm(Mono m, uint64_t coeff);

 private:
  std::map<Mono, uint64_t> terms_;
};

}  // namespace prox

#endif  // PROX_SEMIRING_POLYNOMIAL_H_
