#include "semiring/polynomial.h"

#include <algorithm>
#include <set>

namespace prox {

Polynomial Polynomial::FromVar(Var v) {
  Polynomial p;
  p.terms_[{v}] = 1;
  return p;
}

Polynomial Polynomial::Constant(uint64_t c) {
  Polynomial p;
  if (c != 0) p.terms_[{}] = c;
  return p;
}

int64_t Polynomial::Size() const {
  int64_t total = 0;
  for (const auto& [mono, coeff] : terms_) {
    (void)coeff;
    total += static_cast<int64_t>(mono.size());
  }
  return total;
}

int64_t Polynomial::Degree() const {
  int64_t deg = 0;
  for (const auto& [mono, coeff] : terms_) {
    (void)coeff;
    deg = std::max<int64_t>(deg, static_cast<int64_t>(mono.size()));
  }
  return deg;
}

std::vector<Polynomial::Var> Polynomial::Variables() const {
  std::set<Var> vars;
  for (const auto& [mono, coeff] : terms_) {
    (void)coeff;
    vars.insert(mono.begin(), mono.end());
  }
  return {vars.begin(), vars.end()};
}

void Polynomial::AddTerm(Mono m, uint64_t coeff) {
  if (coeff == 0) return;
  std::sort(m.begin(), m.end());
  auto it = terms_.find(m);
  if (it == terms_.end()) {
    terms_.emplace(std::move(m), coeff);
  } else {
    it->second += coeff;
  }
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  Polynomial out = *this;
  out += other;
  return out;
}

Polynomial& Polynomial::operator+=(const Polynomial& other) {
  for (const auto& [mono, coeff] : other.terms_) {
    auto it = terms_.find(mono);
    if (it == terms_.end()) {
      terms_.emplace(mono, coeff);
    } else {
      it->second += coeff;
    }
  }
  return *this;
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  Polynomial out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : other.terms_) {
      Mono m;
      m.reserve(ma.size() + mb.size());
      std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(),
                 std::back_inserter(m));
      auto it = out.terms_.find(m);
      if (it == out.terms_.end()) {
        out.terms_.emplace(std::move(m), ca * cb);
      } else {
        it->second += ca * cb;
      }
    }
  }
  return out;
}

Polynomial& Polynomial::operator*=(const Polynomial& other) {
  *this = *this * other;
  return *this;
}

uint64_t Polynomial::EvaluateBool(
    const std::function<bool(Var)>& truth) const {
  return EvaluateNat([&truth](Var v) -> uint64_t { return truth(v) ? 1 : 0; });
}

uint64_t Polynomial::EvaluateNat(
    const std::function<uint64_t(Var)>& value) const {
  uint64_t sum = 0;
  for (const auto& [mono, coeff] : terms_) {
    uint64_t prod = coeff;
    for (Var v : mono) {
      if (prod == 0) break;
      prod *= value(v);
    }
    sum += prod;
  }
  return sum;
}

Polynomial Polynomial::MapVars(const std::function<Var(Var)>& h) const {
  Polynomial out;
  for (const auto& [mono, coeff] : terms_) {
    Mono mapped;
    mapped.reserve(mono.size());
    for (Var v : mono) mapped.push_back(h(v));
    out.AddTerm(std::move(mapped), coeff);
  }
  return out;
}

std::string Polynomial::ToString(
    const std::function<std::string(Var)>& name) const {
  if (terms_.empty()) return "0";
  std::string out;
  bool first_term = true;
  for (const auto& [mono, coeff] : terms_) {
    if (!first_term) out += " + ";
    first_term = false;
    bool printed = false;
    if (coeff != 1 || mono.empty()) {
      out += std::to_string(coeff);
      printed = true;
    }
    size_t i = 0;
    while (i < mono.size()) {
      size_t j = i;
      while (j < mono.size() && mono[j] == mono[i]) ++j;
      if (printed) out += "·";
      out += name(mono[i]);
      if (j - i > 1) out += "^" + std::to_string(j - i);
      printed = true;
      i = j;
    }
  }
  return out;
}

}  // namespace prox
