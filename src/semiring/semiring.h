#ifndef PROX_SEMIRING_SEMIRING_H_
#define PROX_SEMIRING_SEMIRING_H_

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <limits>

namespace prox {

/// \brief Concept for a commutative semiring policy.
///
/// A commutative semiring (K, +, ·, 0, 1) — Chapter 2 of the thesis — has
/// two commutative monoids with · distributive over + and 0 annihilating
/// under ·. Policies are stateless types with static members so they can be
/// plugged into generic evaluation code at zero cost.
template <typename S>
concept SemiringPolicy = requires(typename S::Value a, typename S::Value b) {
  { S::Zero() } -> std::convertible_to<typename S::Value>;
  { S::One() } -> std::convertible_to<typename S::Value>;
  { S::Plus(a, b) } -> std::convertible_to<typename S::Value>;
  { S::Times(a, b) } -> std::convertible_to<typename S::Value>;
};

/// The boolean semiring ({false,true}, ∨, ∧, false, true): truth valuations
/// of provenance (Section 2.3) are semiring homomorphisms into it.
struct BoolSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Plus(Value a, Value b) { return a || b; }
  static Value Times(Value a, Value b) { return a && b; }
};

/// The counting semiring (ℕ, +, ·, 0, 1): evaluating an ℕ[Ann] polynomial
/// with annotation multiplicities yields derivation counts.
struct CountingSemiring {
  using Value = uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
};

/// The tropical semiring (ℕ∞, min, +, ∞, 0), used by the DDP dataset
/// (Example 5.2.2, after [17]) where + over executions selects the cheapest
/// feasible one and · accumulates per-transition costs.
struct TropicalSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::min(a, b); }
  static Value Times(Value a, Value b) { return a + b; }
};

static_assert(SemiringPolicy<BoolSemiring>);
static_assert(SemiringPolicy<CountingSemiring>);
static_assert(SemiringPolicy<TropicalSemiring>);

}  // namespace prox

#endif  // PROX_SEMIRING_SEMIRING_H_
