#ifndef PROX_SERVICE_SERVICE_METRICS_H_
#define PROX_SERVICE_SERVICE_METRICS_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace prox {

/// \file
/// Per-service request / error / latency metric families
/// (docs/OBSERVABILITY.md). Labels are pre-rendered strings: the registry
/// keys metrics by (name, labels), so each service — and each
/// (service, code) combination for errors — is its own time series.
///
/// Request counters and duration histograms are looked up once per call
/// site (cache the pointer in a function-local static); error counters are
/// looked up on the error path only, since the code label varies.

/// `prox_service_requests_total{service="..."}`.
inline obs::Counter* ServiceRequests(const std::string& service) {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_service_requests_total", "Service requests received.",
      "service=\"" + service + "\"");
}

/// `prox_service_errors_total{service="...",code="..."}`.
inline obs::Counter* ServiceErrors(const std::string& service,
                                   StatusCode code) {
  return obs::MetricsRegistry::Default().GetCounter(
      "prox_service_errors_total",
      "Service requests that returned a non-OK Status, by code.",
      "service=\"" + service + "\",code=\"" + StatusCodeToString(code) +
          "\"");
}

/// A latency histogram (LatencyBucketsNanos) named `name`.
inline obs::Histogram* ServiceDuration(const std::string& name) {
  return obs::MetricsRegistry::Default().GetHistogram(
      name, "Service request wall time, nanoseconds.",
      obs::LatencyBucketsNanos());
}

}  // namespace prox

#endif  // PROX_SERVICE_SERVICE_METRICS_H_
