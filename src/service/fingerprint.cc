#include "service/fingerprint.h"

#include <cstdio>

#include "obs/metrics.h"

namespace prox {

namespace {

// FNV-1a (the constants serve/wire.cc historically used; the rendered
// fingerprints must stay bit-compatible with existing snapshots and
// persisted caches).
constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t* hash, const std::string& bytes) {
  for (unsigned char c : bytes) {
    *hash ^= c;
    *hash *= kFnvPrime;
  }
  // Field separator so "ab"+"c" and "a"+"bc" cannot collide.
  *hash ^= 0xFFu;
  *hash *= kFnvPrime;
}

}  // namespace

std::string ComputeDatasetFingerprint(const Dataset& dataset) {
  // Snapshot-loaded datasets carry the fingerprint their snapshot was
  // saved under (docs/STORE.md); returning it verbatim skips the full
  // provenance re-serialization below — the dominant session-setup cost
  // on large datasets — and keeps cache keys stable across save/load.
  if (!dataset.fingerprint_hint.empty()) return dataset.fingerprint_hint;
  static obs::Counter* fallback_metric =
      obs::MetricsRegistry::Default().GetCounter(
          "prox_serve_fingerprint_fallback_total",
          "Dataset fingerprints computed by re-serializing the provenance "
          "because no snapshot checksum was available.");
  fallback_metric->Increment();
  uint64_t hash = kFnvOffset;
  // Expression-core version byte: bump when the summarization engine's
  // representation changes in a way that could alter cached bodies, so
  // pre-IR cache entries can never be served for post-IR requests (the
  // engine guarantees byte-identity, but the cache key should not depend
  // on that proof holding forever). "ir1" = prox::ir flat core, v1.
  FnvMix(&hash, "ir1");
  const AnnotationRegistry& registry = *dataset.registry;
  for (size_t d = 0; d < registry.num_domains(); ++d) {
    FnvMix(&hash, registry.domain_name(static_cast<DomainId>(d)));
  }
  for (size_t a = 0; a < registry.size(); ++a) {
    FnvMix(&hash, registry.name(static_cast<AnnotationId>(a)));
  }
  if (dataset.provenance != nullptr) {
    FnvMix(&hash, dataset.provenance->ToString(registry));
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace prox
