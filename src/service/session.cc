#include "service/session.h"

#include "service/fingerprint.h"

namespace prox {

ProxSession::ProxSession(Dataset dataset)
    : dataset_(std::move(dataset)),
      selection_service_(&dataset_,
                         dataset_.domains.count("movie") ? "movie"
                         : dataset_.domains.count("page") ? "page"
                                                          : dataset_.domains
                                                                .begin()
                                                                ->first),
      summarization_service_(&dataset_),
      evaluator_service_(&dataset_),
      ingest_log_(&dataset_) {}

Result<int64_t> ProxSession::Select(const SelectionCriteria& criteria) {
  std::lock_guard<std::mutex> lock(mu_);
  PROX_ASSIGN_OR_RETURN(selection_, selection_service_.Select(criteria));
  outcome_.reset();
  return selection_->Size();
}

int64_t ProxSession::SelectAll() {
  std::lock_guard<std::mutex> lock(mu_);
  selection_ = dataset_.provenance->Clone();
  outcome_.reset();
  return selection_->Size();
}

Result<int64_t> ProxSession::Summarize(const SummarizationRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (selection_ == nullptr) {
    return Status::FailedPrecondition("no provenance selected yet");
  }
  PROX_ASSIGN_OR_RETURN(
      outcome_, summarization_service_.Summarize(*selection_, request));
  return outcome_->final_size;
}

Result<int64_t> ProxSession::Resummarize(const SummarizationRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (selection_ == nullptr) {
    return Status::FailedPrecondition("no provenance selected yet");
  }
  if (!outcome_.has_value()) {
    return Status::FailedPrecondition(
        "no previous summary to warm-start from");
  }
  // Keep the previous outcome alive while its summaries() seed the run,
  // and restore it if the warm run fails.
  SummaryOutcome previous = std::move(*outcome_);
  outcome_.reset();
  Result<SummaryOutcome> result =
      summarization_service_.Resummarize(*selection_, request, previous);
  if (!result.ok()) {
    outcome_ = std::move(previous);
    return result.status();
  }
  outcome_ = std::move(result).value();
  return outcome_->final_size;
}

Result<ingest::ApplyReceipt> ProxSession::Ingest(
    const ingest::DeltaBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pin the pre-ingest fingerprint before the dataset grows, so chaining
  // always starts from the value cold requests were keyed under.
  if (fingerprint_memo_.empty()) {
    fingerprint_memo_ = ComputeDatasetFingerprint(dataset_);
  }
  PROX_ASSIGN_OR_RETURN(ingest::ApplyReceipt receipt,
                        ingest_log_.Append(batch));
  fingerprint_memo_ = ingest::ChainFingerprint(fingerprint_memo_,
                                               receipt.digest);
  if (selection_ != nullptr) {
    // The grown provenance replaces the selection wholesale; narrower
    // selections don't survive ingest (documented in the header).
    selection_ = dataset_.provenance->Clone();
  }
  return receipt;
}

std::string ProxSession::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fingerprint_memo_.empty()) {
    fingerprint_memo_ = ComputeDatasetFingerprint(dataset_);
  }
  return fingerprint_memo_;
}

uint64_t ProxSession::next_ingest_sequence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ingest_log_.next_sequence();
}

int64_t ProxSession::provenance_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dataset_.provenance->Size();
}

std::vector<std::string> ProxSession::DescribeGroups() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  if (!outcome_.has_value()) return out;
  const AnnotationRegistry& reg = *dataset_.registry;
  for (const auto& [summary, members] : outcome_->state.summaries()) {
    if (reg.name(summary).rfind("~scratch", 0) == 0) continue;
    std::string line = reg.name(summary) + " (size " +
                       std::to_string(members.size()) + "): ";
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) line += ", ";
      line += reg.name(members[i]);
    }
    out.push_back(std::move(line));
  }
  return out;
}

Result<std::string> ProxSession::SummaryExpression() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!outcome_.has_value()) {
    return Status::FailedPrecondition("no summary computed yet");
  }
  return outcome_->summary->ToString(*dataset_.registry);
}

Result<EvaluationReport> ProxSession::EvaluateOnSummary(
    const Assignment& assignment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!outcome_.has_value()) {
    return Status::FailedPrecondition("no summary computed yet");
  }
  return evaluator_service_.Evaluate(*outcome_->summary, &outcome_->state,
                                     assignment);
}

Result<EvaluationReport> ProxSession::EvaluateOnSelection(
    const Assignment& assignment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (selection_ == nullptr) {
    return Status::FailedPrecondition("no provenance selected yet");
  }
  return evaluator_service_.Evaluate(*selection_, nullptr, assignment);
}

}  // namespace prox
