#include "service/session.h"

namespace prox {

ProxSession::ProxSession(Dataset dataset)
    : dataset_(std::move(dataset)),
      selection_service_(&dataset_,
                         dataset_.domains.count("movie") ? "movie"
                         : dataset_.domains.count("page") ? "page"
                                                          : dataset_.domains
                                                                .begin()
                                                                ->first),
      summarization_service_(&dataset_),
      evaluator_service_(&dataset_) {}

Result<int64_t> ProxSession::Select(const SelectionCriteria& criteria) {
  std::lock_guard<std::mutex> lock(mu_);
  PROX_ASSIGN_OR_RETURN(selection_, selection_service_.Select(criteria));
  outcome_.reset();
  return selection_->Size();
}

int64_t ProxSession::SelectAll() {
  std::lock_guard<std::mutex> lock(mu_);
  selection_ = dataset_.provenance->Clone();
  outcome_.reset();
  return selection_->Size();
}

Result<int64_t> ProxSession::Summarize(const SummarizationRequest& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (selection_ == nullptr) {
    return Status::FailedPrecondition("no provenance selected yet");
  }
  PROX_ASSIGN_OR_RETURN(
      outcome_, summarization_service_.Summarize(*selection_, request));
  return outcome_->final_size;
}

std::vector<std::string> ProxSession::DescribeGroups() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  if (!outcome_.has_value()) return out;
  const AnnotationRegistry& reg = *dataset_.registry;
  for (const auto& [summary, members] : outcome_->state.summaries()) {
    if (reg.name(summary).rfind("~scratch", 0) == 0) continue;
    std::string line = reg.name(summary) + " (size " +
                       std::to_string(members.size()) + "): ";
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) line += ", ";
      line += reg.name(members[i]);
    }
    out.push_back(std::move(line));
  }
  return out;
}

Result<std::string> ProxSession::SummaryExpression() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!outcome_.has_value()) {
    return Status::FailedPrecondition("no summary computed yet");
  }
  return outcome_->summary->ToString(*dataset_.registry);
}

Result<EvaluationReport> ProxSession::EvaluateOnSummary(
    const Assignment& assignment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!outcome_.has_value()) {
    return Status::FailedPrecondition("no summary computed yet");
  }
  return evaluator_service_.Evaluate(*outcome_->summary, &outcome_->state,
                                     assignment);
}

Result<EvaluationReport> ProxSession::EvaluateOnSelection(
    const Assignment& assignment) {
  std::lock_guard<std::mutex> lock(mu_);
  if (selection_ == nullptr) {
    return Status::FailedPrecondition("no provenance selected yet");
  }
  return evaluator_service_.Evaluate(*selection_, nullptr, assignment);
}

}  // namespace prox
