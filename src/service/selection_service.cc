#include "service/selection_service.h"

#include <algorithm>

#include "common/str_util.h"
#include "obs/trace.h"
#include "provenance/aggregate_expr.h"
#include "service/service_metrics.h"

namespace prox {

SelectionService::SelectionService(const Dataset* dataset,
                                   std::string group_domain)
    : dataset_(dataset),
      group_domain_(dataset->domain(group_domain)) {}

std::vector<std::string> SelectionService::ListTitles() const {
  std::vector<std::string> titles;
  for (AnnotationId a :
       dataset_->registry->AnnotationsInDomain(group_domain_)) {
    if (!dataset_->registry->is_summary(a)) {
      titles.push_back(dataset_->registry->name(a));
    }
  }
  std::sort(titles.begin(), titles.end());
  return titles;
}

std::vector<std::string> SelectionService::SearchTitles(
    const std::string& substring) const {
  std::string needle = ToLowerAscii(substring);
  std::vector<std::string> out;
  for (const std::string& title : ListTitles()) {
    if (ToLowerAscii(title).find(needle) != std::string::npos) {
      out.push_back(title);
    }
  }
  return out;
}

bool SelectionService::GroupMatches(AnnotationId group,
                                    const SelectionCriteria& c) const {
  const AnnotationRegistry& reg = *dataset_->registry;
  if (reg.domain(group) != group_domain_) return false;
  const std::string& title = reg.name(group);

  if (!c.titles.empty() &&
      std::find(c.titles.begin(), c.titles.end(), title) == c.titles.end()) {
    return false;
  }
  if (!c.title_substring.empty() &&
      ToLowerAscii(title).find(ToLowerAscii(c.title_substring)) ==
          std::string::npos) {
    return false;
  }
  if (!c.genres.empty() || c.year.has_value()) {
    const EntityTable* table = dataset_->ctx.TableFor(group_domain_);
    uint32_t row = reg.entity_row(group);
    if (table == nullptr || row == kNoEntity) return false;
    if (!c.genres.empty()) {
      auto genre_attr = table->FindAttribute("Genre");
      if (!genre_attr.ok()) return false;
      const std::string& genre = table->ValueNameOf(row, genre_attr.value());
      if (std::find(c.genres.begin(), c.genres.end(), genre) ==
          c.genres.end()) {
        return false;
      }
    }
    if (c.year.has_value()) {
      auto year_attr = table->FindAttribute("Year");
      if (!year_attr.ok()) return false;
      if (table->ValueNameOf(row, year_attr.value()) !=
          std::to_string(*c.year)) {
        return false;
      }
    }
  }
  return true;
}

Result<std::unique_ptr<ProvenanceExpression>> SelectionService::Select(
    const SelectionCriteria& criteria) const {
  static obs::Counter* requests = ServiceRequests("select");
  static obs::Histogram* duration =
      ServiceDuration("prox_service_select_duration_nanos");
  requests->Increment();
  obs::TraceSpan span("service.select");
  Result<std::unique_ptr<ProvenanceExpression>> result = SelectImpl(criteria);
  duration->Observe(static_cast<double>(span.Close()));
  if (!result.ok()) {
    ServiceErrors("select", result.status().code())->Increment();
  }
  return result;
}

Result<std::unique_ptr<ProvenanceExpression>> SelectionService::SelectImpl(
    const SelectionCriteria& criteria) const {
  // Read through the facade so the dataset's provenance can be either the
  // legacy tree or a prox::ir expression (docs/IR.md).
  const AggregateFacade* agg = dataset_->provenance->AsAggregate();
  if (agg == nullptr) {
    return Status::FailedPrecondition(
        "selection requires an aggregate provenance expression");
  }
  for (const std::string& title : criteria.titles) {
    auto found = dataset_->registry->Find(title);
    if (!found.ok()) return found.status();
  }
  auto selected = std::make_unique<AggregateExpression>(agg->agg_kind());
  const size_t num_terms = agg->agg_num_terms();
  for (size_t i = 0; i < num_terms; ++i) {
    const AggTermView view = agg->agg_term(i);
    if (!GroupMatches(view.group, criteria)) continue;
    TensorTerm term;
    term.monomial = MonomialFromSpan(view.mono, view.mono_len);
    term.group = view.group;
    term.value = view.value;
    if (view.has_guard) term.guard = GuardFromView(view);
    selected->AddTerm(std::move(term));
  }
  selected->Simplify();
  if (selected->num_terms() == 0) {
    return Status::NotFound("no provenance matches the selection criteria");
  }
  return std::unique_ptr<ProvenanceExpression>(std::move(selected));
}

}  // namespace prox
