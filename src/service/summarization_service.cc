#include "service/summarization_service.h"

#include <cmath>

#include "obs/trace.h"
#include "service/service_metrics.h"
#include "summarize/distance.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"

namespace prox {

Status SummarizationRequest::Validate() const {
  if (!std::isfinite(w_dist) || w_dist < 0) {
    return Status::InvalidArgument("w_dist must be finite and >= 0");
  }
  if (!std::isfinite(w_size) || w_size < 0) {
    return Status::InvalidArgument("w_size must be finite and >= 0");
  }
  if (w_dist + w_size <= 0) {
    return Status::InvalidArgument("w_dist + w_size must be positive");
  }
  if (!std::isfinite(target_dist) || target_dist < 0) {
    return Status::InvalidArgument("target_dist must be finite and >= 0");
  }
  if (target_size < 1) {
    return Status::InvalidArgument("target_size must be >= 1");
  }
  if (max_steps < 0) {
    return Status::InvalidArgument("max_steps must be >= 0");
  }
  if (threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  return Status::OK();
}

Result<SummaryOutcome> SummarizationService::Summarize(
    const ProvenanceExpression& selected,
    const SummarizationRequest& request) const {
  static obs::Counter* requests = ServiceRequests("summarize");
  static obs::Histogram* duration =
      ServiceDuration("prox_service_summarize_duration_nanos");
  requests->Increment();
  obs::TraceSpan span("service.summarize");
  Result<SummaryOutcome> result = SummarizeImpl(selected, request, nullptr);
  duration->Observe(static_cast<double>(span.Close()));
  if (!result.ok()) {
    ServiceErrors("summarize", result.status().code())->Increment();
  }
  return result;
}

Result<SummaryOutcome> SummarizationService::Resummarize(
    const ProvenanceExpression& selected, const SummarizationRequest& request,
    const SummaryOutcome& previous) const {
  static obs::Counter* requests = ServiceRequests("resummarize");
  static obs::Histogram* duration =
      ServiceDuration("prox_service_summarize_duration_nanos");
  requests->Increment();
  obs::TraceSpan span("service.resummarize");
  Result<SummaryOutcome> result = SummarizeImpl(selected, request, &previous);
  duration->Observe(static_cast<double>(span.Close()));
  if (!result.ok()) {
    ServiceErrors("resummarize", result.status().code())->Increment();
  }
  return result;
}

Result<SummaryOutcome> SummarizationService::SummarizeImpl(
    const ProvenanceExpression& selected, const SummarizationRequest& request,
    const SummaryOutcome* warm_from) const {
  PROX_RETURN_NOT_OK(request.Validate());
  using VC = SummarizationRequest::ValuationClassKind;
  using VF = SummarizationRequest::ValFuncKind;

  std::unique_ptr<ValuationClass> owned_class;
  const ValuationClass* valuation_class = dataset_->valuation_class.get();
  switch (request.valuation_class) {
    case VC::kDatasetDefault:
      break;
    case VC::kCancelSingleAnnotation:
      owned_class = std::make_unique<CancelSingleAnnotation>();
      valuation_class = owned_class.get();
      break;
    case VC::kCancelSingleAttribute:
      owned_class = std::make_unique<CancelSingleAttribute>();
      valuation_class = owned_class.get();
      break;
  }
  if (valuation_class == nullptr) {
    return Status::FailedPrecondition("dataset provides no valuation class");
  }

  std::unique_ptr<ValFunc> owned_func;
  const ValFunc* val_func = dataset_->val_func.get();
  switch (request.val_func) {
    case VF::kDatasetDefault:
      break;
    case VF::kEuclidean:
      owned_func = std::make_unique<EuclideanValFunc>();
      val_func = owned_func.get();
      break;
    case VF::kAbsoluteDifference:
      owned_func = std::make_unique<AbsoluteDifferenceValFunc>();
      val_func = owned_func.get();
      break;
    case VF::kDisagreement:
      owned_func = std::make_unique<DisagreementValFunc>();
      val_func = owned_func.get();
      break;
  }
  if (val_func == nullptr) {
    return Status::FailedPrecondition("dataset provides no VAL-FUNC");
  }

  std::vector<Valuation> valuations =
      valuation_class->Generate(selected, dataset_->ctx);
  EnumeratedDistance oracle(&selected, dataset_->registry.get(), val_func,
                            valuations, request.threads);

  SummarizerOptions options;
  options.w_dist = request.w_dist;
  options.w_size = request.w_size;
  options.target_dist = request.target_dist;
  options.target_size = request.target_size;
  options.max_steps = request.max_steps;
  options.phi = dataset_->phi;
  options.threads = request.threads;
  if (warm_from != nullptr) {
    options.warm_seed = &warm_from->state.summaries();
    // The incremental scorer is bit-identical where supported; the warm
    // path opts in whenever the resolved VAL-FUNC is one of the
    // coordinate-decomposable metrics it implements.
    if (dynamic_cast<const EuclideanValFunc*>(val_func) != nullptr) {
      options.incremental = SummarizerOptions::Incremental::kEuclidean;
    } else if (dynamic_cast<const AbsoluteDifferenceValFunc*>(val_func) !=
               nullptr) {
      options.incremental = SummarizerOptions::Incremental::kL1;
    }
  }

  Summarizer summarizer(&selected, dataset_->registry.get(), &dataset_->ctx,
                        &dataset_->constraints, &oracle, &valuations, options);
  return summarizer.Run();
}

}  // namespace prox
