#ifndef PROX_SERVICE_SELECTION_SERVICE_H_
#define PROX_SERVICE_SELECTION_SERVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "datasets/dataset.h"

namespace prox {

/// What the selection view of the PROX UI lets the user specify: movies by
/// explicit title, by a title search string, or by genres and release year
/// (Figures 7.2 / 7.3).
struct SelectionCriteria {
  std::vector<std::string> titles;
  std::string title_substring;
  std::vector<std::string> genres;
  std::optional<int> year;
};

/// \brief The PROX selection service: restricts the dataset's provenance to
/// the terms whose group (movie) matches user-defined criteria, producing
/// the expression the summarization view displays as input (Figure 7.4).
class SelectionService {
 public:
  /// `dataset` must hold an AggregateExpression and a "movie"-like group
  /// domain named by `group_domain`.
  SelectionService(const Dataset* dataset,
                   std::string group_domain = "movie");

  /// All group (movie) titles, sorted.
  std::vector<std::string> ListTitles() const;

  /// Titles containing `substring` (case-insensitive), sorted — the search
  /// box of Figure 7.2.
  std::vector<std::string> SearchTitles(const std::string& substring) const;

  /// The sub-expression covering exactly the matching groups. Errors when
  /// the criteria match nothing or name unknown titles. Instrumented:
  /// counted in `prox_service_requests_total` /
  /// `prox_service_errors_total` (service="select"), timed by the
  /// "service.select" trace span and the
  /// `prox_service_select_duration_nanos` histogram.
  Result<std::unique_ptr<ProvenanceExpression>> Select(
      const SelectionCriteria& criteria) const;

 private:
  Result<std::unique_ptr<ProvenanceExpression>> SelectImpl(
      const SelectionCriteria& criteria) const;

  bool GroupMatches(AnnotationId group, const SelectionCriteria& c) const;

  const Dataset* dataset_;
  DomainId group_domain_;
};

}  // namespace prox

#endif  // PROX_SERVICE_SELECTION_SERVICE_H_
