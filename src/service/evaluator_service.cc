#include "service/evaluator_service.h"

#include "obs/trace.h"
#include "service/service_metrics.h"

namespace prox {

Result<Valuation> EvaluatorService::ResolveAssignment(
    const Assignment& assignment) const {
  const AnnotationRegistry& reg = *dataset_->registry;
  std::vector<AnnotationId> cancelled;

  for (const std::string& name : assignment.false_annotations) {
    auto found = reg.Find(name);
    if (!found.ok()) return found.status();
    cancelled.push_back(found.value());
  }

  for (const auto& [attr_name, value] : assignment.false_attributes) {
    bool attr_known = false;
    for (const auto& [domain, table] : dataset_->ctx.tables) {
      auto attr = table.FindAttribute(attr_name);
      if (!attr.ok()) continue;
      attr_known = true;
      for (AnnotationId a : reg.AnnotationsInDomain(domain)) {
        uint32_t row = reg.entity_row(a);
        if (row == kNoEntity) continue;
        if (table.ValueNameOf(row, attr.value()) == value) {
          cancelled.push_back(a);
        }
      }
    }
    if (!attr_known) {
      return Status::NotFound("unknown attribute: " + attr_name);
    }
  }
  return Valuation(std::move(cancelled), "assignment");
}

Result<EvaluationReport> EvaluatorService::Evaluate(
    const ProvenanceExpression& expr, const MappingState* state,
    const Assignment& assignment) const {
  static obs::Counter* requests = ServiceRequests("evaluate");
  static obs::Histogram* duration =
      ServiceDuration("prox_service_evaluate_duration_nanos");
  requests->Increment();
  obs::TraceSpan span("service.evaluate");
  Result<EvaluationReport> result = EvaluateImpl(expr, state, assignment);
  duration->Observe(static_cast<double>(span.Close()));
  if (!result.ok()) {
    ServiceErrors("evaluate", result.status().code())->Increment();
  }
  return result;
}

Result<EvaluationReport> EvaluatorService::EvaluateImpl(
    const ProvenanceExpression& expr, const MappingState* state,
    const Assignment& assignment) const {
  Valuation base;
  PROX_ASSIGN_OR_RETURN(base, ResolveAssignment(assignment));

  const size_t n = dataset_->registry->size();
  MaterializedValuation mat =
      state != nullptr ? state->Transform(base, n)
                       : MaterializedValuation(base, n);

  obs::TraceSpan eval_span("evaluate.apply");
  EvalResult result = expr.Evaluate(mat);
  const int64_t nanos = eval_span.Close();

  EvaluationReport report;
  report.eval_nanos = nanos;
  if (result.kind() == EvalResult::Kind::kVector) {
    for (const auto& coord : result.coords()) {
      std::string label = coord.group == kNoAnnotation
                              ? "*"
                              : dataset_->registry->name(coord.group);
      report.rows.emplace_back(std::move(label), coord.value);
    }
  } else if (result.kind() == EvalResult::Kind::kScalar) {
    report.rows.emplace_back("*", result.scalar());
  } else {
    report.rows.emplace_back(result.feasible() ? "feasible" : "infeasible",
                             result.cost());
  }
  report.result = std::move(result);
  return report;
}

}  // namespace prox
