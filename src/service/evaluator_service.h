#ifndef PROX_SERVICE_EVALUATOR_SERVICE_H_
#define PROX_SERVICE_EVALUATOR_SERVICE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "datasets/dataset.h"
#include "summarize/mapping_state.h"

namespace prox {

/// A provisioning assignment the user specifies in the summary view
/// (Figures 7.9 / 7.10): annotations to set false by name, and/or
/// attribute values whose carriers are all set false ("all Male users").
struct Assignment {
  std::vector<std::string> false_annotations;
  /// (attribute name, value) pairs, matched across all entity tables.
  std::vector<std::pair<std::string, std::string>> false_attributes;
};

/// The evaluation result the UI presents: one row per group (movie) with
/// its aggregated value, plus the wall time in nanoseconds (the UI reports
/// evaluation times in nanoseconds).
struct EvaluationReport {
  EvalResult result;
  std::vector<std::pair<std::string, double>> rows;
  int64_t eval_nanos = 0;
};

/// \brief The PROX evaluator (provisioning) service: applies hypothetical
/// truth valuations to an expression — original or summarized — and
/// reports the resulting aggregates, without re-running the application
/// (Section 2.3).
class EvaluatorService {
 public:
  explicit EvaluatorService(const Dataset* dataset) : dataset_(dataset) {}

  /// Builds the base valuation an Assignment denotes (over original
  /// annotations).
  Result<Valuation> ResolveAssignment(const Assignment& assignment) const;

  /// Evaluates `expr` under `assignment`. When `state` is given (the
  /// expression is a summary), the valuation is first transformed into
  /// v^{h,φ} so summary annotations receive their combined truth values —
  /// approximate provisioning on the summary. Instrumented: counted in
  /// `prox_service_requests_total` / `prox_service_errors_total`
  /// (service="evaluate"), timed by the "service.evaluate" trace span and
  /// the `prox_service_evaluate_duration_nanos` histogram; the inner
  /// expression evaluation is the "evaluate.apply" span, whose duration is
  /// EvaluationReport::eval_nanos.
  Result<EvaluationReport> Evaluate(const ProvenanceExpression& expr,
                                    const MappingState* state,
                                    const Assignment& assignment) const;

 private:
  Result<EvaluationReport> EvaluateImpl(const ProvenanceExpression& expr,
                                        const MappingState* state,
                                        const Assignment& assignment) const;

  const Dataset* dataset_;
};

}  // namespace prox

#endif  // PROX_SERVICE_EVALUATOR_SERVICE_H_
