#ifndef PROX_SERVICE_FINGERPRINT_H_
#define PROX_SERVICE_FINGERPRINT_H_

#include <string>

#include "datasets/dataset.h"

namespace prox {

/// Content fingerprint of a dataset, 16 hex chars: either the
/// `fingerprint_hint` a snapshot load stamped (verbatim, free), or an
/// FNV-1a hash over the expression-core version tag, domain and
/// annotation names, and the full provenance ToString — the slow path,
/// counted by `prox_serve_fingerprint_fallback_total`. Cache keys, the
/// store layer and the ingest fingerprint chain all build on this value;
/// ProxSession memoizes it so the slow path runs at most once per session
/// (docs/INGEST.md).
std::string ComputeDatasetFingerprint(const Dataset& dataset);

}  // namespace prox

#endif  // PROX_SERVICE_FINGERPRINT_H_
