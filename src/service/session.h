#ifndef PROX_SERVICE_SESSION_H_
#define PROX_SERVICE_SESSION_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "ingest/delta.h"
#include "ingest/ingest_log.h"
#include "service/evaluator_service.h"
#include "service/selection_service.h"
#include "service/summarization_service.h"

namespace prox {

/// \brief A PROX user session: owns a dataset and drives the three-view
/// workflow of the web UI (Chapter 7) — select provenance, summarize it,
/// then inspect the summary's groups and evaluate assignments on it.
///
/// Thread-safety contract: every member function serializes behind an
/// internal mutex, so concurrent callers (e.g. prox::serve workers
/// sharing one session) cannot interleave mutations — Summarize writes
/// summary annotations into the dataset's AnnotationRegistry, whose
/// registration side is not synchronized (annotation.h), and Select
/// swaps the expression Summarize reads. The selection and the summary
/// outcome live inside that guarded state, so they are never handed out
/// as raw pointers: read them through `Lock()`, whose LockedView holds
/// the session mutex for exactly as long as the view is alive, or take
/// value snapshots (DescribeGroups, SummaryExpression, the engine
/// facade's accessors). `dataset()` is safe only while the caller can
/// rule out concurrent Select/Summarize calls (single-threaded use, an
/// external lock, or a live LockedView).
class ProxSession {
 public:
  /// Takes ownership of the dataset.
  explicit ProxSession(Dataset dataset);

  /// Selection view: restricts the provenance and stores it as the
  /// summarization input. Returns the selected expression's size.
  Result<int64_t> Select(const SelectionCriteria& criteria);

  /// Skips selection: uses the whole dataset provenance.
  int64_t SelectAll();

  /// Summarization view: runs Algorithm 1 on the current selection.
  Result<int64_t> Summarize(const SummarizationRequest& request);

  /// Re-runs summarization warm-started from the previous outcome's
  /// mapping state (docs/INGEST.md): the recorded merges are replayed
  /// instead of re-searched and the greedy loop continues from there.
  /// Requires a selection and a previous Summarize/Resummarize outcome;
  /// on failure the previous outcome is kept.
  Result<int64_t> Resummarize(const SummarizationRequest& request);

  /// Streaming ingest: validates and applies one delta batch to the
  /// dataset (monotone growth only), refreshes the selection to the grown
  /// provenance (a filtered selection is reset to select-all; callers
  /// re-Select if they need a narrower view), and chains the memoized
  /// dataset fingerprint with the batch digest. The previous summary
  /// outcome is kept — it seeds the next warm Resummarize.
  Result<ingest::ApplyReceipt> Ingest(const ingest::DeltaBatch& batch);

  /// The dataset's content fingerprint (service/fingerprint.h), memoized:
  /// the slow FNV re-hash runs at most once per session, and after that
  /// every ingest advances the value by digest chaining instead of a
  /// whole-dataset re-hash.
  std::string fingerprint() const;

  /// Sequence number the next ingested batch must carry.
  uint64_t next_ingest_sequence() const;

  /// Current dataset provenance Size() (thread-safe snapshot).
  int64_t provenance_size() const;

  /// Summary view, groups subview: one line per summary annotation with
  /// its member names (Figure 7.5).
  std::vector<std::string> DescribeGroups() const;

  /// Summary view, expression subview (Figure 7.8).
  Result<std::string> SummaryExpression() const;

  /// Evaluates an assignment on the summary (approximate provisioning).
  Result<EvaluationReport> EvaluateOnSummary(const Assignment& assignment);

  /// Evaluates the same assignment on the *original* selection, for
  /// comparing accuracy and usage time (Figures 7.9 / 7.10 show both).
  Result<EvaluationReport> EvaluateOnSelection(const Assignment& assignment);

  /// Guard-scoped read access to the mutex-guarded state. The view holds
  /// the session mutex from construction to destruction, so the pointers
  /// it exposes are valid exactly as long as the view is alive — and no
  /// Select/Summarize/Ingest can run concurrently. Do NOT call any
  /// ProxSession member function while a view on the same session is
  /// alive (the mutex is not recursive; it would self-deadlock).
  class LockedView {
   public:
    LockedView(LockedView&&) = default;
    LockedView(const LockedView&) = delete;
    LockedView& operator=(const LockedView&) = delete;

    const Dataset& dataset() const { return session_->dataset_; }
    /// nullptr when no selection has been made yet.
    const ProvenanceExpression* selection() const {
      return session_->selection_.get();
    }
    /// nullptr when no summary has been computed yet.
    const SummaryOutcome* outcome() const {
      return session_->outcome_.has_value() ? &*session_->outcome_ : nullptr;
    }

   private:
    friend class ProxSession;
    explicit LockedView(const ProxSession* session)
        : session_(session), lock_(session->mu_) {}

    const ProxSession* session_;
    std::unique_lock<std::mutex> lock_;
  };

  /// Locks the session and returns a view over its selection/outcome/
  /// dataset (see LockedView).
  LockedView Lock() const { return LockedView(this); }

  /// Unsynchronized dataset access — safe only while the caller can rule
  /// out concurrent mutations (single-threaded use, an external lock, or
  /// a live LockedView). Prefer Lock().dataset() in concurrent contexts.
  const Dataset& dataset() const { return dataset_; }

 private:
  /// Serializes Select/Summarize/Evaluate and the describe methods (see
  /// class comment).
  mutable std::mutex mu_;

  Dataset dataset_;
  SelectionService selection_service_;
  SummarizationService summarization_service_;
  EvaluatorService evaluator_service_;
  ingest::IngestLog ingest_log_;
  std::unique_ptr<ProvenanceExpression> selection_;
  std::optional<SummaryOutcome> outcome_;
  /// Memoized dataset fingerprint ("" = not computed yet). Advanced by
  /// Ingest via digest chaining; never recomputed once set.
  mutable std::string fingerprint_memo_;
};

}  // namespace prox

#endif  // PROX_SERVICE_SESSION_H_
