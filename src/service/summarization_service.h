#ifndef PROX_SERVICE_SUMMARIZATION_SERVICE_H_
#define PROX_SERVICE_SUMMARIZATION_SERVICE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "datasets/dataset.h"
#include "summarize/summarizer.h"

namespace prox {

/// The knobs the summarization view exposes (Figure 7.4): weights, bounds,
/// step budget, aggregation, valuation class and VAL-FUNC.
struct SummarizationRequest {
  double w_dist = 0.5;
  double w_size = 0.5;
  double target_dist = 1.0;
  int64_t target_size = 1;
  int max_steps = 10;

  enum class ValuationClassKind {
    kDatasetDefault,
    kCancelSingleAnnotation,
    kCancelSingleAttribute,
  };
  ValuationClassKind valuation_class = ValuationClassKind::kDatasetDefault;

  enum class ValFuncKind {
    kDatasetDefault,
    kEuclidean,
    kAbsoluteDifference,
    kDisagreement,
  };
  ValFuncKind val_func = ValFuncKind::kDatasetDefault;

  /// Worker threads for candidate scoring and the distance oracle
  /// (0 = process default, 1 = serial; SummarizerOptions::threads
  /// convention). Identical results at every setting.
  int threads = 1;

  /// Range checks on every knob: weights must be finite and >= 0 with a
  /// positive sum, target_size >= 1, max_steps >= 0, threads >= 0.
  /// InvalidArgument otherwise. SummarizationService::Summarize calls
  /// this before running Algorithm 1 (invalid knobs used to flow into the
  /// summarizer silently); prox::serve maps the failure to HTTP 400.
  Status Validate() const;
};

/// \brief The PROX summarization service: wires the dataset's semantics
/// (constraints, φ, valuation class, VAL-FUNC) and the request parameters
/// into Algorithm 1 and runs it on the selected provenance.
class SummarizationService {
 public:
  /// `dataset` is mutated (its registry accumulates summary annotations).
  explicit SummarizationService(Dataset* dataset) : dataset_(dataset) {}

  /// Summarizes `selected` (any expression over the dataset's annotations).
  /// Instrumented: counted in `prox_service_requests_total` /
  /// `prox_service_errors_total` (service="summarize"), timed by the
  /// "service.summarize" trace span and the
  /// `prox_service_summarize_duration_nanos` histogram.
  Result<SummaryOutcome> Summarize(const ProvenanceExpression& selected,
                                   const SummarizationRequest& request) const;

  /// Like Summarize, but warm-starts from `previous` (docs/INGEST.md):
  /// the previous outcome's merges are replayed into the new run's
  /// mapping state instead of re-searched, and incremental candidate
  /// scoring is enabled when the resolved VAL-FUNC supports it.
  /// `previous` must be an outcome computed against this dataset and must
  /// outlive the call.
  Result<SummaryOutcome> Resummarize(const ProvenanceExpression& selected,
                                     const SummarizationRequest& request,
                                     const SummaryOutcome& previous) const;

 private:
  Result<SummaryOutcome> SummarizeImpl(
      const ProvenanceExpression& selected,
      const SummarizationRequest& request,
      const SummaryOutcome* warm_from) const;

  Dataset* dataset_;
};

}  // namespace prox

#endif  // PROX_SERVICE_SUMMARIZATION_SERVICE_H_
