#ifndef PROX_BASELINES_RANDOM_SUMMARIZER_H_
#define PROX_BASELINES_RANDOM_SUMMARIZER_H_

#include <limits>

#include "common/result.h"
#include "common/rng.h"
#include "provenance/expression.h"
#include "semantics/constraints.h"
#include "semantics/context.h"
#include "summarize/candidates.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

namespace prox {

/// Configuration of the Random baseline (§6.1's algorithm (3)).
struct RandomSummarizerOptions {
  double target_dist = 1.0;
  int64_t target_size = 1;
  int max_steps = std::numeric_limits<int>::max();
  int merge_arity = 2;
  uint64_t seed = 0xBADC0FFEE;
  PhiConfig phi;
};

/// \brief The Random competitor: "every pair of annotations was chosen
/// randomly from the list of pairs that satisfy the mapping constraints"
/// (§6.1), with the same TARGET-SIZE / TARGET-DIST stop conditions as the
/// other algorithms.
class RandomSummarizer {
 public:
  RandomSummarizer(const ProvenanceExpression* p0,
                   AnnotationRegistry* registry, const SemanticContext* ctx,
                   const ConstraintSet* constraints, DistanceOracle* oracle,
                   RandomSummarizerOptions options);

  Result<SummaryOutcome> Run();

 private:
  const ProvenanceExpression* p0_;
  AnnotationRegistry* registry_;
  const SemanticContext* ctx_;
  const ConstraintSet* constraints_;
  DistanceOracle* oracle_;
  RandomSummarizerOptions options_;
};

}  // namespace prox

#endif  // PROX_BASELINES_RANDOM_SUMMARIZER_H_
