#ifndef PROX_BASELINES_CLUSTERING_SUMMARIZER_H_
#define PROX_BASELINES_CLUSTERING_SUMMARIZER_H_

#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "baselines/feature.h"
#include "baselines/hac.h"
#include "common/result.h"
#include "provenance/expression.h"
#include "semantics/constraints.h"
#include "semantics/context.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

namespace prox {

/// Configuration of the Clustering baseline (§6.2).
struct ClusteringOptions {
  Linkage linkage = Linkage::kSingle;  ///< the thesis presents single-linkage
  double target_dist = 1.0;
  int64_t target_size = 1;
  int max_steps = std::numeric_limits<int>::max();
  PhiConfig phi;
  /// Worker threads for the O(n²) initial dissimilarity-matrix fill
  /// (0 = process default, 1 = serial; same convention as
  /// SummarizerOptions::threads). The fill is race-free by construction —
  /// each matrix cell has a unique writing row — so results are identical
  /// at every setting.
  int threads = 1;
};

/// \brief The modified-HAC competitor of §6.2: hierarchical agglomerative
/// clustering over Pearson-dissimilarity feature vectors, constrained by
/// the same mapping constraints and stop conditions as Prov-Approx, with
/// each cluster merge translated into an annotation mapping so the
/// resulting summary provenance can be compared on equal footing.
///
/// Multiple domains (Wikipedia users *and* pages) are clustered separately
/// — one HAC per domain — and each step commits the globally smallest
/// allowed merge across domains.
class ClusteringSummarizer {
 public:
  ClusteringSummarizer(const ProvenanceExpression* p0,
                       AnnotationRegistry* registry,
                       const SemanticContext* ctx,
                       const ConstraintSet* constraints,
                       DistanceOracle* oracle, ClusteringOptions options);

  /// Declares the items of one clusterable domain with their feature
  /// vectors (e.g. each user with their movie→rating map). Must be called
  /// at least once before Run.
  void SetFeatures(DomainId domain,
                   std::map<AnnotationId, RatingVector> features);

  /// Runs constrained HAC to the stop conditions, producing the same
  /// outcome shape as the Summarizer for side-by-side evaluation.
  Result<SummaryOutcome> Run();

 private:
  struct DomainClustering {
    DomainId domain;
    std::vector<AnnotationId> items;  // item index -> original annotation
    std::unique_ptr<HacClusterer> hac;
    std::map<int, AnnotationId> cluster_ann;  // active cluster -> current ann
  };

  const ProvenanceExpression* p0_;
  AnnotationRegistry* registry_;
  const SemanticContext* ctx_;
  const ConstraintSet* constraints_;
  DistanceOracle* oracle_;
  ClusteringOptions options_;
  std::map<DomainId, std::map<AnnotationId, RatingVector>> features_;
};

}  // namespace prox

#endif  // PROX_BASELINES_CLUSTERING_SUMMARIZER_H_
