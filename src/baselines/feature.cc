#include "baselines/feature.h"

#include <cmath>
#include <vector>

namespace prox {

double PearsonCorrelation(const RatingVector& a, const RatingVector& b) {
  std::vector<std::pair<double, double>> shared;
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it != b.end()) shared.emplace_back(va, it->second);
  }
  if (shared.size() < 2) return 0.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (const auto& [va, vb] : shared) {
    mean_a += va;
    mean_b += vb;
  }
  mean_a /= shared.size();
  mean_b /= shared.size();
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (const auto& [va, vb] : shared) {
    cov += (va - mean_a) * (vb - mean_b);
    var_a += (va - mean_a) * (va - mean_a);
    var_b += (vb - mean_b) * (vb - mean_b);
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double PearsonDissimilarity(const RatingVector& a, const RatingVector& b) {
  std::vector<std::pair<double, double>> shared;
  for (const auto& [key, va] : a) {
    auto it = b.find(key);
    if (it != b.end()) shared.emplace_back(va, it->second);
  }
  if (shared.size() < 2) return 1.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (const auto& [va, vb] : shared) {
    mean_a += va;
    mean_b += vb;
  }
  mean_a /= shared.size();
  mean_b /= shared.size();
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (const auto& [va, vb] : shared) {
    cov += (va - mean_a) * (vb - mean_b);
    var_a += (va - mean_a) * (va - mean_a);
    var_b += (vb - mean_b) * (vb - mean_b);
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 1.0;
  return 1.0 - cov / std::sqrt(var_a * var_b);
}

}  // namespace prox
