#ifndef PROX_BASELINES_HAC_H_
#define PROX_BASELINES_HAC_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace prox {

/// Linkage criteria of the HAC library the thesis compares against (§6.2).
enum class Linkage {
  kSingle,    ///< min pairwise distance between opposite clusters
  kComplete,  ///< max pairwise distance
  kAverage,   ///< UPGMA: mean pairwise distance
  kWeighted,  ///< WPGMA: average linkage with clusters weighted equally
  kCentroid,  ///< UPGMC: distance between centroids
  kMedian,    ///< WPGMC: distance between weighted centroids
  kWard,      ///< minimal increase of within-cluster sum of squares
};

const char* LinkageToString(Linkage linkage);

/// \brief Bottom-up agglomerative hierarchical clustering over an explicit
/// dissimilarity matrix, with constraint-aware merging.
///
/// Implements all seven linkage criteria through the Lance-Williams update
///   d(k, i∪j) = αᵢ·d(k,i) + αⱼ·d(k,j) + β·d(i,j) + γ·|d(k,i) − d(k,j)|,
/// so a single O(n²)-per-merge engine covers the whole §6.2 family.
///
/// The thesis's *modified* HAC refuses merges whose members violate the
/// summarization mapping constraints ("we do not allow two clusters to
/// merge if the users ... do not have at least one attribute in common");
/// the constraint callback reproduces that: each step merges the smallest-
/// dissimilarity *allowed* pair.
class HacClusterer {
 public:
  /// Decides whether two clusters (given as item-index member lists) may
  /// merge. Defaults to always-true.
  using ConstraintFn = std::function<bool(const std::vector<int>& members_a,
                                          const std::vector<int>& members_b)>;

  /// \param dissimilarity full symmetric n×n matrix (diagonal ignored)
  HacClusterer(std::vector<std::vector<double>> dissimilarity,
               Linkage linkage);

  void set_constraint(ConstraintFn constraint) {
    constraint_ = std::move(constraint);
  }

  /// A committed merge: the two active-cluster ids, their linkage
  /// dissimilarity, and the merged member item indices.
  struct MergeStep {
    int cluster_a = -1;
    int cluster_b = -1;
    double dissimilarity = 0.0;
    int merged_cluster = -1;
    std::vector<int> members;
  };

  /// The smallest allowed pair and its dissimilarity, without merging;
  /// nullopt when no allowed pair remains.
  std::optional<std::pair<std::pair<int, int>, double>> PeekNext() const;

  /// Merges the smallest allowed pair. nullopt when clustering is done
  /// (single cluster left or every remaining pair disallowed).
  std::optional<MergeStep> MergeNext();

  /// Members (original item indices) of an active or historical cluster.
  const std::vector<int>& MembersOf(int cluster) const {
    return members_[cluster];
  }

  /// Number of currently active clusters.
  int num_active() const { return static_cast<int>(active_.size()); }

  /// Currently active cluster ids.
  const std::vector<int>& active() const { return active_; }

 private:
  double Dist(int a, int b) const { return dist_[a][b]; }

  Linkage linkage_;
  ConstraintFn constraint_;
  std::vector<std::vector<double>> dist_;  // grows as clusters are created
  std::vector<std::vector<int>> members_;
  std::vector<int> sizes_;
  std::vector<int> active_;
};

}  // namespace prox

#endif  // PROX_BASELINES_HAC_H_
