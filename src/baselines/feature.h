#ifndef PROX_BASELINES_FEATURE_H_
#define PROX_BASELINES_FEATURE_H_

#include <map>

#include "provenance/annotation.h"

namespace prox {

/// A numeric feature vector keyed by annotation id — e.g. a user's ratings
/// keyed by movie, or a Wikipedia page's major-edit counts keyed by user
/// (the "(MovieTitle₁ = Rating₁, ...)" feature of §6.2).
using RatingVector = std::map<AnnotationId, double>;

/// \brief Pearson-correlation dissimilarity between two rating vectors —
/// the measure the thesis uses for the Clustering competitor (§6.2).
///
/// The correlation is computed over the keys the two vectors share. Pairs
/// with fewer than two shared keys, or with zero variance on the shared
/// keys, get the neutral dissimilarity 1 (no evidence either way).
/// Returns 1 − r ∈ [0, 2]: identical ratings → 0, anti-correlated → 2.
double PearsonDissimilarity(const RatingVector& a, const RatingVector& b);

/// Pearson correlation coefficient over shared keys; 0 when undefined.
double PearsonCorrelation(const RatingVector& a, const RatingVector& b);

}  // namespace prox

#endif  // PROX_BASELINES_FEATURE_H_
