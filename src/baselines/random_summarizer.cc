#include "baselines/random_summarizer.h"

#include "common/timer.h"
#include "ir/adopt.h"
#include "ir/term_pool.h"

namespace prox {

RandomSummarizer::RandomSummarizer(const ProvenanceExpression* p0,
                                   AnnotationRegistry* registry,
                                   const SemanticContext* ctx,
                                   const ConstraintSet* constraints,
                                   DistanceOracle* oracle,
                                   RandomSummarizerOptions options)
    : p0_(p0),
      registry_(registry),
      ctx_(ctx),
      constraints_(constraints),
      oracle_(oracle),
      options_(std::move(options)) {}

Result<SummaryOutcome> RandomSummarizer::Run() {
  Timer run_timer;
  Rng rng(options_.seed);

  SummaryOutcome outcome{nullptr, MappingState(registry_, options_.phi), {},
                         0.0, 0, false, 0, 0.0};
  MappingState& state = outcome.state;
  // Same flat-IR hot path as the Summarizer (docs/IR.md): baselines apply
  // homomorphisms in the same loop shape, so they adopt too.
  std::unique_ptr<ProvenanceExpression> current =
      ir::Adopt(*p0_, std::make_shared<ir::TermPool>());
  double dist = oracle_->Distance(*current, state);

  CandidateGenerator generator(constraints_, ctx_);
  CandidateOptions copts;
  copts.arity = options_.merge_arity;

  std::unique_ptr<ProvenanceExpression> prev_expr;
  MappingState prev_state = state;
  double prev_dist = dist;

  int step = 0;
  while (step < options_.max_steps && current->Size() > options_.target_size &&
         dist < options_.target_dist) {
    Timer step_timer;
    std::vector<Candidate> candidates =
        generator.Generate(*current, state, copts);
    if (candidates.empty()) break;

    const Candidate& pick = candidates[rng.PickIndex(candidates.size())];
    AnnotationId summary =
        registry_->AddSummary(pick.domain, pick.decision.name);

    prev_expr = std::move(current);
    prev_state = state;
    prev_dist = dist;

    state.Merge(pick.roots, summary);
    Homomorphism h;
    for (AnnotationId root : pick.roots) h.Set(root, summary);
    current = prev_expr->Apply(h);
    dist = oracle_->Distance(*current, state);
    ++step;

    StepRecord record;
    record.step = step;
    record.merged_roots = pick.roots;
    record.summary = summary;
    record.summary_name = registry_->name(summary);
    record.distance = dist;
    record.size = current->Size();
    record.num_candidates = static_cast<int>(candidates.size());
    record.step_nanos = static_cast<double>(step_timer.ElapsedNanos());
    outcome.steps.push_back(std::move(record));
  }

  if (dist >= options_.target_dist && prev_expr != nullptr) {
    current = std::move(prev_expr);
    state = prev_state;
    dist = prev_dist;
    outcome.rolled_back = true;
  }

  outcome.summary = std::move(current);
  outcome.final_distance = dist;
  outcome.final_size = outcome.summary->Size();
  outcome.total_nanos = static_cast<double>(run_timer.ElapsedNanos());
  return outcome;
}

}  // namespace prox
