#include "baselines/hac.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace prox {

const char* LinkageToString(Linkage linkage) {
  switch (linkage) {
    case Linkage::kSingle:
      return "single";
    case Linkage::kComplete:
      return "complete";
    case Linkage::kAverage:
      return "average";
    case Linkage::kWeighted:
      return "weighted";
    case Linkage::kCentroid:
      return "centroid";
    case Linkage::kMedian:
      return "median";
    case Linkage::kWard:
      return "ward";
  }
  return "?";
}

namespace {

struct LwCoeffs {
  double ai, aj, beta, gamma;
};

LwCoeffs CoeffsFor(Linkage linkage, double ni, double nj, double nk) {
  switch (linkage) {
    case Linkage::kSingle:
      return {0.5, 0.5, 0.0, -0.5};
    case Linkage::kComplete:
      return {0.5, 0.5, 0.0, 0.5};
    case Linkage::kAverage:
      return {ni / (ni + nj), nj / (ni + nj), 0.0, 0.0};
    case Linkage::kWeighted:
      return {0.5, 0.5, 0.0, 0.0};
    case Linkage::kCentroid:
      return {ni / (ni + nj), nj / (ni + nj),
              -(ni * nj) / ((ni + nj) * (ni + nj)), 0.0};
    case Linkage::kMedian:
      return {0.5, 0.5, -0.25, 0.0};
    case Linkage::kWard:
      return {(ni + nk) / (ni + nj + nk), (nj + nk) / (ni + nj + nk),
              -nk / (ni + nj + nk), 0.0};
  }
  return {0.5, 0.5, 0.0, 0.0};
}

}  // namespace

HacClusterer::HacClusterer(std::vector<std::vector<double>> dissimilarity,
                           Linkage linkage)
    : linkage_(linkage), dist_(std::move(dissimilarity)) {
  const int n = static_cast<int>(dist_.size());
  members_.resize(n);
  sizes_.resize(n, 1);
  active_.resize(n);
  for (int i = 0; i < n; ++i) {
    members_[i] = {i};
    active_[i] = i;
  }
}

std::optional<std::pair<std::pair<int, int>, double>> HacClusterer::PeekNext()
    const {
  double best = std::numeric_limits<double>::infinity();
  int bi = -1, bj = -1;
  for (size_t x = 0; x < active_.size(); ++x) {
    for (size_t y = x + 1; y < active_.size(); ++y) {
      int i = active_[x], j = active_[y];
      double d = Dist(i, j);
      if (d < best) {
        if (constraint_ && !constraint_(members_[i], members_[j])) continue;
        best = d;
        bi = i;
        bj = j;
      }
    }
  }
  if (bi < 0) return std::nullopt;
  return std::make_pair(std::make_pair(bi, bj), best);
}

std::optional<HacClusterer::MergeStep> HacClusterer::MergeNext() {
  if (active_.size() < 2) return std::nullopt;
  auto next = PeekNext();
  if (!next.has_value()) return std::nullopt;
  const auto [pair, d] = *next;
  const auto [i, j] = pair;

  // Create the merged cluster and extend the distance matrix via
  // Lance-Williams.
  const int merged = static_cast<int>(dist_.size());
  const double ni = sizes_[i], nj = sizes_[j];
  for (auto& row : dist_) row.push_back(0.0);
  dist_.emplace_back(dist_.size() + 1, 0.0);
  for (int k : active_) {
    if (k == i || k == j) continue;
    LwCoeffs c = CoeffsFor(linkage_, ni, nj, sizes_[k]);
    double dk = c.ai * Dist(k, i) + c.aj * Dist(k, j) + c.beta * d +
                c.gamma * std::abs(Dist(k, i) - Dist(k, j));
    dist_[merged][k] = dk;
    dist_[k][merged] = dk;
  }

  std::vector<int> merged_members = members_[i];
  merged_members.insert(merged_members.end(), members_[j].begin(),
                        members_[j].end());
  std::sort(merged_members.begin(), merged_members.end());
  members_.push_back(merged_members);
  sizes_.push_back(sizes_[i] + sizes_[j]);

  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](int c) { return c == i || c == j; }),
                active_.end());
  active_.push_back(merged);

  MergeStep step;
  step.cluster_a = i;
  step.cluster_b = j;
  step.dissimilarity = d;
  step.merged_cluster = merged;
  step.members = std::move(merged_members);
  return step;
}

}  // namespace prox
