#include "baselines/clustering_summarizer.h"

#include <algorithm>

#include "common/timer.h"
#include "exec/thread_pool.h"
#include "ir/adopt.h"
#include "ir/term_pool.h"

namespace prox {

ClusteringSummarizer::ClusteringSummarizer(const ProvenanceExpression* p0,
                                           AnnotationRegistry* registry,
                                           const SemanticContext* ctx,
                                           const ConstraintSet* constraints,
                                           DistanceOracle* oracle,
                                           ClusteringOptions options)
    : p0_(p0),
      registry_(registry),
      ctx_(ctx),
      constraints_(constraints),
      oracle_(oracle),
      options_(std::move(options)) {}

void ClusteringSummarizer::SetFeatures(
    DomainId domain, std::map<AnnotationId, RatingVector> features) {
  features_[domain] = std::move(features);
}

Result<SummaryOutcome> ClusteringSummarizer::Run() {
  if (features_.empty()) {
    return Status::FailedPrecondition(
        "clustering requires feature vectors; call SetFeatures first");
  }

  Timer run_timer;

  // Restrict clustering to items that actually appear in p0.
  std::vector<AnnotationId> p0_anns;
  p0_->CollectAnnotations(&p0_anns);

  std::vector<DomainClustering> clusterings;
  for (auto& [domain, feats] : features_) {
    DomainClustering dc;
    dc.domain = domain;
    for (const auto& [ann, vec] : feats) {
      (void)vec;
      if (std::binary_search(p0_anns.begin(), p0_anns.end(), ann)) {
        dc.items.push_back(ann);
      }
    }
    if (dc.items.size() < 2) continue;

    const size_t n = dc.items.size();
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
    // The O(n²) fill fans out by row: row i writes cells (i, j>i) and
    // their mirrors (j, i), and every cell has exactly one writing row, so
    // workers never collide and the matrix is identical at any thread
    // count.
    exec::PoolRef pool(options_.threads);
    exec::ParallelFor(
        pool.pool(), 0, static_cast<int64_t>(n), 1, [&](int64_t row) {
          const size_t i = static_cast<size_t>(row);
          for (size_t j = i + 1; j < n; ++j) {
            double d = PearsonDissimilarity(feats.at(dc.items[i]),
                                            feats.at(dc.items[j]));
            dist[i][j] = d;
            dist[j][i] = d;
          }
        });
    dc.hac = std::make_unique<HacClusterer>(std::move(dist),
                                            options_.linkage);
    for (size_t i = 0; i < n; ++i) {
      dc.cluster_ann[static_cast<int>(i)] = dc.items[i];
    }
    clusterings.push_back(std::move(dc));
  }

  // The constraint callback maps cluster member indices back to original
  // annotations and applies the dataset's mapping constraints — the §6.2
  // modification of HAC. Installed only after the clusterings vector is
  // final, so the captured item lists have stable addresses.
  for (DomainClustering& dc : clusterings) {
    const std::vector<AnnotationId>* items = &dc.items;
    DomainId d = dc.domain;
    dc.hac->set_constraint(
        [this, items, d](const std::vector<int>& a, const std::vector<int>& b) {
          std::vector<AnnotationId> members;
          members.reserve(a.size() + b.size());
          for (int i : a) members.push_back((*items)[i]);
          for (int i : b) members.push_back((*items)[i]);
          return constraints_->Evaluate(d, members, *ctx_).allowed;
        });
  }

  if (clusterings.empty()) {
    return Status::FailedPrecondition(
        "no clusterable domain has at least two items in the expression");
  }

  SummaryOutcome outcome{nullptr, MappingState(registry_, options_.phi), {},
                         0.0, 0, false, 0, 0.0};
  MappingState& state = outcome.state;
  // Same flat-IR hot path as the Summarizer (docs/IR.md).
  std::unique_ptr<ProvenanceExpression> current =
      ir::Adopt(*p0_, std::make_shared<ir::TermPool>());
  double dist = oracle_->Distance(*current, state);

  std::unique_ptr<ProvenanceExpression> prev_expr;
  MappingState prev_state = state;
  double prev_dist = dist;

  int step = 0;
  while (step < options_.max_steps && current->Size() > options_.target_size &&
         dist < options_.target_dist) {
    Timer step_timer;
    // Globally smallest allowed merge across the per-domain clusterings.
    DomainClustering* best_dc = nullptr;
    double best_d = std::numeric_limits<double>::infinity();
    for (auto& dc : clusterings) {
      auto peek = dc.hac->PeekNext();
      if (peek.has_value() && peek->second < best_d) {
        best_d = peek->second;
        best_dc = &dc;
      }
    }
    if (best_dc == nullptr) break;

    auto merge = best_dc->hac->MergeNext();
    if (!merge.has_value()) break;

    std::vector<AnnotationId> members;
    members.reserve(merge->members.size());
    for (int idx : merge->members) members.push_back(best_dc->items[idx]);
    MergeDecision decision =
        constraints_->Evaluate(best_dc->domain, members, *ctx_);
    std::string name =
        decision.allowed ? decision.name
                         : "cluster" + std::to_string(merge->merged_cluster);

    AnnotationId summary = registry_->AddSummary(best_dc->domain, name);
    std::vector<AnnotationId> roots = {
        best_dc->cluster_ann.at(merge->cluster_a),
        best_dc->cluster_ann.at(merge->cluster_b)};
    best_dc->cluster_ann.erase(merge->cluster_a);
    best_dc->cluster_ann.erase(merge->cluster_b);
    best_dc->cluster_ann[merge->merged_cluster] = summary;

    prev_expr = std::move(current);
    prev_state = state;
    prev_dist = dist;

    state.Merge(roots, summary);
    Homomorphism h;
    for (AnnotationId root : roots) h.Set(root, summary);
    current = prev_expr->Apply(h);
    dist = oracle_->Distance(*current, state);
    ++step;

    StepRecord record;
    record.step = step;
    record.merged_roots = roots;
    record.summary = summary;
    record.summary_name = registry_->name(summary);
    record.distance = dist;
    record.size = current->Size();
    record.score = merge->dissimilarity;
    record.num_candidates = 0;
    record.step_nanos = static_cast<double>(step_timer.ElapsedNanos());
    outcome.steps.push_back(std::move(record));
  }

  if (dist >= options_.target_dist && prev_expr != nullptr) {
    current = std::move(prev_expr);
    state = prev_state;
    dist = prev_dist;
    outcome.rolled_back = true;
  }

  outcome.summary = std::move(current);
  outcome.final_distance = dist;
  outcome.final_size = outcome.summary->Size();
  outcome.total_nanos = static_cast<double>(run_timer.ElapsedNanos());
  return outcome;
}

}  // namespace prox
