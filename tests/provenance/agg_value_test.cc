#include "provenance/agg_value.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(AggValueTest, MergeMaxTakesMaxAndAddsCounts) {
  // Example 3.1.1: U1⊗(3,1) ⊕ U2⊗(5,1) with MAX merges to (5,2).
  AggValue merged = MergeAggValues(AggKind::kMax, {3, 1}, {5, 1});
  EXPECT_EQ(merged.value, 5);
  EXPECT_EQ(merged.count, 2);
}

TEST(AggValueTest, MergeMinTakesMin) {
  AggValue merged = MergeAggValues(AggKind::kMin, {3, 1}, {5, 2});
  EXPECT_EQ(merged.value, 3);
  EXPECT_EQ(merged.count, 3);
}

TEST(AggValueTest, MergeSumAdds) {
  AggValue merged = MergeAggValues(AggKind::kSum, {3, 1}, {5, 1});
  EXPECT_EQ(merged.value, 8);
  EXPECT_EQ(merged.count, 2);
}

TEST(AggValueTest, MergeCountAddsValues) {
  AggValue merged = MergeAggValues(AggKind::kCount, {1, 1}, {1, 1});
  EXPECT_EQ(merged.value, 2);
  EXPECT_EQ(merged.count, 2);
}

TEST(AggValueTest, MergeIsAssociativeAndCommutative) {
  for (AggKind kind : {AggKind::kMax, AggKind::kMin, AggKind::kSum,
                       AggKind::kCount}) {
    AggValue a{2, 1}, b{7, 1}, c{4, 1};
    AggValue ab_c = MergeAggValues(kind, MergeAggValues(kind, a, b), c);
    AggValue a_bc = MergeAggValues(kind, a, MergeAggValues(kind, b, c));
    EXPECT_EQ(ab_c, a_bc) << AggKindToString(kind);
    EXPECT_EQ(MergeAggValues(kind, a, b), MergeAggValues(kind, b, a))
        << AggKindToString(kind);
  }
}

TEST(AggValueTest, FoldFirstContributionInitializes) {
  EXPECT_EQ(FoldAggregate(AggKind::kMin, 99.0, {2, 1}, /*first=*/true), 2.0);
  EXPECT_EQ(FoldAggregate(AggKind::kMax, -1.0, {2, 1}, /*first=*/true), 2.0);
}

TEST(AggValueTest, FoldAccumulatesPerKind) {
  EXPECT_EQ(FoldAggregate(AggKind::kMax, 3.0, {5, 1}, false), 5.0);
  EXPECT_EQ(FoldAggregate(AggKind::kMin, 3.0, {5, 1}, false), 3.0);
  EXPECT_EQ(FoldAggregate(AggKind::kSum, 3.0, {5, 1}, false), 8.0);
}

TEST(AggValueTest, FoldCountUsesCountField) {
  EXPECT_EQ(FoldAggregate(AggKind::kCount, 3.0, {9, 2}, false), 5.0);
  EXPECT_EQ(FoldAggregate(AggKind::kCount, 0.0, {9, 2}, true), 2.0);
}

TEST(AggValueTest, KindNames) {
  EXPECT_STREQ(AggKindToString(AggKind::kMax), "MAX");
  EXPECT_STREQ(AggKindToString(AggKind::kMin), "MIN");
  EXPECT_STREQ(AggKindToString(AggKind::kSum), "SUM");
  EXPECT_STREQ(AggKindToString(AggKind::kCount), "COUNT");
}

}  // namespace
}  // namespace prox
