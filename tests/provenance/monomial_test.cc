#include "provenance/monomial.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(MonomialTest, EmptyIsOne) {
  Monomial m;
  EXPECT_TRUE(m.IsOne());
  EXPECT_EQ(m.Size(), 0);
  EXPECT_TRUE(m.EvaluateBool([](AnnotationId) { return false; }));
}

TEST(MonomialTest, FactorsAreSortedCanonically) {
  Monomial a({3, 1, 2});
  Monomial b({2, 3, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.factors(), (std::vector<AnnotationId>{1, 2, 3}));
}

TEST(MonomialTest, RepetitionsKeptForPowers) {
  Monomial m({1, 1, 2});
  EXPECT_EQ(m.Size(), 3);
  EXPECT_TRUE(m.Contains(1));
  EXPECT_TRUE(m.Contains(2));
  EXPECT_FALSE(m.Contains(3));
}

TEST(MonomialTest, MultiplyByInsertsSorted) {
  Monomial m({5});
  m.MultiplyBy(2);
  m.MultiplyBy(7);
  EXPECT_EQ(m.factors(), (std::vector<AnnotationId>{2, 5, 7}));
}

TEST(MonomialTest, ProductMergesSorted) {
  Monomial a({1, 4});
  Monomial b({2, 4});
  Monomial c = a * b;
  EXPECT_EQ(c.factors(), (std::vector<AnnotationId>{1, 2, 4, 4}));
  EXPECT_EQ(c.Size(), 4);
}

TEST(MonomialTest, EvaluateBoolIsConjunction) {
  Monomial m({1, 2, 3});
  EXPECT_TRUE(m.EvaluateBool([](AnnotationId) { return true; }));
  EXPECT_FALSE(m.EvaluateBool([](AnnotationId a) { return a != 2; }));
}

TEST(MonomialTest, MapRenamesAndResorts) {
  Monomial m({1, 5});
  Monomial mapped = m.Map([](AnnotationId a) {
    return a == 5 ? AnnotationId{0} : a;
  });
  EXPECT_EQ(mapped.factors(), (std::vector<AnnotationId>{0, 1}));
}

TEST(MonomialTest, MapMayCollapseToSameAnnotation) {
  Monomial m({1, 2});
  Monomial mapped = m.Map([](AnnotationId) { return AnnotationId{7}; });
  // Multiplicity is preserved in the semiring (7·7 = 7²).
  EXPECT_EQ(mapped.factors(), (std::vector<AnnotationId>{7, 7}));
}

TEST(MonomialTest, ToStringUsesRegistryNames) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("user");
  AnnotationId u1 = reg.Add(d, "U1").MoveValue();
  AnnotationId u2 = reg.Add(d, "U2").MoveValue();
  EXPECT_EQ(Monomial({u2, u1}).ToString(reg), "U1·U2");
  EXPECT_EQ(Monomial().ToString(reg), "1");
}

TEST(MonomialTest, OrderingIsTotal) {
  EXPECT_LT(Monomial({1}), Monomial({2}));
  EXPECT_LT(Monomial({1}), Monomial({1, 2}));
  EXPECT_FALSE(Monomial({1, 2}) < Monomial({1, 2}));
}

}  // namespace
}  // namespace prox
