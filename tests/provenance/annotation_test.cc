#include "provenance/annotation.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(AnnotationRegistryTest, AddDomainIsIdempotent) {
  AnnotationRegistry reg;
  DomainId a = reg.AddDomain("user");
  DomainId b = reg.AddDomain("movie");
  DomainId c = reg.AddDomain("user");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.num_domains(), 2u);
  EXPECT_EQ(reg.domain_name(a), "user");
}

TEST(AnnotationRegistryTest, FindDomain) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("page");
  auto found = reg.FindDomain("page");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), d);
  EXPECT_EQ(reg.FindDomain("nope").status().code(), StatusCode::kNotFound);
}

TEST(AnnotationRegistryTest, AddAndLookup) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("user");
  auto a = reg.Add(d, "U1", 17);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(reg.name(a.value()), "U1");
  EXPECT_EQ(reg.domain(a.value()), d);
  EXPECT_EQ(reg.entity_row(a.value()), 17u);
  EXPECT_FALSE(reg.is_summary(a.value()));
  auto found = reg.Find("U1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), a.value());
}

TEST(AnnotationRegistryTest, RejectsDuplicateNames) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("user");
  ASSERT_TRUE(reg.Add(d, "U1").ok());
  EXPECT_EQ(reg.Add(d, "U1").status().code(), StatusCode::kAlreadyExists);
}

TEST(AnnotationRegistryTest, RejectsUnknownDomain) {
  AnnotationRegistry reg;
  EXPECT_EQ(reg.Add(5, "X").status().code(), StatusCode::kInvalidArgument);
}

TEST(AnnotationRegistryTest, SummaryAnnotationsAreFlagged) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("user");
  AnnotationId s = reg.AddSummary(d, "Female");
  EXPECT_TRUE(reg.is_summary(s));
  EXPECT_EQ(reg.name(s), "Female");
  EXPECT_EQ(reg.entity_row(s), kNoEntity);
}

TEST(AnnotationRegistryTest, SummaryNameCollisionsGetSuffix) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("user");
  ASSERT_TRUE(reg.Add(d, "Female").ok());
  AnnotationId s1 = reg.AddSummary(d, "Female");
  AnnotationId s2 = reg.AddSummary(d, "Female");
  EXPECT_EQ(reg.name(s1), "Female#2");
  EXPECT_EQ(reg.name(s2), "Female#3");
}

TEST(AnnotationRegistryTest, AnnotationsInDomainFilters) {
  AnnotationRegistry reg;
  DomainId users = reg.AddDomain("user");
  DomainId movies = reg.AddDomain("movie");
  AnnotationId u1 = reg.Add(users, "U1").MoveValue();
  AnnotationId m1 = reg.Add(movies, "M1").MoveValue();
  AnnotationId u2 = reg.Add(users, "U2").MoveValue();
  EXPECT_EQ(reg.AnnotationsInDomain(users),
            (std::vector<AnnotationId>{u1, u2}));
  EXPECT_EQ(reg.AnnotationsInDomain(movies),
            (std::vector<AnnotationId>{m1}));
  EXPECT_EQ(reg.size(), 3u);
}

}  // namespace
}  // namespace prox
