#include "provenance/guard.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

MaterializedValuation AllTrue(size_t n) { return MaterializedValuation(n); }

MaterializedValuation WithFalse(size_t n,
                                std::vector<AnnotationId> cancelled) {
  return MaterializedValuation(Valuation(std::move(cancelled)), n);
}

TEST(GuardTest, ThesisExampleActiveUserThreshold) {
  // [S1·U1 ⊗ 5 > 2] from Example 2.2.1: true when S1 and U1 are present
  // (body = 5 > 2), false when either is cancelled (body = 0).
  Guard g(Monomial({0, 1}), 5.0, CompareOp::kGt, 2.0);
  EXPECT_TRUE(g.Evaluate(AllTrue(2)));
  EXPECT_FALSE(g.Evaluate(WithFalse(2, {0})));
  EXPECT_FALSE(g.Evaluate(WithFalse(2, {1})));
}

TEST(GuardTest, AllComparisonOperators) {
  Monomial body({0});
  EXPECT_TRUE(Guard(body, 3, CompareOp::kGt, 2).Evaluate(AllTrue(1)));
  EXPECT_FALSE(Guard(body, 2, CompareOp::kGt, 2).Evaluate(AllTrue(1)));
  EXPECT_TRUE(Guard(body, 2, CompareOp::kGe, 2).Evaluate(AllTrue(1)));
  EXPECT_TRUE(Guard(body, 1, CompareOp::kLt, 2).Evaluate(AllTrue(1)));
  EXPECT_TRUE(Guard(body, 2, CompareOp::kLe, 2).Evaluate(AllTrue(1)));
  EXPECT_TRUE(Guard(body, 2, CompareOp::kEq, 2).Evaluate(AllTrue(1)));
  EXPECT_TRUE(Guard(body, 3, CompareOp::kNe, 2).Evaluate(AllTrue(1)));
}

TEST(GuardTest, CancelledBodyComparesAsZero) {
  Guard lt(Monomial({0}), 5, CompareOp::kLt, 2);
  EXPECT_FALSE(lt.Evaluate(AllTrue(1)));     // 5 < 2 is false
  EXPECT_TRUE(lt.Evaluate(WithFalse(1, {0})));  // 0 < 2 is true
}

TEST(GuardTest, MapRenamesBody) {
  Guard g(Monomial({0}), 5, CompareOp::kGt, 2);
  Guard mapped = g.Map([](AnnotationId) { return AnnotationId{3}; });
  EXPECT_TRUE(mapped.factors().Contains(3));
  EXPECT_FALSE(mapped.Evaluate(WithFalse(4, {3})));
  EXPECT_TRUE(mapped.Evaluate(AllTrue(4)));
}

TEST(GuardTest, ToStringRendersToken) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("x");
  AnnotationId s = reg.Add(d, "S1").MoveValue();
  AnnotationId u = reg.Add(d, "U1").MoveValue();
  Guard g(Monomial({s, u}), 5.0, CompareOp::kGt, 2.0);
  EXPECT_EQ(g.ToString(reg), "[S1·U1⊗5.0 > 2.0]");
}

TEST(GuardTest, ComparisonIsTotalOrder) {
  Guard a(Monomial({0}), 5, CompareOp::kGt, 2);
  Guard b(Monomial({1}), 5, CompareOp::kGt, 2);
  Guard c(Monomial({0}), 5, CompareOp::kGt, 3);
  EXPECT_EQ(a, a);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace prox
