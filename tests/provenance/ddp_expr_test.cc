#include "provenance/ddp_expr.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

/// Builds Example 5.2.2's expression:
///   ⟨c1,1⟩·⟨0,[d1·d2]≠0⟩ + ⟨0,[d2·d3]=0⟩·⟨c2,1⟩
struct DdpFixture {
  AnnotationRegistry registry;
  DomainId cost_domain, db_domain;
  AnnotationId c1, c2, d1, d2, d3;
  DdpExpression expr;

  DdpFixture() {
    cost_domain = registry.AddDomain("cost_var");
    db_domain = registry.AddDomain("db_var");
    c1 = registry.Add(cost_domain, "c1").MoveValue();
    c2 = registry.Add(cost_domain, "c2").MoveValue();
    d1 = registry.Add(db_domain, "d1").MoveValue();
    d2 = registry.Add(db_domain, "d2").MoveValue();
    d3 = registry.Add(db_domain, "d3").MoveValue();
    expr.SetCost(c1, 4.0);
    expr.SetCost(c2, 6.0);

    DdpExecution e1;
    e1.transitions.push_back(DdpTransition::User(c1));
    e1.transitions.push_back(DdpTransition::Db(Monomial({d1, d2}), true));
    expr.AddExecution(std::move(e1));

    DdpExecution e2;
    e2.transitions.push_back(DdpTransition::Db(Monomial({d2, d3}), false));
    e2.transitions.push_back(DdpTransition::User(c2));
    expr.AddExecution(std::move(e2));
    expr.Simplify();
  }
};

TEST(DdpExprTest, SizeCountsVariableOccurrences) {
  DdpFixture fx;
  // e1: c1 + d1·d2 = 3; e2: d2·d3 + c2 = 3.
  EXPECT_EQ(fx.expr.Size(), 6);
}

TEST(DdpExprTest, CollectAnnotationsIsSortedUnique) {
  DdpFixture fx;
  std::vector<AnnotationId> anns;
  fx.expr.CollectAnnotations(&anns);
  EXPECT_EQ(anns, (std::vector<AnnotationId>{fx.c1, fx.c2, fx.d1, fx.d2,
                                             fx.d3}));
}

TEST(DdpExprTest, AllTrueEvaluation) {
  DdpFixture fx;
  // All DB vars true: e1's guard [d1·d2]≠0 holds (cost 4); e2's [d2·d3]=0
  // fails. Min feasible cost = 4.
  EvalResult r = fx.expr.Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_TRUE(r.feasible());
  EXPECT_EQ(r.cost(), 4.0);
}

TEST(DdpExprTest, EqualityGuardNeedsZeroProduct) {
  DdpFixture fx;
  // Cancel d3: e2's [d2·d3]=0 now holds (cost 6); e1 still feasible (4).
  EvalResult r = fx.expr.Evaluate(
      MaterializedValuation(Valuation({fx.d3}), fx.registry.size()));
  EXPECT_TRUE(r.feasible());
  EXPECT_EQ(r.cost(), 4.0);

  // Cancel d1 and d3: e1 infeasible, e2 feasible at cost 6.
  r = fx.expr.Evaluate(
      MaterializedValuation(Valuation({fx.d1, fx.d3}), fx.registry.size()));
  EXPECT_TRUE(r.feasible());
  EXPECT_EQ(r.cost(), 6.0);
}

TEST(DdpExprTest, InfeasibleWhenNoGuardHolds) {
  DdpFixture fx;
  // Cancel d1 only: e1's ≠0 fails, e2's =0 fails (d2·d3 nonzero).
  EvalResult r = fx.expr.Evaluate(
      MaterializedValuation(Valuation({fx.d1}), fx.registry.size()));
  EXPECT_FALSE(r.feasible());
  EXPECT_EQ(r.cost(), 0.0);
}

TEST(DdpExprTest, CancelledCostVariableContributesZero) {
  DdpFixture fx;
  // Example 5.2.2's valuation: cancel c1, c2; all DB vars true.
  EvalResult r = fx.expr.Evaluate(
      MaterializedValuation(Valuation({fx.c1, fx.c2}), fx.registry.size()));
  EXPECT_TRUE(r.feasible());
  EXPECT_EQ(r.cost(), 0.0);
}

TEST(DdpExprTest, ApplyExample522CollapsesToSingleExecution) {
  // Mapping d1,d3 -> D1 and c1,c2 -> C1 makes the two executions
  // syntactically equal (after changing e2's guard type to match would not
  // be needed here: the example's summary keeps ≠0 and the expression
  // dedupes). We reproduce the collapse with both guards ≠0.
  AnnotationRegistry reg;
  DomainId cost_d = reg.AddDomain("cost_var");
  DomainId db_d = reg.AddDomain("db_var");
  AnnotationId c1 = reg.Add(cost_d, "c1").MoveValue();
  AnnotationId c2 = reg.Add(cost_d, "c2").MoveValue();
  AnnotationId d1 = reg.Add(db_d, "d1").MoveValue();
  AnnotationId d2 = reg.Add(db_d, "d2").MoveValue();
  AnnotationId d3 = reg.Add(db_d, "d3").MoveValue();
  DdpExpression expr;
  expr.SetCost(c1, 4.0);
  expr.SetCost(c2, 6.0);
  DdpExecution e1;
  e1.transitions.push_back(DdpTransition::User(c1));
  e1.transitions.push_back(DdpTransition::Db(Monomial({d1, d2}), true));
  expr.AddExecution(std::move(e1));
  DdpExecution e2;
  e2.transitions.push_back(DdpTransition::Db(Monomial({d2, d3}), true));
  e2.transitions.push_back(DdpTransition::User(c2));
  expr.AddExecution(std::move(e2));
  expr.Simplify();
  EXPECT_EQ(expr.executions().size(), 2u);

  AnnotationId big_d = reg.AddSummary(db_d, "D1");
  AnnotationId big_c = reg.AddSummary(cost_d, "C1");
  Homomorphism h;
  h.Set(d1, big_d);
  h.Set(d3, big_d);
  h.Set(c1, big_c);
  h.Set(c2, big_c);
  auto mapped = expr.Apply(h);
  auto* ddp = dynamic_cast<DdpExpression*>(mapped.get());
  ASSERT_NE(ddp, nullptr);
  EXPECT_EQ(ddp->executions().size(), 1u);
  EXPECT_EQ(mapped->Size(), 3);  // C1 + D1·d2
  // Merged cost variable takes the max member cost (MAX φ).
  EXPECT_EQ(ddp->CostOf(big_c), 6.0);
}

TEST(DdpExprTest, ApplyPreservesEvaluationOnUnmergedVars) {
  DdpFixture fx;
  Homomorphism identity;
  auto mapped = fx.expr.Apply(identity);
  EvalResult a = fx.expr.Evaluate(MaterializedValuation(fx.registry.size()));
  EvalResult b = mapped->Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_EQ(a, b);
}

TEST(DdpExprTest, ProjectEvalResultIsIdentity) {
  DdpFixture fx;
  Homomorphism h;
  h.Set(fx.d1, fx.d2);
  EvalResult base = EvalResult::CostBool(4.0, true);
  EXPECT_EQ(fx.expr.ProjectEvalResult(base, h), base);
}

TEST(DdpExprTest, ToStringRendersTransitions) {
  DdpFixture fx;
  std::string text = fx.expr.ToString(fx.registry);
  EXPECT_NE(text.find("⟨c1,1⟩"), std::string::npos);
  EXPECT_NE(text.find("≠0"), std::string::npos);
  EXPECT_NE(text.find("=0"), std::string::npos);
  EXPECT_NE(text.find(" + "), std::string::npos);
}

TEST(DdpExprTest, CloneIsDeep) {
  DdpFixture fx;
  auto clone = fx.expr.Clone();
  EXPECT_EQ(clone->Size(), fx.expr.Size());
  EXPECT_EQ(clone->ToString(fx.registry), fx.expr.ToString(fx.registry));
}

TEST(DdpExprTest, CostOfUnknownVariableIsZero) {
  DdpExpression expr;
  EXPECT_EQ(expr.CostOf(42), 0.0);
}

TEST(DdpExprTest, EmptyExpressionIsInfeasible) {
  DdpExpression expr;
  EvalResult r = expr.Evaluate(MaterializedValuation(0));
  EXPECT_FALSE(r.feasible());
  EXPECT_EQ(expr.ToString(AnnotationRegistry()), "0");
}

}  // namespace
}  // namespace prox
