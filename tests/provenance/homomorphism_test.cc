#include "provenance/homomorphism.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(HomomorphismTest, DefaultIsIdentity) {
  Homomorphism h;
  EXPECT_TRUE(h.IsIdentity());
  EXPECT_EQ(h.Map(0), 0u);
  EXPECT_EQ(h.Map(42), 42u);
  EXPECT_EQ(h.Map(kNoAnnotation), kNoAnnotation);
}

TEST(HomomorphismTest, SetRemapsSingleAnnotation) {
  Homomorphism h;
  h.Set(3, 7);
  EXPECT_EQ(h.Map(3), 7u);
  EXPECT_EQ(h.Map(2), 2u);   // untouched ids stay identity
  EXPECT_EQ(h.Map(99), 99u);
  EXPECT_FALSE(h.IsIdentity());
}

TEST(HomomorphismTest, SetOverwritesPreviousImage) {
  Homomorphism h;
  h.Set(3, 7);
  h.Set(3, 9);
  EXPECT_EQ(h.Map(3), 9u);
}

TEST(HomomorphismTest, CallOperatorMatchesMap) {
  Homomorphism h;
  h.Set(1, 5);
  EXPECT_EQ(h(1), 5u);
}

TEST(HomomorphismTest, ComposeAfterAppliesInOrder) {
  // first: 0 -> 1; after: 1 -> 2. Composition maps 0 -> 2.
  Homomorphism first, after;
  first.Set(0, 1);
  after.Set(1, 2);
  Homomorphism composed = first.ComposeAfter(after);
  EXPECT_EQ(composed.Map(0), 2u);
  EXPECT_EQ(composed.Map(1), 2u);
  EXPECT_EQ(composed.Map(3), 3u);
}

TEST(HomomorphismTest, ComposeWithIdentityIsNoop) {
  Homomorphism h;
  h.Set(2, 4);
  Homomorphism composed = h.ComposeAfter(Homomorphism::Identity());
  EXPECT_EQ(composed.Map(2), 4u);
  EXPECT_EQ(composed.Map(0), 0u);
}

TEST(HomomorphismTest, ComposeAfterSnapshotsLaterRegistrations) {
  // The summarizer composes per-step homomorphisms while the registry keeps
  // growing (each step registers a fresh summary annotation). ComposeAfter
  // is a value snapshot: mappings added to either operand afterwards do not
  // leak into the composed hom, and ids registered after composition fall
  // through its dense range as identity.
  Homomorphism first, after;
  first.Set(0, 1);
  after.Set(1, 2);
  Homomorphism composed = first.ComposeAfter(after);

  after.Set(5, 9);   // annotation registered + mapped after composition
  first.Set(3, 8);
  EXPECT_EQ(composed.Map(5), 5u);  // snapshot: identity, not 9
  EXPECT_EQ(composed.Map(3), 3u);
  EXPECT_EQ(composed.Map(0), 2u);  // original composition intact
  EXPECT_EQ(composed.Map(100000), 100000u);  // beyond dense range: identity

  // Recomposing picks up the later registrations.
  Homomorphism recomposed = first.ComposeAfter(after);
  EXPECT_EQ(recomposed.Map(5), 9u);
  EXPECT_EQ(recomposed.Map(3), 8u);
}

TEST(HomomorphismTest, MapNoAnnotationIsFixedPoint) {
  // kNoAnnotation marks "no group key" in tensor terms; Apply must never
  // remap it, including through compositions with non-trivial mappings.
  Homomorphism h;
  h.Set(0, 7);
  EXPECT_EQ(h.Map(kNoAnnotation), kNoAnnotation);
  EXPECT_EQ(h(kNoAnnotation), kNoAnnotation);
  Homomorphism composed = h.ComposeAfter(h);
  EXPECT_EQ(composed.Map(kNoAnnotation), kNoAnnotation);
}

TEST(HomomorphismTest, IdentityAfterSettingSelfMappings) {
  Homomorphism h;
  h.Set(3, 3);
  EXPECT_TRUE(h.IsIdentity());
}

}  // namespace
}  // namespace prox
