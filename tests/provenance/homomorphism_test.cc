#include "provenance/homomorphism.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(HomomorphismTest, DefaultIsIdentity) {
  Homomorphism h;
  EXPECT_TRUE(h.IsIdentity());
  EXPECT_EQ(h.Map(0), 0u);
  EXPECT_EQ(h.Map(42), 42u);
  EXPECT_EQ(h.Map(kNoAnnotation), kNoAnnotation);
}

TEST(HomomorphismTest, SetRemapsSingleAnnotation) {
  Homomorphism h;
  h.Set(3, 7);
  EXPECT_EQ(h.Map(3), 7u);
  EXPECT_EQ(h.Map(2), 2u);   // untouched ids stay identity
  EXPECT_EQ(h.Map(99), 99u);
  EXPECT_FALSE(h.IsIdentity());
}

TEST(HomomorphismTest, SetOverwritesPreviousImage) {
  Homomorphism h;
  h.Set(3, 7);
  h.Set(3, 9);
  EXPECT_EQ(h.Map(3), 9u);
}

TEST(HomomorphismTest, CallOperatorMatchesMap) {
  Homomorphism h;
  h.Set(1, 5);
  EXPECT_EQ(h(1), 5u);
}

TEST(HomomorphismTest, ComposeAfterAppliesInOrder) {
  // first: 0 -> 1; after: 1 -> 2. Composition maps 0 -> 2.
  Homomorphism first, after;
  first.Set(0, 1);
  after.Set(1, 2);
  Homomorphism composed = first.ComposeAfter(after);
  EXPECT_EQ(composed.Map(0), 2u);
  EXPECT_EQ(composed.Map(1), 2u);
  EXPECT_EQ(composed.Map(3), 3u);
}

TEST(HomomorphismTest, ComposeWithIdentityIsNoop) {
  Homomorphism h;
  h.Set(2, 4);
  Homomorphism composed = h.ComposeAfter(Homomorphism::Identity());
  EXPECT_EQ(composed.Map(2), 4u);
  EXPECT_EQ(composed.Map(0), 0u);
}

TEST(HomomorphismTest, IdentityAfterSettingSelfMappings) {
  Homomorphism h;
  h.Set(3, 3);
  EXPECT_TRUE(h.IsIdentity());
}

}  // namespace
}  // namespace prox
