#include "provenance/polynomial_expr.h"

#include <gtest/gtest.h>

#include "summarize/distance.h"
#include "summarize/mapping_state.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"

namespace prox {
namespace {

struct PolyFixture {
  AnnotationRegistry registry;
  DomainId domain;
  AnnotationId x, y, z;
  PolynomialExpression expr;

  // x·y + z — the lineage of a UCQ result with two derivations.
  PolyFixture()
      : domain(registry.AddDomain("tuple")),
        x(registry.Add(domain, "x").MoveValue()),
        y(registry.Add(domain, "y").MoveValue()),
        z(registry.Add(domain, "z").MoveValue()),
        expr(Polynomial::FromVar(x) * Polynomial::FromVar(y) +
             Polynomial::FromVar(z)) {}
};

TEST(PolynomialExprTest, SizeAndAnnotations) {
  PolyFixture fx;
  EXPECT_EQ(fx.expr.Size(), 3);  // x, y, z occurrences
  std::vector<AnnotationId> anns;
  fx.expr.CollectAnnotations(&anns);
  EXPECT_EQ(anns, (std::vector<AnnotationId>{fx.x, fx.y, fx.z}));
}

TEST(PolynomialExprTest, EvaluateCountsDerivations) {
  PolyFixture fx;
  EXPECT_EQ(fx.expr.Evaluate(MaterializedValuation(3)).scalar(), 2.0);
  EXPECT_EQ(fx.expr
                .Evaluate(MaterializedValuation(Valuation({fx.z}), 3))
                .scalar(),
            1.0);
  EXPECT_EQ(fx.expr
                .Evaluate(MaterializedValuation(Valuation({fx.x, fx.z}), 3))
                .scalar(),
            0.0);
}

TEST(PolynomialExprTest, ApplyMergesVariables) {
  PolyFixture fx;
  AnnotationId merged = fx.registry.AddSummary(fx.domain, "xy");
  Homomorphism h;
  h.Set(fx.x, merged);
  h.Set(fx.y, merged);
  auto mapped = fx.expr.Apply(h);
  // x·y -> xy² ; size stays 3 (multiplicity preserved in ℕ[Ann]).
  EXPECT_EQ(mapped->Size(), 3);
  EXPECT_EQ(mapped->Evaluate(MaterializedValuation(fx.registry.size()))
                .scalar(),
            2.0);
  EXPECT_EQ(
      mapped
          ->Evaluate(MaterializedValuation(Valuation({merged, fx.z}),
                                           fx.registry.size()))
          .scalar(),
      0.0);
}

TEST(PolynomialExprTest, ToStringUsesNames) {
  PolyFixture fx;
  EXPECT_EQ(fx.expr.ToString(fx.registry), "x·y + z");
}

TEST(PolynomialExprTest, CloneIsDeep) {
  PolyFixture fx;
  auto clone = fx.expr.Clone();
  EXPECT_EQ(clone->Size(), 3);
  EXPECT_EQ(clone->ToString(fx.registry), fx.expr.ToString(fx.registry));
}

TEST(PolynomialExprTest, SummarizationMachineryApplies) {
  // The distance oracle runs on ℕ[Ann] lineage: merging x and z (which
  // disagree under cancel-single-annotation valuations) has positive
  // disagreement distance; merging nothing has zero.
  PolyFixture fx;
  SemanticContext ctx;
  ctx.registry = &fx.registry;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(fx.expr, ctx);
  ASSERT_EQ(valuations.size(), 3u);
  DisagreementValFunc vf;
  EnumeratedDistance oracle(&fx.expr, &fx.registry, &vf, valuations);

  MappingState identity(&fx.registry, PhiConfig{});
  EXPECT_EQ(oracle.Distance(fx.expr, identity), 0.0);

  AnnotationId merged = fx.registry.AddSummary(fx.domain, "xz");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.x, fx.z}, merged);
  Homomorphism h;
  h.Set(fx.x, merged);
  h.Set(fx.z, merged);
  auto cand = fx.expr.Apply(h);
  EXPECT_GT(oracle.Distance(*cand, state), 0.0);
}

}  // namespace
}  // namespace prox
