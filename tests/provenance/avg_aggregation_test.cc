// AVG aggregation: the (sum, count) pair monoid of Section 2.2, with
// count-weighted projection and incremental-scorer support.

#include <gtest/gtest.h>

#include "provenance/aggregate_expr.h"
#include "provenance/io.h"
#include "summarize/distance.h"
#include "summarize/incremental.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

AggregateExpression AvgCopy(const MovieFixture& fx) {
  AggregateExpression avg(AggKind::kAvg);
  for (const TensorTerm& t : fx.p0->terms()) avg.AddTerm(t);
  avg.Simplify();
  return avg;
}

TEST(AvgAggregationTest, MergeSumsValuesAndCounts) {
  AggValue merged = MergeAggValues(AggKind::kAvg, {3, 1}, {5, 1});
  EXPECT_EQ(merged.value, 8);  // sum representation
  EXPECT_EQ(merged.count, 2);
  EXPECT_STREQ(AggKindToString(AggKind::kAvg), "AVG");
}

TEST(AvgAggregationTest, EvaluateDividesByContributorCount) {
  MovieFixture fx;
  AggregateExpression avg = AvgCopy(fx);
  EvalResult r = avg.Evaluate(MaterializedValuation(fx.registry.size()));
  // MatchPoint: (3 + 5 + 3) / 3; BlueJasmine: 4 / 1.
  EXPECT_DOUBLE_EQ(r.CoordValue(fx.match_point), 11.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.CoordValue(fx.blue_jasmine), 4.0);
}

TEST(AvgAggregationTest, EmptyCoordinateIsZeroNotNan) {
  MovieFixture fx;
  AggregateExpression avg = AvgCopy(fx);
  // Cancel every MatchPoint rater.
  EvalResult r = avg.Evaluate(MaterializedValuation(
      Valuation({fx.u1, fx.u2, fx.u3}), fx.registry.size()));
  EXPECT_EQ(r.CoordValue(fx.match_point), 0.0);
}

TEST(AvgAggregationTest, HomomorphismPreservesAverages) {
  // Merging U1, U2 merges their MatchPoint tensors into (8, 2): the
  // all-true average is unchanged.
  MovieFixture fx;
  AggregateExpression avg = AvgCopy(fx);
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto mapped = avg.Apply(h);
  EvalResult r = mapped->Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_DOUBLE_EQ(r.CoordValue(fx.match_point), 11.0 / 3.0);
}

TEST(AvgAggregationTest, ProjectionIsCountWeighted) {
  // Coordinates (avg 4 over 2 raters) and (avg 1 over 1 rater) merge to
  // avg (4·2 + 1·1)/3 = 3 — not the naive (4+1)/2.
  AggregateExpression avg(AggKind::kAvg);
  Homomorphism h;
  h.Set(1, 10);
  h.Set(2, 10);
  EvalResult base = EvalResult::Vector(
      {EvalResult::Coord{1, 4.0, 2.0}, EvalResult::Coord{2, 1.0, 1.0}});
  EvalResult projected = avg.ProjectEvalResult(base, h);
  EXPECT_DOUBLE_EQ(projected.CoordValue(10), 3.0);
}

TEST(AvgAggregationTest, SerializationRoundTrips) {
  MovieFixture fx;
  AggregateExpression avg = AvgCopy(fx);
  AnnotationRegistry fresh;
  auto parsed =
      ParseExpression(SerializeExpression(avg, fx.registry), &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto* agg =
      dynamic_cast<const AggregateExpression*>(parsed.value().get());
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->agg(), AggKind::kAvg);
}

TEST(AvgAggregationTest, IncrementalScorerMatchesNaive) {
  MovieFixture fx;
  auto avg = std::make_unique<AggregateExpression>(AggKind::kAvg);
  for (const TensorTerm& t : fx.p0->terms()) avg->AddTerm(t);
  avg->Simplify();

  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*avg, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(avg.get(), &fx.registry, &vf, valuations);
  MappingState state(&fx.registry, PhiConfig{});
  auto scorer = IncrementalScorer::Create(
      avg.get(), &oracle, &state, IncrementalScorer::Metric::kEuclidean);
  ASSERT_NE(scorer, nullptr);

  for (auto roots : {std::vector<AnnotationId>{fx.u1, fx.u2},
                     std::vector<AnnotationId>{fx.u1, fx.u3},
                     std::vector<AnnotationId>{fx.u2, fx.u3}}) {
    IncrementalScorer::Score fast = scorer->ScoreMerge(roots);
    AnnotationId tmp = fx.registry.AddSummary(fx.user_domain, "~tmp");
    MappingState tentative = state;
    tentative.Merge(roots, tmp);
    Homomorphism h;
    for (AnnotationId r : roots) h.Set(r, tmp);
    auto cand = avg->Apply(h);
    EXPECT_NEAR(fast.distance, oracle.Distance(*cand, tentative), 1e-12);
    EXPECT_EQ(fast.size, cand->Size());
  }
}

TEST(AvgAggregationTest, SpammerProvisioningChangesAverage) {
  MovieFixture fx;
  AggregateExpression avg = AvgCopy(fx);
  EvalResult without_u2 = avg.Evaluate(
      MaterializedValuation(Valuation({fx.u2}), fx.registry.size()));
  // MatchPoint average drops to (3 + 3)/2 = 3 without the 5-star review.
  EXPECT_DOUBLE_EQ(without_u2.CoordValue(fx.match_point), 3.0);
  EXPECT_EQ(without_u2.CoordValue(fx.blue_jasmine), 0.0);
}

}  // namespace
}  // namespace prox
