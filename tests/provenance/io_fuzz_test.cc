// Robustness: the expression parser must return a Status — never crash,
// hang or corrupt memory — on arbitrary byte soup and on systematically
// truncated valid inputs.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "provenance/io.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  // Mix structural characters with random printable noise to reach deep
  // parser states.
  const char alphabet[] = "()\"\\/ abz019.-+eMAXdgu\n\t";
  for (int round = 0; round < 200; ++round) {
    size_t len = rng.PickIndex(120);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.PickIndex(sizeof(alphabet) - 1)];
    }
    AnnotationRegistry registry;
    auto result = ParseExpression(input, &registry);
    // Either parses (unlikely) or errors; both are fine.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 4));

TEST(ParserFuzzTest, TruncationsOfValidInputNeverCrash) {
  MovieFixture fx;
  std::string text = SerializeExpression(*fx.p0, fx.registry);
  for (size_t cut = 0; cut < text.size(); ++cut) {
    AnnotationRegistry registry;
    auto result = ParseExpression(text.substr(0, cut), &registry);
    (void)result;  // any Status outcome is acceptable; crashing is not
  }
}

TEST(ParserFuzzTest, MutationsOfValidInputNeverCrash) {
  MovieFixture fx;
  std::string text = SerializeExpression(*fx.p0, fx.registry);
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = text;
    size_t pos = rng.PickIndex(mutated.size());
    mutated[pos] = static_cast<char>(32 + rng.PickIndex(95));
    AnnotationRegistry registry;
    auto result = ParseExpression(mutated, &registry);
    (void)result;
  }
}

}  // namespace
}  // namespace prox
