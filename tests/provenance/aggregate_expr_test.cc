#include "provenance/aggregate_expr.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(AggregateExprTest, SizeCountsAnnotationOccurrences) {
  MovieFixture fx;
  // 4 terms × (user, movie) = 8 annotation occurrences.
  EXPECT_EQ(fx.p0->Size(), 8);
  EXPECT_EQ(fx.p0->num_terms(), 4u);
}

TEST(AggregateExprTest, CollectAnnotationsIsSortedUnique) {
  MovieFixture fx;
  std::vector<AnnotationId> anns;
  fx.p0->CollectAnnotations(&anns);
  EXPECT_EQ(anns, (std::vector<AnnotationId>{fx.u1, fx.u2, fx.u3,
                                             fx.match_point,
                                             fx.blue_jasmine}));
}

TEST(AggregateExprTest, GroupsListsDistinctGroupKeys) {
  MovieFixture fx;
  auto* agg = dynamic_cast<AggregateExpression*>(fx.p0.get());
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->Groups(), (std::vector<AnnotationId>{fx.match_point,
                                                      fx.blue_jasmine}));
}

TEST(AggregateExprTest, EvaluateAllTrueYieldsPerMovieAggregates) {
  MovieFixture fx;
  EvalResult r = fx.p0->Evaluate(MaterializedValuation(fx.registry.size()));
  ASSERT_EQ(r.kind(), EvalResult::Kind::kVector);
  EXPECT_EQ(r.CoordValue(fx.match_point), 5.0);  // MAX(3, 5, 3)
  EXPECT_EQ(r.CoordValue(fx.blue_jasmine), 4.0);
}

TEST(AggregateExprTest, EvaluateCancellingMaxContributor) {
  // Cancelling U2 drops the MAX rating of MatchPoint to 3 and zeroes
  // BlueJasmine (its only review) — the Example 4.2.3 scenario.
  MovieFixture fx;
  MaterializedValuation v(Valuation({fx.u2}), fx.registry.size());
  EvalResult r = fx.p0->Evaluate(v);
  EXPECT_EQ(r.CoordValue(fx.match_point), 3.0);
  EXPECT_EQ(r.CoordValue(fx.blue_jasmine), 0.0);
}

TEST(AggregateExprTest, EvaluateCancellingMovieZeroesItsCoordinate) {
  MovieFixture fx;
  MaterializedValuation v(Valuation({fx.match_point}), fx.registry.size());
  EvalResult r = fx.p0->Evaluate(v);
  EXPECT_EQ(r.CoordValue(fx.match_point), 0.0);
  EXPECT_EQ(r.CoordValue(fx.blue_jasmine), 4.0);
}

TEST(AggregateExprTest, SumAggregationAddsContributions) {
  MovieFixture fx;
  AggregateExpression sum(AggKind::kSum);
  for (const TensorTerm& t : fx.p0->terms()) sum.AddTerm(t);
  sum.Simplify();
  EvalResult r = sum.Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_EQ(r.CoordValue(fx.match_point), 11.0);  // 3 + 5 + 3
}

TEST(AggregateExprTest, CountAggregationCountsContributors) {
  MovieFixture fx;
  AggregateExpression count(AggKind::kCount);
  for (const TensorTerm& t : fx.p0->terms()) count.AddTerm(t);
  count.Simplify();
  EvalResult r = count.Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_EQ(r.CoordValue(fx.match_point), 3.0);
  EXPECT_EQ(r.CoordValue(fx.blue_jasmine), 1.0);
}

TEST(AggregateExprTest, SimplifyMergesEqualKeyTensors) {
  AggregateExpression e(AggKind::kMax);
  TensorTerm a;
  a.monomial = Monomial({1});
  a.group = 9;
  a.value = {3, 1};
  TensorTerm b = a;
  b.value = {5, 1};
  e.AddTerm(a);
  e.AddTerm(b);
  e.Simplify();
  ASSERT_EQ(e.num_terms(), 1u);
  EXPECT_EQ(e.terms()[0].value.value, 5);
  EXPECT_EQ(e.terms()[0].value.count, 2);
}

TEST(AggregateExprTest, ApplyThesisExample311FemaleMapping) {
  // P_s = U1⊗(3,1) ⊕ U2⊗(5,1) ⊕ U3⊗(3,1); mapping U1,U2 -> Female gives
  // P'_s = Female⊗(5,2) ⊕ U3⊗(3,1)  (Example 3.1.1).
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("user");
  AnnotationId u1 = reg.Add(d, "U1").MoveValue();
  AnnotationId u2 = reg.Add(d, "U2").MoveValue();
  AnnotationId u3 = reg.Add(d, "U3").MoveValue();
  AnnotationId female = reg.AddSummary(d, "Female");

  AggregateExpression ps(AggKind::kMax);
  for (auto [u, score] : {std::pair{u1, 3.0}, {u2, 5.0}, {u3, 3.0}}) {
    TensorTerm t;
    t.monomial = Monomial({u});
    t.group = kNoAnnotation;
    t.value = {score, 1};
    ps.AddTerm(std::move(t));
  }
  ps.Simplify();
  EXPECT_EQ(ps.Size(), 3);

  Homomorphism h;
  h.Set(u1, female);
  h.Set(u2, female);
  auto mapped = ps.Apply(h);
  EXPECT_EQ(mapped->Size(), 2);
  auto* agg = dynamic_cast<AggregateExpression*>(mapped.get());
  ASSERT_NE(agg, nullptr);
  ASSERT_EQ(agg->num_terms(), 2u);
  // Female⊗(5,2) and U3⊗(3,1), in some canonical order.
  bool found_female = false, found_u3 = false;
  for (const TensorTerm& t : agg->terms()) {
    if (t.monomial.Contains(female)) {
      EXPECT_EQ(t.value.value, 5);
      EXPECT_EQ(t.value.count, 2);
      found_female = true;
    }
    if (t.monomial.Contains(u3)) {
      EXPECT_EQ(t.value.value, 3);
      EXPECT_EQ(t.value.count, 1);
      found_u3 = true;
    }
  }
  EXPECT_TRUE(found_female);
  EXPECT_TRUE(found_u3);
}

TEST(AggregateExprTest, ApplyRemapsGroupKeys) {
  MovieFixture fx;
  AnnotationId merged_movie =
      fx.registry.AddSummary(fx.movie_domain, "WoodyAllenFilms");
  Homomorphism h;
  h.Set(fx.match_point, merged_movie);
  h.Set(fx.blue_jasmine, merged_movie);
  auto mapped = fx.p0->Apply(h);
  auto* agg = dynamic_cast<AggregateExpression*>(mapped.get());
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->Groups(), (std::vector<AnnotationId>{merged_movie}));
  EvalResult r = mapped->Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_EQ(r.CoordValue(merged_movie), 5.0);  // MAX over everything
}

TEST(AggregateExprTest, ProjectEvalResultMergesCoordinates) {
  MovieFixture fx;
  AnnotationId merged_movie =
      fx.registry.AddSummary(fx.movie_domain, "Merged");
  Homomorphism h;
  h.Set(fx.match_point, merged_movie);
  h.Set(fx.blue_jasmine, merged_movie);
  auto mapped = fx.p0->Apply(h);

  EvalResult base = fx.p0->Evaluate(MaterializedValuation(fx.registry.size()));
  EvalResult projected = mapped->ProjectEvalResult(base, h);
  ASSERT_EQ(projected.kind(), EvalResult::Kind::kVector);
  // MAX(5, 4) = 5 under the merged coordinate.
  EXPECT_EQ(projected.CoordValue(merged_movie), 5.0);
}

TEST(AggregateExprTest, ProjectEvalResultSumAddsCoordinates) {
  // The vector transformation of Example 5.2.1: SUM-aggregating merged
  // coordinates.
  AggregateExpression e(AggKind::kSum);
  Homomorphism h;
  h.Set(1, 10);
  h.Set(2, 10);
  EvalResult base = EvalResult::Vector({{1, 1.0}, {2, 1.0}, {3, 0.5}});
  EvalResult projected = e.ProjectEvalResult(base, h);
  EXPECT_EQ(projected.CoordValue(10), 2.0);
  EXPECT_EQ(projected.CoordValue(3), 0.5);
}

TEST(AggregateExprTest, ScalarExpressionEvaluatesToScalar) {
  AggregateExpression e(AggKind::kMax);
  TensorTerm t;
  t.monomial = Monomial({0});
  t.group = kNoAnnotation;
  t.value = {4, 1};
  e.AddTerm(std::move(t));
  e.Simplify();
  EvalResult r = e.Evaluate(MaterializedValuation(1));
  EXPECT_EQ(r.kind(), EvalResult::Kind::kScalar);
  EXPECT_EQ(r.scalar(), 4.0);
}

TEST(AggregateExprTest, GuardedTermRespectsGuard) {
  // U1·[S1·U1⊗5 > 2] ⊗ (3,1): cancelling S1 kills the term via the guard
  // (Example 2.3.1).
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("x");
  AnnotationId u1 = reg.Add(d, "U1").MoveValue();
  AnnotationId s1 = reg.Add(d, "S1").MoveValue();
  AggregateExpression e(AggKind::kMax);
  TensorTerm t;
  t.monomial = Monomial({u1});
  t.guard = Guard(Monomial({s1, u1}), 5.0, CompareOp::kGt, 2.0);
  t.group = kNoAnnotation;
  t.value = {3, 1};
  e.AddTerm(std::move(t));
  e.Simplify();
  EXPECT_EQ(e.Size(), 3);  // U1 + guard body S1·U1

  EvalResult all_true = e.Evaluate(MaterializedValuation(reg.size()));
  EXPECT_EQ(all_true.scalar(), 3.0);
  EvalResult s1_cancelled =
      e.Evaluate(MaterializedValuation(Valuation({s1}), reg.size()));
  EXPECT_EQ(s1_cancelled.scalar(), 0.0);
}

TEST(AggregateExprTest, CloneIsDeepAndEqualText) {
  MovieFixture fx;
  auto clone = fx.p0->Clone();
  EXPECT_EQ(clone->Size(), fx.p0->Size());
  EXPECT_EQ(clone->ToString(fx.registry), fx.p0->ToString(fx.registry));
}

TEST(AggregateExprTest, ToStringShowsTensors) {
  MovieFixture fx;
  std::string text = fx.p0->ToString(fx.registry);
  EXPECT_NE(text.find("U2·MatchPoint ⊗ (5.0, 1)"), std::string::npos);
  EXPECT_NE(text.find("⊕"), std::string::npos);
  AggregateExpression empty(AggKind::kMax);
  EXPECT_EQ(empty.ToString(fx.registry), "0");
}

}  // namespace
}  // namespace prox
