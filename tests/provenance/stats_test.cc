#include "provenance/stats.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(StatsTest, CountsSizeAndDomains) {
  MovieFixture fx;
  ExpressionStats stats = ComputeStats(*fx.p0, fx.registry);
  EXPECT_EQ(stats.size, 8);
  EXPECT_EQ(stats.distinct_annotations, 5u);
  EXPECT_EQ(stats.summary_annotations, 0u);
  EXPECT_EQ(stats.per_domain.at("user"), 3u);
  EXPECT_EQ(stats.per_domain.at("movie"), 2u);
}

TEST(StatsTest, SummariesCounted) {
  MovieFixture fx;
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto mapped = fx.p0->Apply(h);
  ExpressionStats stats = ComputeStats(*mapped, fx.registry);
  EXPECT_EQ(stats.summary_annotations, 1u);
  EXPECT_EQ(stats.per_domain.at("user"), 2u);  // Female + U3
}

TEST(StatsTest, ToStringMentionsEverything) {
  MovieFixture fx;
  std::string text = ComputeStats(*fx.p0, fx.registry).ToString();
  EXPECT_NE(text.find("size 8"), std::string::npos);
  EXPECT_NE(text.find("user:3"), std::string::npos);
  EXPECT_NE(text.find("movie:2"), std::string::npos);
}

}  // namespace
}  // namespace prox
