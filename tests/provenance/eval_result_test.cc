#include "provenance/eval_result.h"

#include <gtest/gtest.h>

#include "provenance/annotation.h"

namespace prox {
namespace {

TEST(EvalResultTest, ScalarRoundTrip) {
  EvalResult r = EvalResult::Scalar(3.5);
  EXPECT_EQ(r.kind(), EvalResult::Kind::kScalar);
  EXPECT_EQ(r.scalar(), 3.5);
}

TEST(EvalResultTest, VectorSortsCoordinates) {
  EvalResult r = EvalResult::Vector({{5, 1.0}, {2, 2.0}, {9, 3.0}});
  ASSERT_EQ(r.coords().size(), 3u);
  EXPECT_EQ(r.coords()[0].group, 2u);
  EXPECT_EQ(r.coords()[1].group, 5u);
  EXPECT_EQ(r.coords()[2].group, 9u);
}

TEST(EvalResultTest, CoordValueReturnsZeroForAbsentGroups) {
  EvalResult r = EvalResult::Vector({{2, 2.0}, {5, 1.5}});
  EXPECT_EQ(r.CoordValue(2), 2.0);
  EXPECT_EQ(r.CoordValue(5), 1.5);
  EXPECT_EQ(r.CoordValue(7), 0.0);
}

TEST(EvalResultTest, CostBoolRoundTrip) {
  EvalResult r = EvalResult::CostBool(12.0, true);
  EXPECT_EQ(r.kind(), EvalResult::Kind::kCostBool);
  EXPECT_EQ(r.cost(), 12.0);
  EXPECT_TRUE(r.feasible());
}

TEST(EvalResultTest, EqualityPerKind) {
  EXPECT_EQ(EvalResult::Scalar(1.0), EvalResult::Scalar(1.0));
  EXPECT_FALSE(EvalResult::Scalar(1.0) == EvalResult::Scalar(2.0));
  EXPECT_EQ(EvalResult::Vector({{1, 2.0}}), EvalResult::Vector({{1, 2.0}}));
  EXPECT_FALSE(EvalResult::Vector({{1, 2.0}}) ==
               EvalResult::Vector({{1, 3.0}}));
  EXPECT_EQ(EvalResult::CostBool(1, true), EvalResult::CostBool(1, true));
  EXPECT_FALSE(EvalResult::CostBool(1, true) ==
               EvalResult::CostBool(1, false));
  EXPECT_FALSE(EvalResult::Scalar(1.0) == EvalResult::CostBool(1.0, true));
}

TEST(EvalResultTest, ToStringRendersAllKinds) {
  AnnotationRegistry reg;
  DomainId d = reg.AddDomain("movie");
  AnnotationId m = reg.Add(d, "Adele").MoveValue();
  EXPECT_EQ(EvalResult::Scalar(3.0).ToString(reg), "3.00");
  EXPECT_EQ(EvalResult::CostBool(0, true).ToString(reg), "<0.00, true>");
  EXPECT_EQ(EvalResult::Vector({{m, 2.0}}).ToString(reg), "(Adele: 2.00)");
}

}  // namespace
}  // namespace prox
