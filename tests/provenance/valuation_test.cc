#include "provenance/valuation.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(ValuationTest, DefaultsToAllTrue) {
  Valuation v;
  EXPECT_TRUE(v.IsTrue(0));
  EXPECT_TRUE(v.IsTrue(12345));
  EXPECT_TRUE(v.false_set().empty());
}

TEST(ValuationTest, FalseSetIsSortedAndDeduplicated) {
  Valuation v({5, 1, 5, 3});
  EXPECT_EQ(v.false_set(), (std::vector<AnnotationId>{1, 3, 5}));
  EXPECT_TRUE(v.IsFalse(1));
  EXPECT_TRUE(v.IsFalse(5));
  EXPECT_TRUE(v.IsTrue(2));
}

TEST(ValuationTest, LabelAndWeightArePreserved) {
  Valuation v({1}, "cancel U1", 2.5);
  EXPECT_EQ(v.label(), "cancel U1");
  EXPECT_EQ(v.weight(), 2.5);
}

TEST(ValuationTest, EqualityComparesFalseSetOnly) {
  EXPECT_EQ(Valuation({1, 2}, "a"), Valuation({2, 1}, "b"));
  EXPECT_FALSE(Valuation({1}) == Valuation({2}));
}

TEST(MaterializedValuationTest, MaterializesSparseValuation) {
  Valuation v({2, 4});
  MaterializedValuation mat(v, 6);
  EXPECT_TRUE(mat.truth(0));
  EXPECT_FALSE(mat.truth(2));
  EXPECT_TRUE(mat.truth(3));
  EXPECT_FALSE(mat.truth(4));
}

TEST(MaterializedValuationTest, AllTrueConstructor) {
  MaterializedValuation mat(4);
  for (AnnotationId a = 0; a < 4; ++a) EXPECT_TRUE(mat.truth(a));
}

TEST(MaterializedValuationTest, SetOverridesTruth) {
  MaterializedValuation mat(3);
  mat.Set(1, false);
  EXPECT_FALSE(mat.truth(1));
  mat.Set(1, true);
  EXPECT_TRUE(mat.truth(1));
}

TEST(MaterializedValuationTest, IdsBeyondBitmapDefaultTrue) {
  MaterializedValuation mat(2);
  EXPECT_TRUE(mat.truth(100));
}

TEST(MaterializedValuationTest, IgnoresFalseIdsBeyondSize) {
  Valuation v({10});
  MaterializedValuation mat(v, 3);  // id 10 out of range: dropped
  EXPECT_TRUE(mat.truth(10));
}

}  // namespace
}  // namespace prox
