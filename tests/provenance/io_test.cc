#include "provenance/io.h"

#include <gtest/gtest.h>

#include "provenance/aggregate_expr.h"
#include "provenance/ddp_expr.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(IoTest, AggregateRoundTripPreservesEverything) {
  MovieFixture fx;
  std::string text = SerializeExpression(*fx.p0, fx.registry);

  AnnotationRegistry fresh;
  auto parsed = ParseExpression(text, &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value()->Size(), fx.p0->Size());
  // Canonical factor order depends on annotation ids, which differ between
  // registries; but after one round-trip the text is a fixed point.
  std::string text2 = SerializeExpression(*parsed.value(), fresh);
  AnnotationRegistry fresh2;
  auto parsed2 = ParseExpression(text2, &fresh2);
  ASSERT_TRUE(parsed2.ok());
  EXPECT_EQ(SerializeExpression(*parsed2.value(), fresh2), text2);
}

TEST(IoTest, AggregateRoundTripPreservesEvaluation) {
  MovieFixture fx;
  std::string text = SerializeExpression(*fx.p0, fx.registry);
  AnnotationRegistry fresh;
  auto parsed = ParseExpression(text, &fresh);
  ASSERT_TRUE(parsed.ok());
  // Cancel U2 by name in both registries; evaluations agree.
  AnnotationId u2_orig = fx.registry.Find("U2").MoveValue();
  AnnotationId u2_new = fresh.Find("U2").MoveValue();
  EvalResult a = fx.p0->Evaluate(
      MaterializedValuation(Valuation({u2_orig}), fx.registry.size()));
  EvalResult b = parsed.value()->Evaluate(
      MaterializedValuation(Valuation({u2_new}), fresh.size()));
  ASSERT_EQ(a.coords().size(), b.coords().size());
  for (const auto& coord : a.coords()) {
    AnnotationId mapped =
        fresh.Find(fx.registry.name(coord.group)).MoveValue();
    EXPECT_EQ(b.CoordValue(mapped), coord.value);
  }
}

TEST(IoTest, GuardedTermsRoundTrip) {
  AnnotationRegistry reg;
  DomainId users = reg.AddDomain("user");
  DomainId stats = reg.AddDomain("stats");
  AnnotationId u1 = reg.Add(users, "U1").MoveValue();
  AnnotationId s1 = reg.Add(stats, "S1").MoveValue();
  AggregateExpression expr(AggKind::kMax);
  TensorTerm t;
  t.monomial = Monomial({u1});
  t.guard = Guard(Monomial({s1, u1}), 5.0, CompareOp::kGt, 2.0);
  t.group = kNoAnnotation;
  t.value = {3, 1};
  expr.AddTerm(std::move(t));
  expr.Simplify();

  AnnotationRegistry fresh;
  auto parsed = ParseExpression(SerializeExpression(expr, reg), &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto* agg = dynamic_cast<const AggregateExpression*>(
      parsed.value().get());
  ASSERT_NE(agg, nullptr);
  ASSERT_EQ(agg->num_terms(), 1u);
  ASSERT_TRUE(agg->terms()[0].guard.has_value());
  EXPECT_EQ(agg->terms()[0].guard->scalar(), 5.0);
  EXPECT_EQ(agg->terms()[0].guard->op(), CompareOp::kGt);
  EXPECT_EQ(agg->terms()[0].guard->threshold(), 2.0);
}

TEST(IoTest, QuotedNamesWithSpaces) {
  AnnotationRegistry reg;
  DomainId movies = reg.AddDomain("movie");
  AnnotationId mp = reg.Add(movies, "Match Point (2005)").MoveValue();
  AggregateExpression expr(AggKind::kSum);
  TensorTerm t;
  t.monomial = Monomial({mp});
  t.group = mp;
  t.value = {1, 1};
  expr.AddTerm(std::move(t));
  expr.Simplify();

  std::string text = SerializeExpression(expr, reg);
  EXPECT_NE(text.find("\"Match Point (2005)\""), std::string::npos);
  AnnotationRegistry fresh;
  auto parsed = ParseExpression(text, &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(fresh.Find("Match Point (2005)").ok());
}

TEST(IoTest, DdpRoundTrip) {
  AnnotationRegistry reg;
  DomainId cost = reg.AddDomain("cost_var");
  DomainId db = reg.AddDomain("db_var");
  AnnotationId c1 = reg.Add(cost, "c1").MoveValue();
  AnnotationId d1 = reg.Add(db, "d1").MoveValue();
  AnnotationId d2 = reg.Add(db, "d2").MoveValue();
  DdpExpression expr;
  expr.SetCost(c1, 4.0);
  DdpExecution e;
  e.transitions.push_back(DdpTransition::User(c1));
  e.transitions.push_back(DdpTransition::Db(Monomial({d1, d2}), true));
  expr.AddExecution(std::move(e));
  DdpExecution e2;
  e2.transitions.push_back(DdpTransition::Db(Monomial({d2}), false));
  expr.AddExecution(std::move(e2));
  expr.Simplify();

  AnnotationRegistry fresh;
  auto parsed = ParseExpression(SerializeExpression(expr, reg), &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto* ddp = dynamic_cast<const DdpExpression*>(parsed.value().get());
  ASSERT_NE(ddp, nullptr);
  EXPECT_EQ(ddp->executions().size(), 2u);
  EXPECT_EQ(ddp->CostOf(fresh.Find("c1").MoveValue()), 4.0);
  EXPECT_EQ(parsed.value()->Size(), expr.Size());

  // Evaluation agrees under the all-true valuation.
  EXPECT_EQ(parsed.value()->Evaluate(MaterializedValuation(fresh.size())),
            expr.Evaluate(MaterializedValuation(reg.size())));
}

TEST(IoTest, ParsingIntoPopulatedRegistryReusesAnnotations) {
  MovieFixture fx;
  std::string text = SerializeExpression(*fx.p0, fx.registry);
  size_t before = fx.registry.size();
  auto parsed = ParseExpression(text, &fx.registry);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(fx.registry.size(), before);  // nothing re-interned
}

TEST(IoTest, DomainConflictIsError) {
  AnnotationRegistry reg;
  DomainId users = reg.AddDomain("user");
  ASSERT_TRUE(reg.Add(users, "X1").ok());
  auto parsed = ParseExpression(
      "(aggregate MAX (term (mono movie/X1) (value 1 1)))", &reg);
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(IoTest, MalformedInputsAreRejected) {
  AnnotationRegistry reg;
  EXPECT_FALSE(ParseExpression("", &reg).ok());
  EXPECT_FALSE(ParseExpression("(aggregate)", &reg).ok());
  EXPECT_FALSE(ParseExpression("(aggregate BOGUS)", &reg).ok());
  EXPECT_FALSE(ParseExpression("(aggregate MAX (term))", &reg).ok());
  EXPECT_FALSE(
      ParseExpression("(aggregate MAX (term (mono user/U1)", &reg).ok());
  EXPECT_FALSE(ParseExpression("(ddp (exec (db ?? db/d1)))", &reg).ok());
  EXPECT_FALSE(ParseExpression("(something-else)", &reg).ok());
  EXPECT_FALSE(ParseExpression(
                   "(aggregate MAX (term (mono noslash) (value 1 1)))", &reg)
                   .ok());
}

TEST(IoTest, NumbersAreValidatedStrictly) {
  AnnotationRegistry reg;
  EXPECT_FALSE(
      ParseExpression(
          "(aggregate MAX (term (mono user/U1) (value abc 1)))", &reg)
          .ok());
}

}  // namespace
}  // namespace prox
