/// SummaryMaintainer tests: warm-start vs full-rerun distance parity on
/// all three dataset families, warm replay accounting, and the
/// delta-fraction fall-back to a full re-run.

#include <string>

#include <gtest/gtest.h>

#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "ingest/delta.h"
#include "ingest/ingest_metrics.h"
#include "ingest/maintainer.h"
#include "ingest/synthetic.h"
#include "service/session.h"

namespace prox {
namespace ingest {
namespace {

Dataset MovieLens() {
  MovieLensConfig config;
  config.num_users = 16;
  config.num_movies = 6;
  config.seed = 21;
  return MovieLensGenerator::Generate(config);
}

Dataset Wikipedia() {
  WikipediaConfig config;
  config.num_users = 12;
  config.num_pages = 8;
  return WikipediaGenerator::Generate(config);
}

Dataset Ddp() {
  DdpConfig config;
  config.num_executions = 8;
  return DdpGenerator::Generate(config);
}

SummarizationRequest Request() {
  SummarizationRequest request;
  request.w_dist = 0.5;
  request.w_size = 0.5;
  request.max_steps = 64;
  request.threads = 1;
  return request;
}

/// Runs the warm path (summarize → ingest → warm resummarize) on one
/// session and the cold path (ingest the same delta → one full summarize)
/// on an identically generated twin, and checks the two end at the same
/// distance — the warm continuation loses nothing (docs/INGEST.md).
void CheckWarmColdParity(Dataset warm_ds, Dataset cold_ds,
                         const DeltaBatch& delta) {
  const SummarizationRequest request = Request();

  ProxSession warm_session(std::move(warm_ds));
  warm_session.SelectAll();
  ASSERT_TRUE(warm_session.Summarize(request).ok());
  SummaryMaintainer warm(&warm_session);
  Result<ApplyReceipt> receipt = warm.Ingest(delta);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_GT(warm.delta_fraction(), 0.0);
  Result<MaintainReport> report = warm.Resummarize(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().warm);
  EXPECT_GT(report.value().replayed_merges, 0);
  // Resetting the accounting: the next resummarize with no new ingest
  // sees no delta.
  EXPECT_EQ(warm.delta_fraction(), 0.0);

  ProxSession cold_session(std::move(cold_ds));
  cold_session.SelectAll();
  ASSERT_TRUE(cold_session.Ingest(delta).ok());
  cold_session.SelectAll();
  ASSERT_TRUE(cold_session.Summarize(request).ok());

  ProxSession::LockedView cold_view = cold_session.Lock();
  EXPECT_NEAR(report.value().final_distance,
              cold_view.outcome()->final_distance, 1e-9);
  EXPECT_EQ(report.value().final_size, cold_view.outcome()->final_size);
}

TEST(SummaryMaintainerTest, WarmMatchesFullRerunOnMovieLens) {
  Dataset probe = MovieLens();
  Result<DeltaBatch> delta = SyntheticMovieLensDelta(probe, 2, 2, 1);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  CheckWarmColdParity(MovieLens(), MovieLens(), delta.value());
}

TEST(SummaryMaintainerTest, WarmMatchesFullRerunOnWikipedia) {
  Dataset probe = Wikipedia();
  Result<DeltaBatch> delta = SyntheticWikipediaDelta(probe, 2, 2, 1);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  CheckWarmColdParity(Wikipedia(), Wikipedia(), delta.value());
}

TEST(SummaryMaintainerTest, WarmMatchesFullRerunOnDdp) {
  Dataset probe = Ddp();
  Result<DeltaBatch> delta = SyntheticDdpDelta(probe, 2, 3, 1);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  CheckWarmColdParity(Ddp(), Ddp(), delta.value());
}

TEST(SummaryMaintainerTest, LargeDeltaFallsBackToFullRerun) {
  Dataset dataset = MovieLens();
  Dataset probe = MovieLens();
  ProxSession session(std::move(dataset));
  session.SelectAll();
  ASSERT_TRUE(session.Summarize(Request()).ok());

  MaintainOptions options;
  options.max_delta_fraction = 0.0;  // any growth forces the fall-back
  SummaryMaintainer maintainer(&session, options);
  Result<DeltaBatch> delta = SyntheticMovieLensDelta(probe, 2, 2, 1);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE(maintainer.Ingest(delta.value()).ok());

  const uint64_t fallbacks_before = WarmstartFallbacks()->value();
  Result<MaintainReport> report = maintainer.Resummarize(Request());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().warm);
  EXPECT_EQ(report.value().replayed_merges, 0);
  EXPECT_EQ(WarmstartFallbacks()->value(), fallbacks_before + 1);
}

TEST(SummaryMaintainerTest, FirstSummarizeIsColdButNotAFallback) {
  Dataset dataset = MovieLens();
  ProxSession session(std::move(dataset));
  session.SelectAll();
  SummaryMaintainer maintainer(&session);

  const uint64_t fallbacks_before = WarmstartFallbacks()->value();
  Result<MaintainReport> report = maintainer.Resummarize(Request());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report.value().warm);
  EXPECT_EQ(WarmstartFallbacks()->value(), fallbacks_before);
}

}  // namespace
}  // namespace ingest
}  // namespace prox
