/// DeltaBatch unit tests: JSON wire round-trips, typed rejection of
/// non-monotone / malformed ops, digest determinism and fingerprint
/// chaining, batch-split invariance, and the id-stability contract of
/// ApplyBatch (interned ids and registry ids survive an append).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "ingest/delta.h"
#include "ingest/ingest_log.h"
#include "ingest/synthetic.h"
#include "ir/agg_expr.h"
#include "provenance/annotation.h"

namespace prox {
namespace ingest {
namespace {

Dataset SmallMovieLens() {
  MovieLensConfig config;
  config.num_users = 10;
  config.num_movies = 5;
  config.seed = 3;
  return MovieLensGenerator::Generate(config);
}

DeltaOp AddUser(const std::string& name) {
  DeltaOp op;
  op.kind = DeltaOpKind::kAddAnnotation;
  op.domain = "user";
  op.name = name;
  op.attrs = {"F", "25-34", "artist", "12345"};
  return op;
}

DeltaOp AddRating(const Dataset& dataset, const std::string& user,
                  size_t movie_index, double value) {
  const AnnotationRegistry& registry = *dataset.registry;
  std::vector<AnnotationId> movies;
  for (AnnotationId a :
       registry.AnnotationsInDomain(dataset.domain("movie"))) {
    if (!registry.is_summary(a)) movies.push_back(a);
  }
  const AnnotationId movie = movies[movie_index % movies.size()];
  // The generated year annotation for this movie: find any "Y..." factor
  // by scanning the year domain is overkill here — the term is valid with
  // just (user, movie), the registry does not force three factors.
  DeltaOp op;
  op.kind = DeltaOpKind::kAddTerm;
  op.factors = {user, registry.name(movie)};
  op.group = registry.name(movie);
  op.value = value;
  return op;
}

TEST(DeltaWireTest, JsonRoundTripIsLossless) {
  DeltaBatch batch;
  batch.sequence = 1;
  batch.ops.push_back(AddUser("UIN1_0"));
  DeltaOp term;
  term.kind = DeltaOpKind::kAddTerm;
  term.factors = {"UIN1_0", "M1"};
  term.group = "M1";
  term.value = 4.0;
  term.count = 2.0;
  batch.ops.push_back(term);

  JsonValue doc = DeltaBatchToJson(batch);
  Result<DeltaBatch> parsed = DeltaBatchFromJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().sequence, 1u);
  ASSERT_EQ(parsed.value().ops.size(), 2u);
  EXPECT_EQ(parsed.value().ops[0].name, "UIN1_0");
  EXPECT_EQ(parsed.value().ops[1].factors,
            (std::vector<std::string>{"UIN1_0", "M1"}));
  EXPECT_EQ(parsed.value().ops[1].count, 2.0);
  // Round-tripping through JSON does not change the digest.
  EXPECT_EQ(BatchDigest(batch), BatchDigest(parsed.value()));
}

TEST(DeltaWireTest, ResummarizeKeyToleratedOtherUnknownKeysRejected) {
  DeltaBatch batch;
  batch.sequence = 1;
  batch.ops.push_back(AddUser("U_new"));
  JsonValue doc = DeltaBatchToJson(batch);
  doc.Set("resummarize", JsonValue::Bool(true));
  EXPECT_TRUE(DeltaBatchFromJson(doc).ok());
  doc.Set("surprise", JsonValue::Int(1));
  EXPECT_FALSE(DeltaBatchFromJson(doc).ok());
}

TEST(DeltaValidationTest, SequenceMismatchIsTypedAndRetryable) {
  Dataset dataset = SmallMovieLens();
  DeltaBatch batch;
  batch.sequence = 7;
  batch.ops.push_back(AddUser("U_new"));
  Result<ApplyReceipt> applied = ApplyBatch(&dataset, batch, 1);
  ASSERT_FALSE(applied.ok());
  EXPECT_EQ(applied.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(applied.status().ToString().find("kSequence"),
            std::string::npos);
}

TEST(DeltaValidationTest, NonMonotoneAndMalformedOpsAreTypedRejections) {
  Dataset dataset = SmallMovieLens();
  const int64_t size_before = dataset.provenance->Size();
  const size_t annotations_before = dataset.registry->size();

  auto reject = [&](const DeltaOp& op, StatusCode code, const char* kind) {
    DeltaBatch batch;
    batch.sequence = 1;
    batch.ops.push_back(op);
    Result<ApplyReceipt> applied = ApplyBatch(&dataset, batch, 1);
    ASSERT_FALSE(applied.ok()) << kind;
    EXPECT_EQ(applied.status().code(), code) << kind;
    EXPECT_NE(applied.status().ToString().find(kind), std::string::npos)
        << applied.status().ToString();
  };

  DeltaOp unknown_domain = AddUser("U_new");
  unknown_domain.domain = "starship";
  unknown_domain.attrs.clear();
  reject(unknown_domain, StatusCode::kInvalidArgument, "kUnknownDomain");

  DeltaOp duplicate = AddUser(
      dataset.registry->name(*dataset.registry
                                  ->AnnotationsInDomain(
                                      dataset.domain("user"))
                                  .begin()));
  reject(duplicate, StatusCode::kInvalidArgument, "kDuplicateAnnotation");

  DeltaOp unknown_factor = AddRating(dataset, "nobody", 0, 3.0);
  reject(unknown_factor, StatusCode::kInvalidArgument, "kUnknownAnnotation");

  DeltaOp wrong_attr_count = AddUser("U_new");
  wrong_attr_count.attrs = {"F"};
  reject(wrong_attr_count, StatusCode::kInvalidArgument, "kBadShape");

  DeltaOp cost_on_aggregate = AddUser("U_new");
  cost_on_aggregate.cost = 2.0;
  cost_on_aggregate.has_cost = true;
  reject(cost_on_aggregate, StatusCode::kInvalidArgument, "kUnsupported");

  DeltaOp execution;
  execution.kind = DeltaOpKind::kAddExecution;
  DeltaTransition user_step;
  user_step.user = true;
  user_step.cost_var = "c1";
  execution.transitions.push_back(user_step);
  reject(execution, StatusCode::kInvalidArgument, "kUnsupported");

  DeltaOp shrink = AddRating(
      dataset,
      dataset.registry->name(*dataset.registry
                                  ->AnnotationsInDomain(
                                      dataset.domain("user"))
                                  .begin()),
      0, 3.0);
  shrink.count = -1.0;
  reject(shrink, StatusCode::kInvalidArgument, "kNonMonotone");

  // Referencing a summary annotation is rejected: the monotone-growth
  // contract only covers originals.
  AnnotationId summary =
      dataset.registry->AddSummary(dataset.domain("user"), "S_group");
  DeltaOp summary_factor =
      AddRating(dataset, dataset.registry->name(summary), 0, 3.0);
  reject(summary_factor, StatusCode::kInvalidArgument, "kSummaryAnnotation");

  // All-or-nothing: a valid op ahead of an invalid one leaves no trace.
  DeltaBatch mixed;
  mixed.sequence = 1;
  mixed.ops.push_back(AddUser("U_new"));
  DeltaOp bad = AddUser("U_new2");
  bad.domain = "starship";
  bad.attrs.clear();
  mixed.ops.push_back(bad);
  EXPECT_FALSE(ApplyBatch(&dataset, mixed, 1).ok());
  EXPECT_EQ(dataset.provenance->Size(), size_before);
  EXPECT_EQ(dataset.registry->size(), annotations_before + 1);  // +summary
  EXPECT_FALSE(dataset.registry->Find("U_new").ok());
}

TEST(DeltaDigestTest, DigestIsDeterministicAndOrderSensitive) {
  DeltaBatch batch;
  batch.sequence = 1;
  batch.ops.push_back(AddUser("A"));
  batch.ops.push_back(AddUser("B"));
  const std::string digest = BatchDigest(batch);
  EXPECT_EQ(digest.size(), 16u);
  EXPECT_EQ(digest, BatchDigest(batch));

  DeltaBatch swapped;
  swapped.sequence = 1;
  swapped.ops.push_back(AddUser("B"));
  swapped.ops.push_back(AddUser("A"));
  EXPECT_NE(digest, BatchDigest(swapped));

  // Chaining is deterministic and collision-separated from its inputs.
  const std::string chained = ChainFingerprint("0123456789abcdef", digest);
  EXPECT_EQ(chained.size(), 16u);
  EXPECT_EQ(chained, ChainFingerprint("0123456789abcdef", digest));
  EXPECT_NE(chained, ChainFingerprint("fedcba9876543210", digest));
  EXPECT_NE(chained, digest);
}

TEST(IngestLogTest, SequenceAdvancesAndGapsAreRejected) {
  Dataset dataset = SmallMovieLens();
  IngestLog log(&dataset);
  EXPECT_EQ(log.next_sequence(), 1u);

  Result<DeltaBatch> first = SyntheticMovieLensDelta(dataset, 2, 2, 1);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<ApplyReceipt> receipt = log.Append(first.value());
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_EQ(receipt.value().sequence, 1u);
  EXPECT_EQ(receipt.value().annotations_added, 2);
  EXPECT_EQ(receipt.value().terms_added, 4);
  EXPECT_EQ(log.next_sequence(), 2u);
  ASSERT_EQ(log.receipts().size(), 1u);

  // Replaying the same sequence is a typed FailedPrecondition.
  Result<ApplyReceipt> replayed = log.Append(first.value());
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kFailedPrecondition);

  Result<DeltaBatch> second = SyntheticMovieLensDelta(dataset, 1, 1, 2);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(log.Append(second.value()).ok());
  EXPECT_EQ(log.next_sequence(), 3u);
}

TEST(ApplyBatchTest, RegistryAndInternedIdsAreStableAcrossAppend) {
  Dataset dataset = SmallMovieLens();
  const AnnotationRegistry& registry = *dataset.registry;

  // Record every pre-existing annotation's (id → name) binding.
  std::vector<std::string> names;
  for (AnnotationId a = 0; a < registry.size(); ++a) {
    names.push_back(registry.name(a));
  }

  // If the provenance is IR-backed, record an interned monomial id from
  // the shared pool before the append.
  const ir::IrAggregateExpression* ir_expr =
      dynamic_cast<const ir::IrAggregateExpression*>(
          dataset.provenance.get());
  ir::MonomialId existing_id = 0;
  std::vector<AnnotationId> existing_factors;
  if (ir_expr != nullptr) {
    AggTermView first = ir_expr->agg_term(0);
    existing_factors.assign(first.mono, first.mono + first.mono_len);
    existing_id = ir_expr->pool()->InternMonomial(existing_factors.data(),
                                                  existing_factors.size());
  }

  Result<DeltaBatch> delta = SyntheticMovieLensDelta(dataset, 3, 2, 1);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  Result<ApplyReceipt> receipt = ApplyBatch(&dataset, delta.value(), 1);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_EQ(receipt.value().expression_size, dataset.provenance->Size());

  // Every old registry id still names the same annotation.
  ASSERT_GE(registry.size(), names.size());
  for (size_t a = 0; a < names.size(); ++a) {
    EXPECT_EQ(registry.name(static_cast<AnnotationId>(a)), names[a])
        << "id " << a;
  }

  // The append only extended the pool: re-interning the pre-existing
  // monomial yields the same id, so untouched terms' interned references
  // stayed valid (copy-on-write monotone growth).
  if (ir_expr != nullptr) {
    const ir::IrAggregateExpression* grown =
        dynamic_cast<const ir::IrAggregateExpression*>(
            dataset.provenance.get());
    ASSERT_NE(grown, nullptr);
    EXPECT_EQ(grown->pool()->InternMonomial(existing_factors.data(),
                                            existing_factors.size()),
              existing_id);
  }
}

TEST(ApplyBatchTest, SplitBatchesGrowTheSameExpressionAsOneBatch) {
  Dataset one = SmallMovieLens();
  Dataset two = SmallMovieLens();

  Result<DeltaBatch> whole = SyntheticMovieLensDelta(one, 4, 2, 1);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(ApplyBatch(&one, whole.value(), 1).ok());

  // The same ops split in half across two sequenced batches.
  DeltaBatch first, second;
  first.sequence = 1;
  second.sequence = 2;
  const size_t half = whole.value().ops.size() / 2;
  for (size_t i = 0; i < whole.value().ops.size(); ++i) {
    (i < half ? first : second).ops.push_back(whole.value().ops[i]);
  }
  ASSERT_TRUE(ApplyBatch(&two, first, 1).ok());
  ASSERT_TRUE(ApplyBatch(&two, second, 2).ok());

  EXPECT_EQ(one.provenance->Size(), two.provenance->Size());
  EXPECT_EQ(one.provenance->ToString(*one.registry),
            two.provenance->ToString(*two.registry));
  EXPECT_EQ(one.registry->size(), two.registry->size());
}

TEST(SyntheticDeltaTest, WikipediaAndDdpBuildersApplyCleanly) {
  WikipediaConfig wiki_config;
  wiki_config.num_users = 8;
  wiki_config.num_pages = 6;
  Dataset wiki = WikipediaGenerator::Generate(wiki_config);
  Result<DeltaBatch> wiki_delta = SyntheticWikipediaDelta(wiki, 2, 3, 1);
  ASSERT_TRUE(wiki_delta.ok()) << wiki_delta.status().ToString();
  Result<ApplyReceipt> wiki_receipt = ApplyBatch(&wiki, wiki_delta.value(), 1);
  ASSERT_TRUE(wiki_receipt.ok()) << wiki_receipt.status().ToString();
  EXPECT_EQ(wiki_receipt.value().annotations_added, 2);
  EXPECT_EQ(wiki_receipt.value().terms_added, 6);

  DdpConfig ddp_config;
  ddp_config.num_executions = 6;
  Dataset ddp = DdpGenerator::Generate(ddp_config);
  const int64_t ddp_before = ddp.provenance->Size();
  Result<DeltaBatch> ddp_delta = SyntheticDdpDelta(ddp, 2, 3, 1);
  ASSERT_TRUE(ddp_delta.ok()) << ddp_delta.status().ToString();
  Result<ApplyReceipt> ddp_receipt = ApplyBatch(&ddp, ddp_delta.value(), 1);
  ASSERT_TRUE(ddp_receipt.ok()) << ddp_receipt.status().ToString();
  EXPECT_EQ(ddp_receipt.value().annotations_added, 2);
  EXPECT_GT(ddp_receipt.value().expression_size, ddp_before);
}

}  // namespace
}  // namespace ingest
}  // namespace prox
