/// End-to-end ingest over a real loopback socket: POST /v1/ingest behind
/// Router + SummaryCache + HttpServer. Covers delta-aware cache
/// invalidation (miss → hit → ingest → miss → hit), fingerprint chaining
/// on /healthz, the in-call resummarize directive, typed sequence errors
/// over the wire, and summarize/ingest races. Carries the `tsan` CTest
/// label (tests/CMakeLists.txt).

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "ingest/delta.h"
#include "ingest/synthetic.h"
#include "engine/engine.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

namespace prox {
namespace serve {
namespace {

constexpr char kSummarizeBody[] = "{\"w_dist\":0.7,\"max_steps\":5}";

MovieLensConfig DatasetConfig() {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  config.seed = 7;
  return config;
}

/// One running server over a fresh small dataset; ephemeral port.
class LoopbackServer {
 public:
  LoopbackServer()
      : engine_(engine::Engine::FromDataset(
            MovieLensGenerator::Generate(DatasetConfig()), EngineOptions())),
        router_(engine_.get()) {
    HttpServer::Options options;
    options.port = 0;
    options.threads = 4;
    options.read_timeout_ms = 2000;
    server_ = std::make_unique<HttpServer>(
        std::move(options),
        [this](const HttpRequest& request) { return router_.Handle(request); });
    Status status = server_->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  int port() const { return server_->port(); }
  engine::Engine& engine() { return *engine_; }

  Result<ClientResponse> Post(const std::string& target,
                              const std::string& body) {
    return Fetch("127.0.0.1", port(), "POST", target, body,
                 /*timeout_ms=*/30000);
  }
  Result<ClientResponse> Get(const std::string& target) {
    return Fetch("127.0.0.1", port(), "GET", target);
  }

 private:
  static engine::Engine::Options EngineOptions() {
    engine::Engine::Options options;
    options.cache.max_bytes = 4 * 1024 * 1024;
    return options;
  }

  std::unique_ptr<engine::Engine> engine_;
  Router router_;
  std::unique_ptr<HttpServer> server_;
};

/// A delta batch valid against the fixture's dataset, as a JSON body.
/// Built from an identically generated twin so the test never reaches
/// into the live session.
std::string DeltaBody(uint64_t sequence, int new_users = 2,
                      const char* extra_key = nullptr) {
  Dataset probe = MovieLensGenerator::Generate(DatasetConfig());
  // Earlier batches must be present before later ones can be derived.
  for (uint64_t s = 1; s < sequence; ++s) {
    Result<ingest::DeltaBatch> prior =
        ingest::SyntheticMovieLensDelta(probe, 2, 2, s);
    EXPECT_TRUE(prior.ok());
    EXPECT_TRUE(ingest::ApplyBatch(&probe, prior.value(), s).ok());
  }
  Result<ingest::DeltaBatch> batch =
      ingest::SyntheticMovieLensDelta(probe, new_users, 2, sequence);
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  JsonValue doc = ingest::DeltaBatchToJson(batch.value());
  if (extra_key != nullptr) doc.Set(extra_key, JsonValue::Bool(true));
  return WriteJson(doc);
}

std::string HealthzFingerprint(LoopbackServer& fixture) {
  auto health = fixture.Get("/healthz");
  EXPECT_TRUE(health.ok());
  auto doc = ParseJson(health.value().body);
  EXPECT_TRUE(doc.ok());
  const JsonValue* fingerprint = doc.value().Find("dataset_fingerprint");
  EXPECT_NE(fingerprint, nullptr);
  return fingerprint->string_value();
}

TEST(IngestLoopbackTest, IngestInvalidatesCacheAndChainsFingerprint) {
  LoopbackServer fixture;
  const std::string fingerprint_before = HealthzFingerprint(fixture);

  // Prime the cache: miss, then hit.
  auto cold = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold.value().status, 200) << cold.value().body;
  EXPECT_EQ(cold.value().Header("x-prox-cache"), "miss");
  auto warm = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.value().Header("x-prox-cache"), "hit");

  // Ingest: the receipt carries the chained fingerprint, and /healthz
  // agrees.
  auto ingested = fixture.Post("/v1/ingest", DeltaBody(1));
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  ASSERT_EQ(ingested.value().status, 200) << ingested.value().body;
  auto receipt = ParseJson(ingested.value().body);
  ASSERT_TRUE(receipt.ok());
  const JsonValue* new_fingerprint = receipt.value().Find("fingerprint");
  ASSERT_NE(new_fingerprint, nullptr);
  EXPECT_NE(new_fingerprint->string_value(), fingerprint_before);
  EXPECT_EQ(HealthzFingerprint(fixture), new_fingerprint->string_value());
  const JsonValue* terms_added = receipt.value().Find("terms_added");
  ASSERT_NE(terms_added, nullptr);
  EXPECT_GT(terms_added->int_value(), 0);

  // Same knobs again: the old entry is unreachable under the chained
  // fingerprint — miss, then hit, and the body reflects the grown data.
  auto after = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().status, 200);
  EXPECT_EQ(after.value().Header("x-prox-cache"), "miss");
  EXPECT_NE(after.value().body, cold.value().body);
  auto after_hit = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(after_hit.ok());
  EXPECT_EQ(after_hit.value().Header("x-prox-cache"), "hit");
  EXPECT_EQ(after_hit.value().body, after.value().body);
}

TEST(IngestLoopbackTest, SequenceGapsAndBadBatchesSurfaceTyped) {
  LoopbackServer fixture;
  // Wrong sequence: FailedPrecondition → 409, typed kind in the message.
  auto gap = fixture.Post("/v1/ingest", DeltaBody(5));
  ASSERT_TRUE(gap.ok());
  EXPECT_EQ(gap.value().status, 409) << gap.value().body;
  EXPECT_NE(gap.value().body.find("kSequence"), std::string::npos);

  // Unknown top-level key → 400.
  auto unknown = fixture.Post("/v1/ingest", DeltaBody(1, 2, "surprise"));
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown.value().status, 400);

  // Malformed JSON → 400; GET → 405.
  auto garbage = fixture.Post("/v1/ingest", "{nope");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage.value().status, 400);
  auto wrong_method = fixture.Get("/v1/ingest");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);

  // Nothing above touched the dataset: sequence 1 still applies cleanly.
  auto ok = fixture.Post("/v1/ingest", DeltaBody(1));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().status, 200) << ok.value().body;
}

TEST(IngestLoopbackTest, ResummarizeDirectivePrimesTheCache) {
  LoopbackServer fixture;
  // First summary (through the normal route) so the ingest resummarize
  // has a warm seed.
  ASSERT_EQ(fixture.Post("/v1/summarize", "{}").value().status, 200);

  JsonValue body_doc = ParseJson(DeltaBody(1)).MoveValue();
  body_doc.Set("resummarize", JsonValue::Bool(true));
  auto ingested = fixture.Post("/v1/ingest", WriteJson(body_doc));
  ASSERT_TRUE(ingested.ok());
  ASSERT_EQ(ingested.value().status, 200) << ingested.value().body;
  auto receipt = ParseJson(ingested.value().body);
  ASSERT_TRUE(receipt.ok());
  const JsonValue* resummarize = receipt.value().Find("resummarize");
  ASSERT_NE(resummarize, nullptr);
  const JsonValue* warm = resummarize->Find("warm");
  ASSERT_NE(warm, nullptr);
  EXPECT_TRUE(warm->bool_value());
  const JsonValue* replayed = resummarize->Find("replayed_merges");
  ASSERT_NE(replayed, nullptr);
  EXPECT_GT(replayed->int_value(), 0);

  // The directive used default knobs; a default-knob summarize now hits
  // the cache entry the ingest call primed.
  auto hit = fixture.Post("/v1/summarize", "{}");
  ASSERT_TRUE(hit.ok());
  ASSERT_EQ(hit.value().status, 200);
  EXPECT_EQ(hit.value().Header("x-prox-cache"), "hit");
}

TEST(IngestLoopbackTest, ConcurrentSummarizeAndIngestStaySound) {
  LoopbackServer fixture;
  ASSERT_EQ(fixture.Post("/v1/summarize", kSummarizeBody).value().status,
            200);

  // One writer streams sequenced batches while readers hammer summarize
  // and healthz. Readers must only ever see 200s; the writer must see
  // 200s (every batch is pre-sequenced against the twin).
  std::thread writer([&fixture] {
    for (uint64_t sequence = 1; sequence <= 3; ++sequence) {
      auto response = fixture.Post("/v1/ingest", DeltaBody(sequence));
      EXPECT_TRUE(response.ok());
      EXPECT_EQ(response.value().status, 200) << response.value().body;
    }
  });
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&fixture] {
      for (int j = 0; j < 6; ++j) {
        auto summary = fixture.Post("/v1/summarize", kSummarizeBody);
        EXPECT_TRUE(summary.ok());
        EXPECT_EQ(summary.value().status, 200) << summary.value().body;
        auto health = fixture.Get("/healthz");
        EXPECT_TRUE(health.ok());
        EXPECT_EQ(health.value().status, 200);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  // The final state is the fully grown dataset.
  EXPECT_EQ(fixture.engine().next_ingest_sequence(), 4u);
}

}  // namespace
}  // namespace serve
}  // namespace prox
