/// Replay determinism: the same delta stream applied to fresh sessions
/// always yields byte-identical canonical summary JSON — across worker
/// thread counts {1, 8}, across batch splits, and against a dataset grown
/// by ApplyBatch directly (the "batch-built" twin the ingest path must
/// match byte for byte). Re-run with PROX_SIMD=0 by the *_simd_off CTest
/// registration to pin the scalar tier to the same bytes.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "ingest/delta.h"
#include "ingest/synthetic.h"
#include "engine/codec.h"
#include "service/session.h"

namespace prox {
namespace ingest {
namespace {

Dataset MovieLens() {
  MovieLensConfig config;
  config.num_users = 14;
  config.num_movies = 6;
  config.seed = 5;
  return MovieLensGenerator::Generate(config);
}

SummarizationRequest Request(int threads) {
  SummarizationRequest request;
  request.w_dist = 0.6;
  request.w_size = 0.4;
  request.max_steps = 12;
  request.threads = threads;
  return request;
}

std::string CanonicalSummaryJson(ProxSession& session) {
  ProxSession::LockedView view = session.Lock();
  return WriteJson(engine::SummaryOutcomeToJson(
      *view.outcome(), *view.dataset().registry));
}

/// Fresh session, ingest every batch through the session, summarize once.
std::string SummarizeAfterIngest(const std::vector<DeltaBatch>& batches,
                                 int threads) {
  ProxSession session(MovieLens());
  session.SelectAll();
  for (const DeltaBatch& batch : batches) {
    Result<ApplyReceipt> receipt = session.Ingest(batch);
    EXPECT_TRUE(receipt.ok()) << receipt.status().ToString();
  }
  EXPECT_TRUE(session.Summarize(Request(threads)).ok());
  return CanonicalSummaryJson(session);
}

std::vector<DeltaBatch> TwoBatchStream() {
  Dataset probe = MovieLens();
  std::vector<DeltaBatch> batches;
  Result<DeltaBatch> first = SyntheticMovieLensDelta(probe, 2, 2, 1);
  EXPECT_TRUE(first.ok()) << first.status().ToString();
  // The second batch references annotations the first introduced, so it
  // must be built against the grown dataset.
  EXPECT_TRUE(ApplyBatch(&probe, first.value(), 1).ok());
  Result<DeltaBatch> second = SyntheticMovieLensDelta(probe, 1, 3, 2);
  EXPECT_TRUE(second.ok()) << second.status().ToString();
  batches.push_back(first.value());
  batches.push_back(second.value());
  return batches;
}

TEST(ReplayDeterminismTest, ThreadCountsProduceIdenticalBytes) {
  const std::vector<DeltaBatch> batches = TwoBatchStream();
  const std::string serial = SummarizeAfterIngest(batches, 1);
  const std::string parallel = SummarizeAfterIngest(batches, 8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ReplayDeterminismTest, IngestPathMatchesBatchBuiltDataset) {
  const std::vector<DeltaBatch> batches = TwoBatchStream();
  const std::string streamed = SummarizeAfterIngest(batches, 1);

  // Batch-built twin: grow the dataset before the session exists, so no
  // ingest code runs on the serving path at all.
  Dataset direct = MovieLens();
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_TRUE(ApplyBatch(&direct, batches[i], i + 1).ok());
  }
  ProxSession session(std::move(direct));
  session.SelectAll();
  ASSERT_TRUE(session.Summarize(Request(1)).ok());
  EXPECT_EQ(streamed, CanonicalSummaryJson(session));
}

TEST(ReplayDeterminismTest, SplitAndWholeStreamsAgree) {
  // One big batch vs the same ops as two sequenced batches.
  Dataset probe = MovieLens();
  Result<DeltaBatch> whole = SyntheticMovieLensDelta(probe, 4, 2, 1);
  ASSERT_TRUE(whole.ok());

  DeltaBatch first, second;
  first.sequence = 1;
  second.sequence = 2;
  const size_t half = whole.value().ops.size() / 2;
  for (size_t i = 0; i < whole.value().ops.size(); ++i) {
    (i < half ? first : second).ops.push_back(whole.value().ops[i]);
  }

  const std::string one = SummarizeAfterIngest({whole.value()}, 1);
  const std::string two = SummarizeAfterIngest({first, second}, 1);
  EXPECT_EQ(one, two);
}

TEST(ReplayDeterminismTest, WikipediaStreamIsThreadCountInvariant) {
  WikipediaConfig config;
  config.num_users = 10;
  config.num_pages = 8;
  Dataset probe = WikipediaGenerator::Generate(config);
  Result<DeltaBatch> delta = SyntheticWikipediaDelta(probe, 2, 3, 1);
  ASSERT_TRUE(delta.ok());

  auto run = [&](int threads) {
    Dataset dataset = WikipediaGenerator::Generate(config);
    ProxSession session(std::move(dataset));
    session.SelectAll();
    EXPECT_TRUE(session.Ingest(delta.value()).ok());
    EXPECT_TRUE(session.Summarize(Request(threads)).ok());
    return CanonicalSummaryJson(session);
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace ingest
}  // namespace prox
