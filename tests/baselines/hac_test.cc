#include "baselines/hac.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace prox {
namespace {

std::vector<std::vector<double>> RandomMatrix(Rng* rng, int n) {
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      m[i][j] = m[j][i] = 0.1 + rng->UniformDouble();
    }
  }
  return m;
}

/// Brute-force linkage dissimilarity between two member sets for the
/// combinatorial criteria, from the raw pairwise matrix.
double BruteLinkage(Linkage linkage, const std::vector<int>& a,
                    const std::vector<int>& b,
                    const std::vector<std::vector<double>>& raw) {
  double best = linkage == Linkage::kComplete
                    ? 0.0
                    : std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (int i : a) {
    for (int j : b) {
      double d = raw[i][j];
      sum += d;
      if (linkage == Linkage::kSingle) best = std::min(best, d);
      if (linkage == Linkage::kComplete) best = std::max(best, d);
    }
  }
  if (linkage == Linkage::kAverage) {
    return sum / (a.size() * b.size());
  }
  return best;
}

TEST(HacTest, MergesClosestPairFirst) {
  std::vector<std::vector<double>> m = {
      {0.0, 0.1, 0.9}, {0.1, 0.0, 0.8}, {0.9, 0.8, 0.0}};
  HacClusterer hac(m, Linkage::kSingle);
  auto step = hac.MergeNext();
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->cluster_a, 0);
  EXPECT_EQ(step->cluster_b, 1);
  EXPECT_DOUBLE_EQ(step->dissimilarity, 0.1);
  EXPECT_EQ(step->members, (std::vector<int>{0, 1}));
}

TEST(HacTest, RunsToSingleCluster) {
  Rng rng(3);
  HacClusterer hac(RandomMatrix(&rng, 6), Linkage::kAverage);
  int merges = 0;
  while (hac.MergeNext().has_value()) ++merges;
  EXPECT_EQ(merges, 5);
  EXPECT_EQ(hac.num_active(), 1);
}

TEST(HacTest, ConstraintBlocksForbiddenMerges) {
  // Items 0 and 1 are closest but in different "camps": the constraint
  // forbids merging across camps {0, 2} vs {1, 3}.
  std::vector<std::vector<double>> m = {
      {0.0, 0.1, 0.5, 0.9},
      {0.1, 0.0, 0.9, 0.5},
      {0.5, 0.9, 0.0, 0.7},
      {0.9, 0.5, 0.7, 0.0}};
  HacClusterer hac(m, Linkage::kSingle);
  auto camp = [](int item) { return item % 2; };
  hac.set_constraint([&camp](const std::vector<int>& a,
                             const std::vector<int>& b) {
    return camp(a.front()) == camp(b.front());
  });
  auto step = hac.MergeNext();
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->members, (std::vector<int>{0, 2}));  // 0.5, not 0.1
  step = hac.MergeNext();
  ASSERT_TRUE(step.has_value());
  EXPECT_EQ(step->members, (std::vector<int>{1, 3}));
  // The two camp clusters may never merge.
  EXPECT_FALSE(hac.MergeNext().has_value());
  EXPECT_EQ(hac.num_active(), 2);
}

TEST(HacTest, PeekDoesNotMutate) {
  Rng rng(5);
  HacClusterer hac(RandomMatrix(&rng, 5), Linkage::kComplete);
  auto p1 = hac.PeekNext();
  auto p2 = hac.PeekNext();
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p1->first, p2->first);
  EXPECT_EQ(hac.num_active(), 5);
}

class LinkageAgreementTest
    : public ::testing::TestWithParam<std::tuple<Linkage, int>> {};

TEST_P(LinkageAgreementTest, LanceWilliamsMatchesBruteForce) {
  // For single / complete / average linkage, the Lance-Williams recurrence
  // must agree with the from-scratch set-based definition at every merge.
  const auto [linkage, seed] = GetParam();
  Rng rng(seed);
  const int n = 7;
  auto raw = RandomMatrix(&rng, n);
  HacClusterer hac(raw, linkage);
  for (;;) {
    auto peek = hac.PeekNext();
    if (!peek.has_value()) break;
    auto [pair, d] = *peek;
    double expected = BruteLinkage(linkage, hac.MembersOf(pair.first),
                                   hac.MembersOf(pair.second), raw);
    EXPECT_NEAR(d, expected, 1e-9);
    // The merged pair must also be the global minimum over active pairs.
    for (int a : hac.active()) {
      for (int b : hac.active()) {
        if (a >= b) continue;
        EXPECT_GE(BruteLinkage(linkage, hac.MembersOf(a), hac.MembersOf(b),
                               raw),
                  d - 1e-9);
      }
    }
    hac.MergeNext();
  }
}

INSTANTIATE_TEST_SUITE_P(
    CombinatorialLinkages, LinkageAgreementTest,
    ::testing::Combine(::testing::Values(Linkage::kSingle, Linkage::kComplete,
                                         Linkage::kAverage),
                       ::testing::Range(0, 4)));

TEST(HacTest, WardPrefersSmallTightClusters) {
  // Ward on a clear two-cluster geometry (encoded as squared euclidean
  // dissimilarities of points 0, 0.1, 10, 10.1 on a line).
  std::vector<double> pts = {0.0, 0.1, 10.0, 10.1};
  std::vector<std::vector<double>> m(4, std::vector<double>(4, 0.0));
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      m[i][j] = (pts[i] - pts[j]) * (pts[i] - pts[j]);
    }
  }
  HacClusterer hac(m, Linkage::kWard);
  auto s1 = hac.MergeNext();
  auto s2 = hac.MergeNext();
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  // The two tight pairs merge first (either order under fp ties).
  std::set<std::vector<int>> first_two = {s1->members, s2->members};
  EXPECT_TRUE(first_two.count({0, 1}));
  EXPECT_TRUE(first_two.count({2, 3}));
}

class AllLinkagesSmokeTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(AllLinkagesSmokeTest, CompletesOnRandomInput) {
  Rng rng(42);
  HacClusterer hac(RandomMatrix(&rng, 8), GetParam());
  int merges = 0;
  double last = -1.0;
  while (auto step = hac.MergeNext()) {
    ++merges;
    // For single/complete/average/weighted/ward the merge sequence is
    // non-decreasing in dissimilarity (reducibility); centroid and median
    // may invert, so only check non-negativity there.
    if (GetParam() != Linkage::kCentroid && GetParam() != Linkage::kMedian) {
      EXPECT_GE(step->dissimilarity, last - 1e-9);
      last = step->dissimilarity;
    }
    EXPECT_GE(step->dissimilarity, 0.0 - 1e-9);
  }
  EXPECT_EQ(merges, 7);
}

INSTANTIATE_TEST_SUITE_P(
    Linkages, AllLinkagesSmokeTest,
    ::testing::Values(Linkage::kSingle, Linkage::kComplete, Linkage::kAverage,
                      Linkage::kWeighted, Linkage::kCentroid,
                      Linkage::kMedian, Linkage::kWard));

TEST(HacTest, LinkageNames) {
  EXPECT_STREQ(LinkageToString(Linkage::kSingle), "single");
  EXPECT_STREQ(LinkageToString(Linkage::kWard), "ward");
  EXPECT_STREQ(LinkageToString(Linkage::kWeighted), "weighted");
}

}  // namespace
}  // namespace prox
