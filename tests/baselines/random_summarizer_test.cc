#include "baselines/random_summarizer.h"

#include <gtest/gtest.h>

#include "summarize/valuation_class.h"
#include "summarize/val_func.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

struct RandomHarness {
  MovieFixture fx;
  std::vector<Valuation> valuations;
  EuclideanValFunc vf;
  std::unique_ptr<EnumeratedDistance> oracle;

  RandomHarness() {
    CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
    valuations = cls.Generate(*fx.p0, fx.ctx);
    oracle = std::make_unique<EnumeratedDistance>(fx.p0.get(), &fx.registry,
                                                  &vf, valuations);
  }

  Result<SummaryOutcome> Run(RandomSummarizerOptions options) {
    RandomSummarizer rs(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints,
                        oracle.get(), options);
    return rs.Run();
  }
};

TEST(RandomSummarizerTest, PicksOnlyConstraintSatisfyingPairs) {
  RandomHarness h;
  RandomSummarizerOptions options;
  options.max_steps = 10;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  for (const StepRecord& step : outcome.value().steps) {
    // Every committed merge carries a constraint-derived name.
    EXPECT_TRUE(step.summary_name == "Gender:F" ||
                step.summary_name == "Role:Audience")
        << step.summary_name;
  }
  EXPECT_GE(outcome.value().steps.size(), 1u);
}

TEST(RandomSummarizerTest, DeterministicForFixedSeed) {
  RandomHarness h1, h2;
  RandomSummarizerOptions options;
  options.seed = 777;
  options.max_steps = 5;
  auto a = h1.Run(options);
  auto b = h2.Run(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().steps.size(), b.value().steps.size());
  for (size_t i = 0; i < a.value().steps.size(); ++i) {
    EXPECT_EQ(a.value().steps[i].summary_name,
              b.value().steps[i].summary_name);
  }
}

TEST(RandomSummarizerTest, DifferentSeedsCanDiverge) {
  // With two candidates available at step 1, some pair of seeds picks
  // differently.
  bool diverged = false;
  std::string first_choice;
  for (uint64_t seed = 0; seed < 16 && !diverged; ++seed) {
    RandomHarness h;
    RandomSummarizerOptions options;
    options.seed = seed;
    options.max_steps = 1;
    auto outcome = h.Run(options);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome.value().steps.size(), 1u);
    if (first_choice.empty()) {
      first_choice = outcome.value().steps[0].summary_name;
    } else if (outcome.value().steps[0].summary_name != first_choice) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(RandomSummarizerTest, StopsAtTargetSize) {
  RandomHarness h;
  RandomSummarizerOptions options;
  options.target_size = 7;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().final_size, 7);
  EXPECT_EQ(outcome.value().steps.size(), 1u);
}

TEST(RandomSummarizerTest, RollsBackOnTargetDistOvershoot) {
  RandomHarness h;
  h.fx.constraints.SetRule(h.fx.user_domain,
                           std::make_unique<SharedAttributeRule>(
                               std::vector<AttrId>{0}));  // Gender only
  RandomSummarizerOptions options;
  options.target_dist = 1e-9;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().rolled_back);
  EXPECT_EQ(outcome.value().final_size, h.fx.p0->Size());
}

}  // namespace
}  // namespace prox
