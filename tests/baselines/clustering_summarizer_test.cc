#include "baselines/clustering_summarizer.h"

#include <gtest/gtest.h>

#include "summarize/valuation_class.h"
#include "summarize/val_func.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

struct ClusteringHarness {
  MovieFixture fx;
  std::vector<Valuation> valuations;
  EuclideanValFunc vf;
  std::unique_ptr<EnumeratedDistance> oracle;
  std::map<AnnotationId, RatingVector> features;

  ClusteringHarness() {
    CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
    valuations = cls.Generate(*fx.p0, fx.ctx);
    oracle = std::make_unique<EnumeratedDistance>(fx.p0.get(), &fx.registry,
                                                  &vf, valuations);
    features[fx.u1] = {{fx.match_point, 3.0}};
    features[fx.u2] = {{fx.match_point, 5.0}, {fx.blue_jasmine, 4.0}};
    features[fx.u3] = {{fx.match_point, 3.0}};
  }

  Result<SummaryOutcome> Run(ClusteringOptions options) {
    ClusteringSummarizer cs(fx.p0.get(), &fx.registry, &fx.ctx,
                            &fx.constraints, oracle.get(), options);
    cs.SetFeatures(fx.user_domain, features);
    return cs.Run();
  }
};

TEST(ClusteringSummarizerTest, RequiresFeatures) {
  ClusteringHarness h;
  ClusteringSummarizer cs(h.fx.p0.get(), &h.fx.registry, &h.fx.ctx,
                          &h.fx.constraints, h.oracle.get(),
                          ClusteringOptions{});
  EXPECT_EQ(cs.Run().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ClusteringSummarizerTest, MergesRespectingConstraints) {
  ClusteringHarness h;
  ClusteringOptions options;
  options.max_steps = 5;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  // The constraint-satisfying pairs are {U1,U2} and {U1,U3}; clustering
  // performs at most one merge (afterwards the remaining pair's member
  // union violates the constraints).
  EXPECT_EQ(outcome.value().steps.size(), 1u);
  const StepRecord& step = outcome.value().steps[0];
  EXPECT_EQ(step.merged_roots.size(), 2u);
  EXPECT_LT(outcome.value().final_size, h.fx.p0->Size());
}

TEST(ClusteringSummarizerTest, StopsAtTargetSize) {
  ClusteringHarness h;
  ClusteringOptions options;
  options.target_size = 100;  // already met
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().steps.empty());
}

TEST(ClusteringSummarizerTest, RollsBackOnTargetDistOvershoot) {
  ClusteringHarness h;
  // Force the Gender-only constraint so the only merge has positive
  // distance, then bound the distance at ~0.
  h.fx.constraints.SetRule(h.fx.user_domain,
                           std::make_unique<SharedAttributeRule>(
                               std::vector<AttrId>{0}));
  ClusteringOptions options;
  options.target_dist = 1e-9;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().rolled_back);
  EXPECT_EQ(outcome.value().final_size, h.fx.p0->Size());
}

TEST(ClusteringSummarizerTest, SummaryNamesComeFromConstraints) {
  ClusteringHarness h;
  ClusteringOptions options;
  options.max_steps = 1;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().steps.size(), 1u);
  const std::string& name = outcome.value().steps[0].summary_name;
  EXPECT_TRUE(name == "Gender:F" || name == "Role:Audience") << name;
}

class LinkageOptionTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageOptionTest, AllLinkagesProduceAValidSummary) {
  ClusteringHarness h;
  ClusteringOptions options;
  options.linkage = GetParam();
  options.max_steps = 3;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().final_size, h.fx.p0->Size());
  EXPECT_GE(outcome.value().final_distance, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Linkages, LinkageOptionTest,
    ::testing::Values(Linkage::kSingle, Linkage::kComplete, Linkage::kAverage,
                      Linkage::kWeighted, Linkage::kCentroid,
                      Linkage::kMedian, Linkage::kWard));

}  // namespace
}  // namespace prox
