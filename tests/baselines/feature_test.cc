#include "baselines/feature.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(PearsonTest, PerfectPositiveCorrelation) {
  RatingVector a = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  RatingVector b = {{1, 2.0}, {2, 4.0}, {3, 6.0}};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonDissimilarity(a, b), 0.0, 1e-12);
}

TEST(PearsonTest, PerfectNegativeCorrelation) {
  RatingVector a = {{1, 1.0}, {2, 2.0}, {3, 3.0}};
  RatingVector b = {{1, 3.0}, {2, 2.0}, {3, 1.0}};
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
  EXPECT_NEAR(PearsonDissimilarity(a, b), 2.0, 1e-12);
}

TEST(PearsonTest, OnlySharedKeysCount) {
  // Shared keys {1, 2} correlate perfectly; key 9 is ignored.
  RatingVector a = {{1, 1.0}, {2, 2.0}, {9, 100.0}};
  RatingVector b = {{1, 2.0}, {2, 3.0}, {8, -50.0}};
  EXPECT_NEAR(PearsonDissimilarity(a, b), 0.0, 1e-12);
}

TEST(PearsonTest, FewerThanTwoSharedKeysIsNeutral) {
  RatingVector a = {{1, 5.0}};
  RatingVector b = {{1, 5.0}};
  EXPECT_EQ(PearsonDissimilarity(a, b), 1.0);
  EXPECT_EQ(PearsonCorrelation(a, b), 0.0);
  RatingVector c = {{2, 5.0}};
  EXPECT_EQ(PearsonDissimilarity(a, c), 1.0);
}

TEST(PearsonTest, ZeroVarianceIsNeutral) {
  RatingVector a = {{1, 3.0}, {2, 3.0}};
  RatingVector b = {{1, 1.0}, {2, 5.0}};
  EXPECT_EQ(PearsonDissimilarity(a, b), 1.0);
}

TEST(PearsonTest, SymmetricInArguments) {
  RatingVector a = {{1, 1.0}, {2, 4.0}, {3, 2.0}};
  RatingVector b = {{1, 2.0}, {2, 3.0}, {3, 5.0}};
  EXPECT_DOUBLE_EQ(PearsonDissimilarity(a, b), PearsonDissimilarity(b, a));
}

}  // namespace
}  // namespace prox
