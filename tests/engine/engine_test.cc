/// The transport-agnostic facade (docs/EMBEDDING.md): JSON handlers
/// return the exact bytes the wire has always carried (newline-terminated
/// documents, typed error mapping, cache hit/miss outcomes), the typed
/// facade hands back value snapshots, and dataset boot specs are
/// reproducible across processes.

#include "engine/engine.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "engine/codec.h"

namespace prox {
namespace engine {
namespace {

constexpr char kSummarizeBody[] = "{\"w_dist\":0.7,\"max_steps\":5}";

Dataset SmallDataset() {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  config.seed = 7;
  return MovieLensGenerator::Generate(config);
}

JsonValue MustParse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? parsed.value() : JsonValue::Null();
}

TEST(EngineTest, SummarizeMissThenHitIsByteIdentical) {
  std::unique_ptr<Engine> engine = Engine::FromDataset(SmallDataset());
  Engine::Response cold = engine->HandleSummarize(kSummarizeBody);
  ASSERT_TRUE(cold.ok()) << cold.status.ToString();
  EXPECT_EQ(cold.http_status, 200);
  EXPECT_EQ(cold.cache, Engine::Response::CacheOutcome::kMiss);
  ASSERT_FALSE(cold.body.empty());
  EXPECT_EQ(cold.body.back(), '\n');

  Engine::Response warm = engine->HandleSummarize(kSummarizeBody);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.cache, Engine::Response::CacheOutcome::kHit);
  EXPECT_EQ(warm.body, cold.body);

  JsonValue doc = MustParse(cold.body);
  EXPECT_NE(doc.Find("final_size"), nullptr);
  EXPECT_NE(doc.Find("groups"), nullptr);
}

TEST(EngineTest, TypedErrorsRenderTheCanonicalDocument) {
  std::unique_ptr<Engine> engine = Engine::FromDataset(SmallDataset());

  Engine::Response malformed = engine->HandleSummarize("{nope");
  EXPECT_FALSE(malformed.ok());
  EXPECT_EQ(malformed.http_status, 400);
  EXPECT_EQ(malformed.cache, Engine::Response::CacheOutcome::kNone);
  JsonValue error_doc = MustParse(malformed.body);
  ASSERT_NE(error_doc.Find("error"), nullptr);
  // The body is exactly the rendered StatusToJson document.
  std::string expected = WriteJson(StatusToJson(malformed.status));
  expected.push_back('\n');
  EXPECT_EQ(malformed.body, expected);

  Engine::Response unknown_field = engine->HandleSelect("{\"bogus\":1}");
  EXPECT_EQ(unknown_field.http_status, 400);
  EXPECT_EQ(unknown_field.status.code(), StatusCode::kInvalidArgument);

  // Groups before any summarize: FailedPrecondition → 409.
  Engine::Response no_summary = engine->HandleGroups();
  EXPECT_EQ(no_summary.http_status, 409);
  EXPECT_EQ(no_summary.status.code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, SelectNarrowsTheCacheKeyAndReportsTheSelection) {
  std::unique_ptr<Engine> engine = Engine::FromDataset(SmallDataset());
  Engine::Response all = engine->HandleSelect("{\"all\":true}");
  ASSERT_TRUE(all.ok()) << all.body;
  JsonValue all_doc = MustParse(all.body);
  ASSERT_NE(all_doc.Find("selection_key"), nullptr);
  EXPECT_EQ(all_doc.Find("selection_key")->string_value(), SelectAllKey());

  Engine::Response cold_all = engine->HandleSummarize(kSummarizeBody);
  ASSERT_TRUE(cold_all.ok());
  EXPECT_EQ(cold_all.cache, Engine::Response::CacheOutcome::kMiss);

  // A different selection must not hit the "all" entry.
  // Every generated title carries its "(year)" suffix, so this matches a
  // non-empty selection while keying differently from "all".
  Engine::Response narrowed =
      engine->HandleSelect("{\"title_substring\":\"(\"}");
  ASSERT_TRUE(narrowed.ok()) << narrowed.body;
  Engine::Response cold_narrow = engine->HandleSummarize(kSummarizeBody);
  ASSERT_TRUE(cold_narrow.ok());
  EXPECT_EQ(cold_narrow.cache, Engine::Response::CacheOutcome::kMiss);

  // Re-selecting all restores the original entry: hit, same bytes.
  ASSERT_TRUE(engine->HandleSelect("{\"all\":true}").ok());
  Engine::Response warm_all = engine->HandleSummarize(kSummarizeBody);
  ASSERT_TRUE(warm_all.ok());
  EXPECT_EQ(warm_all.cache, Engine::Response::CacheOutcome::kHit);
  EXPECT_EQ(warm_all.body, cold_all.body);
}

TEST(EngineTest, TypedFacadeMatchesTheJsonApiBytes) {
  std::unique_ptr<Engine> json_engine = Engine::FromDataset(SmallDataset());
  std::unique_ptr<Engine> typed_engine = Engine::FromDataset(SmallDataset());

  Engine::Response via_json = json_engine->HandleSummarize(kSummarizeBody);
  ASSERT_TRUE(via_json.ok()) << via_json.body;

  Result<SummarizationRequest> request =
      SummarizationRequestFromJson(MustParse(kSummarizeBody));
  ASSERT_TRUE(request.ok());
  Result<Engine::SummarizeOutcome> outcome =
      typed_engine->Summarize(request.value());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome.value().body, via_json.body);
  EXPECT_GT(outcome.value().final_size, 0);

  // The other typed views agree with the summarize document.
  JsonValue doc = MustParse(via_json.body);
  EXPECT_EQ(doc.Find("final_size")->int_value(),
            outcome.value().final_size);
  EXPECT_FALSE(typed_engine->DescribeGroups().empty());
  EXPECT_TRUE(typed_engine->SummaryExpression().ok());
  EXPECT_TRUE(typed_engine->SerializedSummary().ok());
  Result<Engine::StepSnapshot> step = typed_engine->SummaryAtStep(0);
  ASSERT_TRUE(step.ok()) << step.status().ToString();
  EXPECT_GT(step.value().size, 0);
}

TEST(EngineTest, StepAndSerializeBeforeSummarizeFailClosed) {
  std::unique_ptr<Engine> engine = Engine::FromDataset(SmallDataset());
  EXPECT_EQ(engine->SummaryAtStep(0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine->SerializedSummary().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine->SummaryAtStep(0).status().message(),
            "no summary computed yet");
}

TEST(EngineTest, CreateSpecsAreReproducibleAcrossEngines) {
  // Two engines booted from the same spec must agree on identity and on
  // summarize bytes — the property the C ABI round-trip relies on.
  Engine::Options options;
  options.dataset.family = DatasetSpec::Family::kMovieLens;
  Result<std::unique_ptr<Engine>> first = Engine::Create(options);
  Result<std::unique_ptr<Engine>> second = Engine::Create(options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value()->fingerprint(), second.value()->fingerprint());
  Engine::Response a = first.value()->HandleSummarize(kSummarizeBody);
  Engine::Response b = second.value()->HandleSummarize(kSummarizeBody);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.body, b.body);
}

TEST(EngineTest, OptionsFromJsonParsesAndRejects) {
  Result<Engine::Options> empty = Engine::OptionsFromJson("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty.value().dataset.family, DatasetSpec::Family::kMovieLens);

  Result<Engine::Options> full = Engine::OptionsFromJson(
      "{\"dataset\":{\"family\":\"wikipedia\",\"users\":6,\"groups\":4,"
      "\"seed\":3},\"cache_mb\":8}");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full.value().dataset.family, DatasetSpec::Family::kWikipedia);
  EXPECT_EQ(full.value().dataset.num_users, 6);
  EXPECT_TRUE(full.value().dataset.seed_set);
  EXPECT_EQ(full.value().cache.max_bytes, 8u * 1024 * 1024);

  EXPECT_FALSE(Engine::OptionsFromJson("{\"oops\":1}").ok());
  EXPECT_FALSE(
      Engine::OptionsFromJson("{\"dataset\":{\"family\":\"netflix\"}}").ok());
  EXPECT_FALSE(Engine::OptionsFromJson("[1,2]").ok());
  EXPECT_FALSE(Engine::OptionsFromJson("{nope").ok());

  // A snapshot path that does not exist fails closed at Create.
  Result<Engine::Options> missing = Engine::OptionsFromJson(
      "{\"dataset\":{\"snapshot\":\"/nonexistent/prox.snap\"}}");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(Engine::Create(missing.value()).ok());
}

}  // namespace
}  // namespace engine
}  // namespace prox
