#include "engine/summary_cache.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace prox {
namespace engine {
namespace {

std::shared_ptr<const std::string> Body(const std::string& text) {
  return std::make_shared<const std::string>(text);
}

SummaryCache::Options SingleShard(size_t max_bytes) {
  SummaryCache::Options options;
  options.shards = 1;  // deterministic LRU order for eviction tests
  options.max_bytes = max_bytes;
  return options;
}

TEST(SummaryCacheTest, MissThenHit) {
  SummaryCache cache(SingleShard(1024));
  EXPECT_EQ(cache.Get("k"), nullptr);
  cache.Put("k", Body("value"));
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "value");

  SummaryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(SummaryCacheTest, HitReturnsSameBytesObject) {
  SummaryCache cache(SingleShard(1024));
  auto body = Body("exact bytes");
  cache.Put("k", body);
  // The cache hands out the same immutable buffer, not a copy — the
  // byte-identical contract.
  EXPECT_EQ(cache.Get("k").get(), body.get());
}

TEST(SummaryCacheTest, ReplaceUpdatesValueAndBytes) {
  SummaryCache cache(SingleShard(1024));
  cache.Put("k", Body("short"));
  size_t bytes_before = cache.stats().bytes;
  cache.Put("k", Body("a considerably longer replacement body"));
  SummaryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, bytes_before);
  EXPECT_EQ(*cache.Get("k"), "a considerably longer replacement body");
}

TEST(SummaryCacheTest, EvictsLeastRecentlyUsed) {
  // Each entry ~= key(2) + 100 value bytes; budget fits two entries.
  SummaryCache cache(SingleShard(260));
  cache.Put("k1", Body(std::string(100, 'a')));
  cache.Put("k2", Body(std::string(100, 'b')));
  ASSERT_NE(cache.Get("k1"), nullptr);  // refresh k1: k2 is now LRU
  cache.Put("k3", Body(std::string(100, 'c')));

  EXPECT_NE(cache.Get("k1"), nullptr);
  EXPECT_EQ(cache.Get("k2"), nullptr);  // evicted
  EXPECT_NE(cache.Get("k3"), nullptr);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(SummaryCacheTest, BudgetIsEnforced) {
  SummaryCache cache(SingleShard(300));
  for (int i = 0; i < 50; ++i) {
    cache.Put("key" + std::to_string(i), Body(std::string(64, 'x')));
  }
  SummaryCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, 300u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(SummaryCacheTest, EntryLargerThanBudgetNotCached) {
  SummaryCache cache(SingleShard(64));
  cache.Put("big", Body(std::string(1000, 'x')));
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SummaryCacheTest, ShardsPartitionTheBudget) {
  SummaryCache::Options options;
  options.shards = 4;
  options.max_bytes = 4096;
  SummaryCache cache(options);
  for (int i = 0; i < 200; ++i) {
    cache.Put("key-" + std::to_string(i), Body(std::string(32, 'x')));
  }
  SummaryCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, 4096u);
  EXPECT_GT(stats.entries, 4u);  // all shards hold something
}

TEST(SummaryCacheTest, ConcurrentMixedTrafficIsSafe) {
  SummaryCache::Options options;
  options.shards = 8;
  options.max_bytes = 16 * 1024;
  SummaryCache cache(options);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        std::string key = "key-" + std::to_string((t * 31 + i) % 64);
        if (i % 3 == 0) {
          cache.Put(key, Body(std::string(48, static_cast<char>('a' + t))));
        } else {
          auto value = cache.Get(key);
          if (value != nullptr) {
            EXPECT_EQ(value->size(), 48u);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SummaryCache::Stats stats = cache.stats();
  EXPECT_LE(stats.bytes, 16u * 1024u);
  // 333 Gets per thread (i % 3 != 0), every one a hit or a miss.
  EXPECT_EQ(stats.hits + stats.misses, 8u * 333u);
}

}  // namespace
}  // namespace engine
}  // namespace prox
