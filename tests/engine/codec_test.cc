#include "engine/codec.h"

#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "service/session.h"

namespace prox {
namespace engine {
namespace {

JsonValue MustParse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.ok() ? parsed.value() : JsonValue::Null();
}

Dataset TestDataset() {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  config.seed = 7;
  return MovieLensGenerator::Generate(config);
}

TEST(WireTest, FingerprintIsStableAndContentSensitive) {
  Dataset a = TestDataset();
  Dataset b = TestDataset();
  EXPECT_EQ(DatasetFingerprint(a), DatasetFingerprint(b));
  EXPECT_EQ(DatasetFingerprint(a).size(), 16u);

  MovieLensConfig other;
  other.num_users = 12;
  other.num_movies = 5;
  other.seed = 8;  // different content
  Dataset c = MovieLensGenerator::Generate(other);
  EXPECT_NE(DatasetFingerprint(a), DatasetFingerprint(c));
}

TEST(WireTest, SelectionKeyCanonicalizesOrderAndCase) {
  SelectionCriteria first;
  first.titles = {"Bravo", "Alpha", "Bravo"};
  first.title_substring = "WaR";
  SelectionCriteria second;
  second.titles = {"Alpha", "Bravo"};
  second.title_substring = "war";
  EXPECT_EQ(CanonicalSelectionKey(first), CanonicalSelectionKey(second));

  SelectionCriteria third = second;
  third.year = 1999;
  EXPECT_NE(CanonicalSelectionKey(second), CanonicalSelectionKey(third));
  EXPECT_NE(CanonicalSelectionKey(second), SelectAllKey());
}

TEST(WireTest, RequestKeyIgnoresThreadsOnly) {
  SummarizationRequest base;
  SummarizationRequest threaded = base;
  threaded.threads = 8;
  // Thread count never changes results (the determinism contract), so it
  // must not fragment the cache.
  EXPECT_EQ(CanonicalRequestKey(base), CanonicalRequestKey(threaded));

  SummarizationRequest other = base;
  other.w_dist = base.w_dist + 1e-12;  // bit-exact doubles in the key
  EXPECT_NE(CanonicalRequestKey(base), CanonicalRequestKey(other));

  SummarizationRequest steps = base;
  steps.max_steps = base.max_steps + 1;
  EXPECT_NE(CanonicalRequestKey(base), CanonicalRequestKey(steps));

  EXPECT_EQ(SummaryCacheKey("fp", "all", base),
            "fp|all|" + CanonicalRequestKey(base));
}

TEST(WireTest, SelectionCriteriaFromJsonVariants) {
  bool select_all = false;
  auto all = SelectionCriteriaFromJson(MustParse("{\"all\":true}"),
                                       &select_all);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(select_all);

  auto criteria = SelectionCriteriaFromJson(
      MustParse("{\"titles\":[\"Heat\"],\"genres\":[\"Drama\"],"
                "\"year\":1995,\"title_substring\":\"he\"}"),
      &select_all);
  ASSERT_TRUE(criteria.ok());
  EXPECT_FALSE(select_all);
  EXPECT_EQ(criteria.value().titles, std::vector<std::string>{"Heat"});
  EXPECT_EQ(criteria.value().genres, std::vector<std::string>{"Drama"});
  ASSERT_TRUE(criteria.value().year.has_value());
  EXPECT_EQ(*criteria.value().year, 1995);

  auto unknown = SelectionCriteriaFromJson(MustParse("{\"movie\":\"Heat\"}"),
                                           &select_all);
  EXPECT_FALSE(unknown.ok());
  auto wrong_type = SelectionCriteriaFromJson(MustParse("{\"titles\":1}"),
                                              &select_all);
  EXPECT_FALSE(wrong_type.ok());
}

TEST(WireTest, SummarizationRequestFromJsonDefaultsAndEnums) {
  auto empty = SummarizationRequestFromJson(MustParse("{}"));
  ASSERT_TRUE(empty.ok());
  SummarizationRequest defaults;
  EXPECT_EQ(empty.value().w_dist, defaults.w_dist);
  EXPECT_EQ(empty.value().max_steps, defaults.max_steps);

  auto full = SummarizationRequestFromJson(MustParse(
      "{\"w_dist\":0.7,\"w_size\":0.3,\"target_dist\":0.5,"
      "\"target_size\":3,\"max_steps\":4,\"threads\":2,"
      "\"valuation_class\":\"cancel_single_attribute\","
      "\"val_func\":\"euclidean\"}"));
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(full.value().w_dist, 0.7);
  EXPECT_EQ(full.value().target_size, 3);
  EXPECT_EQ(full.value().valuation_class,
            SummarizationRequest::ValuationClassKind::kCancelSingleAttribute);
  EXPECT_EQ(full.value().val_func,
            SummarizationRequest::ValFuncKind::kEuclidean);

  EXPECT_FALSE(
      SummarizationRequestFromJson(MustParse("{\"val_func\":\"cosine\"}"))
          .ok());
  EXPECT_FALSE(
      SummarizationRequestFromJson(MustParse("{\"bogus\":1}")).ok());
}

TEST(WireTest, AssignmentFromJson) {
  auto assignment = AssignmentFromJson(MustParse(
      "{\"false_annotations\":[\"u3\"],"
      "\"false_attributes\":[{\"attribute\":\"Gender\",\"value\":\"M\"}]}"));
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment.value().false_annotations,
            std::vector<std::string>{"u3"});
  ASSERT_EQ(assignment.value().false_attributes.size(), 1u);
  EXPECT_EQ(assignment.value().false_attributes[0].first, "Gender");
  EXPECT_EQ(assignment.value().false_attributes[0].second, "M");

  EXPECT_FALSE(AssignmentFromJson(MustParse("{\"oops\":[]}")).ok());
}

TEST(WireTest, SummaryOutcomeSerializationIsDeterministic) {
  // Two sessions over identical datasets summarize with identical knobs:
  // the canonical serialization must be byte-identical even though each
  // run mints its own summary AnnotationIds (ids are excluded, names are
  // not — fresh registries assign the same names).
  SummarizationRequest request;
  request.w_dist = 0.7;
  request.w_size = 0.3;
  request.max_steps = 6;

  std::string first, second;
  for (std::string* out : {&first, &second}) {
    ProxSession session(TestDataset());
    session.SelectAll();
    auto size = session.Summarize(request);
    ASSERT_TRUE(size.ok()) << size.status().ToString();
    ProxSession::LockedView view = session.Lock();
    *out = WriteJson(SummaryOutcomeToJson(*view.outcome(),
                                          *view.dataset().registry));
  }
  EXPECT_EQ(first, second);

  // The document parses and exposes the advertised fields, none of the
  // nondeterministic ones.
  JsonValue document = MustParse(first);
  EXPECT_NE(document.Find("final_size"), nullptr);
  EXPECT_NE(document.Find("final_distance"), nullptr);
  EXPECT_NE(document.Find("steps"), nullptr);
  EXPECT_NE(document.Find("groups"), nullptr);
  EXPECT_NE(document.Find("expression"), nullptr);
  EXPECT_EQ(document.Find("total_nanos"), nullptr);
  EXPECT_EQ(first.find("nanos"), std::string::npos);
}

TEST(WireTest, StatusMappings) {
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInvalidArgument), 400);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kNotFound), 404);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kFailedPrecondition), 409);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kUnimplemented), 501);
  EXPECT_EQ(HttpStatusForCode(StatusCode::kInternal), 500);

  JsonValue error = StatusToJson(Status::InvalidArgument("bad knob"));
  const JsonValue* payload = error.Find("error");
  ASSERT_NE(payload, nullptr);
  ASSERT_NE(payload->Find("message"), nullptr);
  EXPECT_NE(payload->Find("message")->string_value().find("bad knob"),
            std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace prox
