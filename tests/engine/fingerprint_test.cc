/// The DatasetFingerprint slow path is memoized on ProxSession: the
/// re-serializing fallback (counted by
/// `prox_serve_fingerprint_fallback_total`) runs at most once per session,
/// and ingest advances the memo by digest chaining without ever paying the
/// fallback again. The engine facade inherits the memo — booting an
/// Engine over a dataset costs exactly one fallback, and its fingerprint
/// accessor reuses it.

#include <memory>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "datasets/movielens.h"
#include "engine/engine.h"
#include "engine/engine_metrics.h"
#include "ingest/delta.h"
#include "ingest/synthetic.h"
#include "service/fingerprint.h"
#include "service/session.h"

namespace prox {
namespace engine {
namespace {

Dataset MakeDataset() {
  MovieLensConfig config;
  config.num_users = 8;
  config.num_movies = 4;
  config.seed = 13;
  return MovieLensGenerator::Generate(config);
}

TEST(FingerprintMemoTest, FallbackRunsOncePerSessionAndStopsGrowing) {
  // Generated datasets carry no snapshot checksum, so the first
  // fingerprint() call takes the re-serializing fallback — exactly once.
  ProxSession session(MakeDataset());
  const uint64_t baseline = FingerprintFallbacks()->value();
  const std::string first = session.fingerprint();
  EXPECT_EQ(first.size(), 16u);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);

  // Memoized: repeated reads reuse the memo.
  EXPECT_EQ(session.fingerprint(), first);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);

  // Ingest chains the memo instead of recomputing: the value changes,
  // the fallback counter does not.
  Result<ingest::DeltaBatch> delta =
      ingest::SyntheticMovieLensDelta(session.dataset(), 1, 1, 1);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  const std::string digest = ingest::BatchDigest(delta.value());
  ASSERT_TRUE(session.Ingest(delta.value()).ok());
  EXPECT_EQ(session.fingerprint(),
            ingest::ChainFingerprint(first, digest));
  EXPECT_NE(session.fingerprint(), first);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);
}

TEST(FingerprintMemoTest, EngineBootPaysTheFallbackExactlyOnce) {
  const uint64_t baseline = FingerprintFallbacks()->value();
  std::unique_ptr<Engine> engine = Engine::FromDataset(MakeDataset());
  const std::string fingerprint = engine->fingerprint();
  EXPECT_EQ(fingerprint.size(), 16u);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);

  // The accessor returns the memoized chain head, never recomputes.
  EXPECT_EQ(engine->fingerprint(), fingerprint);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);
}

TEST(FingerprintMemoTest, SnapshotHintSkipsTheFallbackEntirely) {
  Dataset dataset = MakeDataset();
  dataset.fingerprint_hint = "feedfacefeedface";
  const uint64_t baseline = FingerprintFallbacks()->value();
  ProxSession session(std::move(dataset));
  EXPECT_EQ(session.fingerprint(), "feedfacefeedface");
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline);
}

TEST(FingerprintMemoTest, TwinSessionsAgreeOnTheFallbackValue) {
  ProxSession a(MakeDataset());
  ProxSession b(MakeDataset());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), ComputeDatasetFingerprint(a.dataset()));
}

}  // namespace
}  // namespace engine
}  // namespace prox
