/// Round-trips through the stable C ABI (include/prox_c.h), linked
/// statically so AddressSanitizer sees both sides of the boundary
/// (scripts/asan_ir_tests.sh runs this suite under ASan). The contract
/// under test: a summarize body obtained through the C ABI is
/// byte-identical to what the C++ engine facade produces over the same
/// dataset spec and knobs — for all three dataset families — and every
/// misuse path (bad JSON, bad handle, NULL argument, use-after-close)
/// fails with a typed status instead of undefined behavior.

#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"
#include "engine/engine.h"
#include "prox_c.h"

namespace prox {
namespace {

/// Adopts a C-ABI string into a std::string and frees the original.
std::string Take(char* str) {
  if (str == nullptr) return "";
  std::string result(str);
  prox_string_free(str);
  return result;
}

constexpr char kSummarizeRequest[] =
    "{\"w_dist\":0.7,\"w_size\":0.3,\"max_steps\":8,\"threads\":1}";

class CApiEngine {
 public:
  explicit CApiEngine(const std::string& config) {
    char* error = nullptr;
    status_ = prox_engine_open(config.c_str(), &engine_, &error);
    error_ = Take(error);
  }
  ~CApiEngine() {
    if (engine_ != nullptr) prox_engine_close(engine_);
  }

  prox_status_t status() const { return status_; }
  const std::string& error() const { return error_; }
  prox_engine_t* get() { return engine_; }

  /// Closes the handle early (for use-after-close tests).
  prox_status_t Close() {
    prox_status_t status = prox_engine_close(engine_);
    engine_ = nullptr;
    return status;
  }

 private:
  prox_engine_t* engine_ = nullptr;
  prox_status_t status_ = PROX_STATUS_OK;
  std::string error_;
};

TEST(CApiTest, VersionAndStatusNames) {
  EXPECT_EQ(prox_c_api_version(), PROX_C_API_VERSION);
  EXPECT_STREQ(prox_status_name(PROX_STATUS_OK), "OK");
  EXPECT_STREQ(prox_status_name(PROX_STATUS_INVALID_ARGUMENT),
               "InvalidArgument");
  EXPECT_STREQ(prox_status_name(PROX_STATUS_FAILED_PRECONDITION),
               "FailedPrecondition");
  EXPECT_STREQ(prox_status_name(PROX_STATUS_INVALID_HANDLE),
               "InvalidHandle");
  EXPECT_STREQ(prox_status_name(PROX_STATUS_NULL_ARGUMENT), "NullArgument");
  EXPECT_STREQ(prox_status_name(static_cast<prox_status_t>(9999)),
               "Unknown");
}

TEST(CApiTest, SummarizeBytesMatchTheCppFacadeOnAllFamilies) {
  for (const char* family : {"movielens", "wikipedia", "ddp"}) {
    SCOPED_TRACE(family);
    const std::string config =
        std::string("{\"dataset\":{\"family\":\"") + family + "\"}}";

    // C++ side: the facade over the same spec.
    Result<engine::Engine::Options> options =
        engine::Engine::OptionsFromJson(config);
    ASSERT_TRUE(options.ok()) << options.status().ToString();
    Result<std::unique_ptr<engine::Engine>> cpp =
        engine::Engine::Create(options.value());
    ASSERT_TRUE(cpp.ok()) << cpp.status().ToString();
    engine::Engine::Response expected =
        cpp.value()->HandleSummarize(kSummarizeRequest);
    ASSERT_TRUE(expected.ok()) << expected.body;

    // C side: same spec, same knobs, through the flat ABI.
    CApiEngine c_engine(config);
    ASSERT_EQ(c_engine.status(), PROX_STATUS_OK) << c_engine.error();
    char* select_body = nullptr;
    ASSERT_EQ(prox_engine_select(c_engine.get(), "{\"all\":true}",
                                 &select_body),
              PROX_STATUS_OK);
    Take(select_body);

    char* body = nullptr;
    int32_t cache_hit = -1;
    ASSERT_EQ(prox_engine_summarize(c_engine.get(), kSummarizeRequest, &body,
                                    &cache_hit),
              PROX_STATUS_OK);
    EXPECT_EQ(cache_hit, 0);
    EXPECT_EQ(Take(body), expected.body);

    // Identity agrees too, and the second call is a cache hit on the
    // identical bytes.
    char* fingerprint = nullptr;
    ASSERT_EQ(prox_engine_fingerprint(c_engine.get(), &fingerprint),
              PROX_STATUS_OK);
    EXPECT_EQ(Take(fingerprint), cpp.value()->fingerprint());

    char* warm = nullptr;
    ASSERT_EQ(prox_engine_summarize(c_engine.get(), kSummarizeRequest, &warm,
                                    &cache_hit),
              PROX_STATUS_OK);
    EXPECT_EQ(cache_hit, 1);
    EXPECT_EQ(Take(warm), expected.body);
  }
}

TEST(CApiTest, GroupsAndEvaluateSpeakTheWireSchemas) {
  CApiEngine engine("");
  ASSERT_EQ(engine.status(), PROX_STATUS_OK) << engine.error();

  // Groups before any summarize: typed FailedPrecondition with the
  // canonical error document.
  char* body = nullptr;
  EXPECT_EQ(prox_engine_summary_groups(engine.get(), &body),
            PROX_STATUS_FAILED_PRECONDITION);
  std::string error_body = Take(body);
  EXPECT_NE(error_body.find("\"error\""), std::string::npos);
  EXPECT_NE(error_body.find("no summary computed yet"), std::string::npos);

  ASSERT_EQ(prox_engine_summarize(engine.get(), "{}", &body, nullptr),
            PROX_STATUS_OK);
  Take(body);
  ASSERT_EQ(prox_engine_summary_groups(engine.get(), &body), PROX_STATUS_OK);
  std::string groups = Take(body);
  auto parsed = ParseJson(groups);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed.value().Find("groups"), nullptr);
  EXPECT_NE(parsed.value().Find("expression"), nullptr);

  ASSERT_EQ(prox_engine_evaluate(engine.get(),
                                 "{\"on\":\"summary\",\"assignment\":{}}",
                                 &body),
            PROX_STATUS_OK);
  auto report = ParseJson(Take(body));
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.value().Find("rows"), nullptr);
}

TEST(CApiTest, BadJsonSurfacesTypedStatusesAndErrorDocuments) {
  // A malformed open config fails with the typed code and the canonical
  // error document.
  prox_engine_t* engine = nullptr;
  char* error = nullptr;
  EXPECT_EQ(prox_engine_open("{nope", &engine, &error),
            PROX_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(engine, nullptr);
  std::string error_body = Take(error);
  EXPECT_NE(error_body.find("\"error\""), std::string::npos);

  // Unknown config fields are rejected, not ignored.
  EXPECT_EQ(prox_engine_open("{\"bogus\":1}", &engine, nullptr),
            PROX_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(engine, nullptr);

  // Malformed request bodies on a live handle: typed status, error doc.
  CApiEngine live("");
  ASSERT_EQ(live.status(), PROX_STATUS_OK);
  char* body = nullptr;
  EXPECT_EQ(prox_engine_summarize(live.get(), "{nope", &body, nullptr),
            PROX_STATUS_INVALID_ARGUMENT);
  EXPECT_NE(Take(body).find("\"error\""), std::string::npos);
  int32_t cache_hit = 7;
  EXPECT_EQ(prox_engine_summarize(live.get(), "{\"w_dist\":-1}", &body,
                                  &cache_hit),
            PROX_STATUS_INVALID_ARGUMENT);
  EXPECT_EQ(cache_hit, -1);
  Take(body);
  EXPECT_EQ(prox_engine_select(live.get(), "{\"bogus\":1}", &body),
            PROX_STATUS_INVALID_ARGUMENT);
  Take(body);
}

TEST(CApiTest, HandleAndArgumentMisuseIsRejected) {
  char* body = nullptr;

  // NULL handle.
  EXPECT_EQ(prox_engine_summarize(nullptr, "{}", &body, nullptr),
            PROX_STATUS_INVALID_HANDLE);
  EXPECT_EQ(body, nullptr);
  EXPECT_EQ(prox_engine_fingerprint(nullptr, &body),
            PROX_STATUS_INVALID_HANDLE);

  // NULL required arguments.
  CApiEngine engine("");
  ASSERT_EQ(engine.status(), PROX_STATUS_OK);
  EXPECT_EQ(prox_engine_summarize(engine.get(), nullptr, &body, nullptr),
            PROX_STATUS_NULL_ARGUMENT);
  EXPECT_EQ(prox_engine_open("", nullptr, nullptr),
            PROX_STATUS_NULL_ARGUMENT);

  // Use-after-close: remembered and rejected, never touched.
  prox_engine_t* handle = engine.get();
  EXPECT_EQ(engine.Close(), PROX_STATUS_OK);
  EXPECT_EQ(prox_engine_summarize(handle, "{}", &body, nullptr),
            PROX_STATUS_INVALID_HANDLE);
  EXPECT_EQ(body, nullptr);
  EXPECT_EQ(prox_engine_close(handle), PROX_STATUS_INVALID_HANDLE);

  // Closing NULL is a no-op.
  EXPECT_EQ(prox_engine_close(nullptr), PROX_STATUS_OK);
  // Freeing NULL is a no-op.
  prox_string_free(nullptr);
}

}  // namespace
}  // namespace prox
