// Serving from a snapshot: a Router booted over a snapshot-loaded engine
// must answer /v1/summarize with the exact bytes a generator-booted Router
// produces, the fingerprint short-circuit must hold (snapshot datasets
// carry their identity, so DatasetFingerprint never re-serializes), and a
// persisted cache must come back warm — the first request after a restart
// is a hit, no Algorithm 1 run. Carries the `tsan` label: the warm-restart
// path is exactly the many-readers-no-interning regime the two-tier
// TermPool promises to keep race-free.

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datasets/movielens.h"
#include "engine/engine.h"
#include "serve/router.h"
#include "store/codec.h"
#include "store/snapshot.h"

namespace prox {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "prox_store_serve_" +
         std::to_string(::getpid()) + "_" + name + ".snap";
}

MovieLensConfig SmallConfig() {
  MovieLensConfig config;
  config.num_users = 16;
  config.num_movies = 5;
  config.seed = 13;
  return config;
}

serve::HttpRequest Post(const std::string& target, const std::string& body) {
  serve::HttpRequest request;
  request.method = "POST";
  request.target = target;
  request.version = "HTTP/1.1";
  request.body = body;
  return request;
}

std::string SummarizeBody(int threads) {
  return "{\"w_dist\": 0.5, \"max_steps\": 6, \"threads\": " +
         std::to_string(threads) + "}";
}

std::string HeaderValue(const serve::HttpResponse& response,
                        const std::string& name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return value;
  }
  return "";
}

/// Boots an engine from a snapshot the way prox_server --snapshot does
/// (cache restored warm when a section is present).
std::unique_ptr<engine::Engine> BootFrom(const std::string& path) {
  engine::Engine::Options options;
  options.dataset.snapshot_path = path;
  Result<std::unique_ptr<engine::Engine>> booted =
      engine::Engine::Create(options);
  EXPECT_TRUE(booted.ok()) << booted.status().ToString();
  return booted.ok() ? booted.MoveValue() : nullptr;
}

TEST(SnapshotServeTest, SummarizeBytesMatchGeneratorBoot) {
  const std::string path = TempPath("bytes");
  {
    Dataset dataset = MovieLensGenerator::Generate(SmallConfig());
    Status s = SaveDataset(dataset, SaveOptions{}, path);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  for (const int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    std::unique_ptr<engine::Engine> generated = engine::Engine::FromDataset(
        MovieLensGenerator::Generate(SmallConfig()));
    serve::Router generated_router(generated.get());

    std::unique_ptr<engine::Engine> loaded = BootFrom(path);
    ASSERT_NE(loaded, nullptr);
    serve::Router loaded_router(loaded.get());

    // Same identity ⇒ same cache keys across restarts and replicas.
    EXPECT_EQ(loaded_router.dataset_fingerprint(),
              generated_router.dataset_fingerprint());

    serve::HttpResponse from_generated = generated_router.Handle(
        Post("/v1/summarize", SummarizeBody(threads)));
    serve::HttpResponse from_loaded =
        loaded_router.Handle(Post("/v1/summarize", SummarizeBody(threads)));
    ASSERT_EQ(from_generated.status, 200) << from_generated.body;
    ASSERT_EQ(from_loaded.status, 200) << from_loaded.body;
    EXPECT_EQ(HeaderValue(from_loaded, "X-Prox-Cache"), "miss");
    EXPECT_EQ(from_loaded.body, from_generated.body);
  }
}

TEST(SnapshotServeTest, PersistedCacheServesFirstRequestWarm) {
  const std::string path = TempPath("warm");

  std::string first_body;
  {
    // "First process": generator boot, one cold summarize, then persist
    // dataset + cache the way prox_server --cache-persist does on drain.
    std::unique_ptr<engine::Engine> engine = engine::Engine::FromDataset(
        MovieLensGenerator::Generate(SmallConfig()));
    serve::Router router(engine.get());
    serve::HttpResponse response =
        router.Handle(Post("/v1/summarize", SummarizeBody(1)));
    ASSERT_EQ(response.status, 200) << response.body;
    first_body = response.body;

    ::prox::Status s = engine->PersistSnapshot(path);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // "Restarted process": snapshot boot + cache restore. The very first
  // summarize must be a cache hit with the same bytes — no recompute.
  std::shared_ptr<Snapshot> snapshot;
  ASSERT_TRUE(Snapshot::Open(path, &snapshot).ok());
  ASSERT_TRUE(HasCacheSection(*snapshot));
  std::unique_ptr<engine::Engine> engine = BootFrom(path);
  ASSERT_NE(engine, nullptr);
  serve::Router router(engine.get());

  serve::HttpResponse response =
      router.Handle(Post("/v1/summarize", SummarizeBody(1)));
  ASSERT_EQ(response.status, 200) << response.body;
  EXPECT_EQ(HeaderValue(response, "X-Prox-Cache"), "hit");
  EXPECT_EQ(response.body, first_body);
}

TEST(SnapshotServeTest, ConcurrentWarmRequestsStayConsistent) {
  // Many workers hammering a warm snapshot-booted router concurrently:
  // every response must be the same bytes (and the shared TermPool sees
  // reads only — the regime TSan checks here).
  const std::string path = TempPath("concurrent");
  std::string expected_body;
  {
    std::unique_ptr<engine::Engine> engine = engine::Engine::FromDataset(
        MovieLensGenerator::Generate(SmallConfig()));
    serve::Router router(engine.get());
    serve::HttpResponse response =
        router.Handle(Post("/v1/summarize", SummarizeBody(1)));
    ASSERT_EQ(response.status, 200);
    expected_body = response.body;
    ASSERT_TRUE(engine->PersistSnapshot(path).ok());
  }

  std::unique_ptr<engine::Engine> engine = BootFrom(path);
  ASSERT_NE(engine, nullptr);
  serve::Router router(engine.get());

  constexpr int kWorkers = 8;
  constexpr int kRequestsPerWorker = 16;
  std::vector<std::string> failures(kWorkers);
  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kRequestsPerWorker; ++i) {
        serve::HttpResponse response =
            router.Handle(Post("/v1/summarize", SummarizeBody(1)));
        if (response.status != 200 || response.body != expected_body) {
          failures[w] = "worker " + std::to_string(w) + " got status " +
                        std::to_string(response.status);
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");
}

}  // namespace
}  // namespace store
}  // namespace prox
