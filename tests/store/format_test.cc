// Corruption and format tests for the PROXSNAP container: every damaged
// file must fail *closed* — Snapshot::Open returns a typed store::Status
// naming the offending section and never crashes (scripts/asan_ir_tests.sh
// runs this suite under AddressSanitizer to enforce the "never" part).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "datasets/movielens.h"
#include "store/codec.h"
#include "store/crc32c.h"
#include "store/format.h"
#include "store/snapshot.h"

namespace prox {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  // Pid-unique: ctest -j runs each case as its own process and several
  // cases materialize the shared pristine snapshot concurrently.
  return ::testing::TempDir() + "prox_store_format_" +
         std::to_string(::getpid()) + "_" + name + ".snap";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// A pristine snapshot of a small MovieLens dataset, as raw bytes.
std::string PristineSnapshotBytes() {
  static const std::string bytes = [] {
    MovieLensConfig config;
    config.num_users = 10;
    config.num_movies = 4;
    config.seed = 7;
    Dataset dataset = MovieLensGenerator::Generate(config);
    const std::string path = TempPath("pristine");
    Status s = SaveDataset(dataset, SaveOptions{}, path);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return ReadFileBytes(path);
  }();
  return bytes;
}

FileHeader HeaderOf(const std::string& bytes) {
  FileHeader header;
  std::memcpy(&header, bytes.data(), sizeof(header));
  return header;
}

std::vector<SectionEntry> DirectoryOf(const std::string& bytes) {
  const FileHeader header = HeaderOf(bytes);
  std::vector<SectionEntry> entries(header.section_count);
  std::memcpy(entries.data(), bytes.data() + header.directory_offset,
              entries.size() * sizeof(SectionEntry));
  return entries;
}

/// Re-seals a mutated file: recomputes the directory CRC and the header
/// CRC so validation reaches the check under test instead of tripping on
/// the seals themselves.
void Reseal(std::string* bytes) {
  FileHeader header = HeaderOf(*bytes);
  header.directory_crc32c =
      Crc32c(bytes->data() + header.directory_offset,
             bytes->size() - header.directory_offset);
  header.header_crc32c = Crc32c(&header, kHeaderCrcBytes);
  std::memcpy(bytes->data(), &header, sizeof(header));
}

Status OpenBytes(const std::string& name, const std::string& bytes) {
  const std::string path = TempPath(name);
  WriteFileBytes(path, bytes);
  std::shared_ptr<Snapshot> snapshot;
  Status status = Snapshot::Open(path, &snapshot);
  if (!status.ok()) EXPECT_EQ(snapshot, nullptr);
  return status;
}

TEST(SnapshotFormatTest, PristineOpens) {
  std::shared_ptr<Snapshot> snapshot;
  const std::string path = TempPath("opens");
  WriteFileBytes(path, PristineSnapshotBytes());
  Status status = Snapshot::Open(path, &snapshot);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(snapshot->num_sections(), 11u);
  EXPECT_NE(snapshot->Find(SectionTag::kRegistry), nullptr);
  EXPECT_EQ(snapshot->Find(SectionTag::kCache), nullptr);
}

TEST(SnapshotFormatTest, MissingFile) {
  std::shared_ptr<Snapshot> snapshot;
  Status status = Snapshot::Open(TempPath("does_not_exist"), &snapshot);
  EXPECT_EQ(status.code(), ErrorCode::kIo);
}

TEST(SnapshotFormatTest, WrongMagic) {
  std::string bytes = PristineSnapshotBytes();
  bytes[0] = 'X';
  Status status = OpenBytes("magic", bytes);
  EXPECT_EQ(status.code(), ErrorCode::kBadMagic);
}

TEST(SnapshotFormatTest, HeaderBitFlip) {
  std::string bytes = PristineSnapshotBytes();
  bytes[20] ^= 0x01;  // inside directory_offset, covered by the header CRC
  Status status = OpenBytes("header_flip", bytes);
  EXPECT_EQ(status.code(), ErrorCode::kChecksum);
  EXPECT_EQ(status.section(), SectionTag::kNone);
}

TEST(SnapshotFormatTest, UnsupportedVersion) {
  std::string bytes = PristineSnapshotBytes();
  FileHeader header = HeaderOf(bytes);
  header.version = kFormatVersion + 1;
  std::memcpy(bytes.data(), &header, sizeof(header));
  Reseal(&bytes);
  Status status = OpenBytes("version", bytes);
  EXPECT_EQ(status.code(), ErrorCode::kBadVersion);
}

TEST(SnapshotFormatTest, ShorterThanHeader) {
  Status status = OpenBytes("tiny", PristineSnapshotBytes().substr(0, 10));
  EXPECT_EQ(status.code(), ErrorCode::kTruncated);
}

TEST(SnapshotFormatTest, TruncatedMidDirectory) {
  const std::string pristine = PristineSnapshotBytes();
  const FileHeader header = HeaderOf(pristine);
  // Cut inside the directory: one full entry plus half of the next.
  const uint64_t cut =
      header.directory_offset + sizeof(SectionEntry) + sizeof(SectionEntry) / 2;
  ASSERT_LT(cut, pristine.size());
  Status status = OpenBytes("mid_directory", pristine.substr(0, cut));
  EXPECT_EQ(status.code(), ErrorCode::kTruncated);
}

TEST(SnapshotFormatTest, BitFlipEverySectionIsCaughtAndNamed) {
  const std::string pristine = PristineSnapshotBytes();
  const std::vector<SectionEntry> directory = DirectoryOf(pristine);
  ASSERT_GE(directory.size(), 11u);
  for (const SectionEntry& entry : directory) {
    if (entry.length == 0) continue;  // no payload byte to flip
    std::string bytes = pristine;
    bytes[entry.offset + entry.length / 2] ^= 0x40;
    Status status = OpenBytes("flip", bytes);
    const SectionTag tag = static_cast<SectionTag>(entry.tag);
    SCOPED_TRACE("section " + SectionTagName(tag));
    EXPECT_EQ(status.code(), ErrorCode::kChecksum);
    EXPECT_EQ(status.section(), tag);
    // The rendered diagnostic names the section for the operator.
    EXPECT_NE(status.ToString().find(SectionTagName(tag)), std::string::npos)
        << status.ToString();
  }
}

TEST(SnapshotFormatTest, MisalignedSectionOffset) {
  std::string bytes = PristineSnapshotBytes();
  FileHeader header = HeaderOf(bytes);
  SectionEntry entry;
  std::memcpy(&entry, bytes.data() + header.directory_offset, sizeof(entry));
  entry.offset += 4;  // breaks the 64-byte alignment contract
  std::memcpy(bytes.data() + header.directory_offset, &entry, sizeof(entry));
  Reseal(&bytes);
  Status status = OpenBytes("misaligned", bytes);
  EXPECT_EQ(status.code(), ErrorCode::kMisaligned);
  EXPECT_EQ(status.section(), static_cast<SectionTag>(entry.tag));
}

TEST(SnapshotFormatTest, SectionLengthEscapesFile) {
  std::string bytes = PristineSnapshotBytes();
  FileHeader header = HeaderOf(bytes);
  SectionEntry entry;
  std::memcpy(&entry, bytes.data() + header.directory_offset, sizeof(entry));
  entry.length = bytes.size();  // offset + length now past EOF
  std::memcpy(bytes.data() + header.directory_offset, &entry, sizeof(entry));
  Reseal(&bytes);
  Status status = OpenBytes("bounds", bytes);
  EXPECT_EQ(status.code(), ErrorCode::kSectionBounds);
  EXPECT_EQ(status.section(), static_cast<SectionTag>(entry.tag));
}

TEST(SnapshotFormatTest, DuplicateSectionTag) {
  std::string bytes = PristineSnapshotBytes();
  FileHeader header = HeaderOf(bytes);
  ASSERT_GE(header.section_count, 2u);
  SectionEntry first;
  SectionEntry second;
  std::memcpy(&first, bytes.data() + header.directory_offset, sizeof(first));
  std::memcpy(&second,
              bytes.data() + header.directory_offset + sizeof(SectionEntry),
              sizeof(second));
  second.tag = first.tag;
  std::memcpy(bytes.data() + header.directory_offset + sizeof(SectionEntry),
              &second, sizeof(second));
  Reseal(&bytes);
  Status status = OpenBytes("duplicate", bytes);
  EXPECT_EQ(status.code(), ErrorCode::kBadDirectory);
  EXPECT_EQ(status.section(), static_cast<SectionTag>(first.tag));
}

TEST(SnapshotFormatTest, MalformedSectionPayloadFailsLoadTyped) {
  // A structurally valid container whose REGY payload lies about counts:
  // load (not open) must fail with kMalformed on that section, not crash.
  const std::string pristine = PristineSnapshotBytes();
  const std::vector<SectionEntry> directory = DirectoryOf(pristine);
  std::string bytes = pristine;
  for (const SectionEntry& entry : directory) {
    if (static_cast<SectionTag>(entry.tag) != SectionTag::kRegistry) continue;
    const uint32_t huge = 0x00FFFFFF;
    std::memcpy(bytes.data() + entry.offset, &huge, sizeof(huge));
    SectionEntry fixed = entry;
    fixed.crc32c = Crc32c(bytes.data() + entry.offset, entry.length);
    const uint64_t dir_off = HeaderOf(bytes).directory_offset;
    for (size_t i = 0; i < directory.size(); ++i) {
      if (directory[i].tag == entry.tag) {
        std::memcpy(bytes.data() + dir_off + i * sizeof(SectionEntry), &fixed,
                    sizeof(fixed));
      }
    }
  }
  Reseal(&bytes);
  const std::string path = TempPath("malformed_regy");
  WriteFileBytes(path, bytes);
  std::shared_ptr<Snapshot> snapshot;
  ASSERT_TRUE(Snapshot::Open(path, &snapshot).ok());
  Dataset loaded;
  Status status = LoadDataset(snapshot, LoadOptions{}, &loaded);
  EXPECT_EQ(status.code(), ErrorCode::kMalformed);
  EXPECT_EQ(status.section(), SectionTag::kRegistry);
}

TEST(SnapshotFormatTest, StatusRendersCodeAndSection) {
  Status status = Status::Error(ErrorCode::kChecksum, SectionTag::kRegistry,
                                "payload CRC mismatch");
  EXPECT_NE(status.ToString().find("kChecksum"), std::string::npos);
  EXPECT_NE(status.ToString().find("REGY"), std::string::npos);
}

}  // namespace
}  // namespace store
}  // namespace prox
