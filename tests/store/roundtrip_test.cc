// Round-trip equivalence: Generate → SaveDataset → LoadDataset must hand
// back a dataset whose provenance prints byte-identically, whose registry
// and semantic context match entry for entry, and whose summarization
// behavior (the /v1/summarize JSON body) is indistinguishable from the
// generator-built dataset — for all three dataset families, on both the
// zero-copy mmap-borrow path and the validated-copy fallback.

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "engine/codec.h"
#include "store/codec.h"
#include "store/snapshot.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

namespace prox {
namespace store {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "prox_store_roundtrip_" +
         std::to_string(::getpid()) + "_" + name + ".snap";
}

Dataset Reload(const Dataset& dataset, const std::string& name,
               bool allow_mmap_borrow) {
  const std::string path = TempPath(name);
  Status saved = SaveDataset(dataset, SaveOptions{}, path);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  std::shared_ptr<Snapshot> snapshot;
  Status opened = Snapshot::Open(path, &snapshot);
  EXPECT_TRUE(opened.ok()) << opened.ToString();
  LoadOptions options;
  options.allow_mmap_borrow = allow_mmap_borrow;
  Dataset loaded;
  Status status = LoadDataset(snapshot, options, &loaded);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return loaded;
}

/// Runs Algorithm 1 over `ds` and returns the canonical /v1/summarize
/// JSON body bytes.
std::string SummarizeJson(Dataset ds, int threads) {
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations, threads);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 6;
  options.phi = ds.phi;
  options.threads = threads;
  Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, &oracle, &valuations, options);
  SummaryOutcome outcome = summarizer.Run().MoveValue();
  return WriteJson(engine::SummaryOutcomeToJson(outcome, *ds.registry));
}

void ExpectStructurallyEqual(const Dataset& generated, const Dataset& loaded) {
  // Registry: identical domains and (non-summary) entries, dense ids.
  ASSERT_NE(loaded.registry, nullptr);
  ASSERT_EQ(loaded.registry->num_domains(), generated.registry->num_domains());
  for (size_t d = 0; d < generated.registry->num_domains(); ++d) {
    EXPECT_EQ(loaded.registry->domain_name(static_cast<DomainId>(d)),
              generated.registry->domain_name(static_cast<DomainId>(d)));
  }
  ASSERT_EQ(loaded.registry->size(), generated.registry->size());
  for (size_t a = 0; a < generated.registry->size(); ++a) {
    const AnnotationId id = static_cast<AnnotationId>(a);
    EXPECT_EQ(loaded.registry->name(id), generated.registry->name(id));
    EXPECT_EQ(loaded.registry->domain(id), generated.registry->domain(id));
    EXPECT_EQ(loaded.registry->entity_row(id),
              generated.registry->entity_row(id));
    EXPECT_FALSE(loaded.registry->is_summary(id));
  }

  // Semantic context: tables row for row, taxonomy concept for concept.
  ASSERT_EQ(loaded.ctx.tables.size(), generated.ctx.tables.size());
  for (const auto& [domain, table] : generated.ctx.tables) {
    const EntityTable* other = loaded.ctx.TableFor(domain);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->name(), table.name());
    ASSERT_EQ(other->num_attributes(), table.num_attributes());
    ASSERT_EQ(other->num_rows(), table.num_rows());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      for (size_t at = 0; at < table.num_attributes(); ++at) {
        EXPECT_EQ(other->ValueNameOf(static_cast<uint32_t>(r),
                                     static_cast<AttrId>(at)),
                  table.ValueNameOf(static_cast<uint32_t>(r),
                                    static_cast<AttrId>(at)));
      }
    }
  }
  ASSERT_EQ(loaded.ctx.taxonomy.has_value(),
            generated.ctx.taxonomy.has_value());
  if (generated.ctx.taxonomy.has_value()) {
    ASSERT_EQ(loaded.ctx.taxonomy->size(), generated.ctx.taxonomy->size());
    for (size_t c = 0; c < generated.ctx.taxonomy->size(); ++c) {
      const ConceptId id = static_cast<ConceptId>(c);
      EXPECT_EQ(loaded.ctx.taxonomy->name(id),
                generated.ctx.taxonomy->name(id));
      EXPECT_EQ(loaded.ctx.taxonomy->parent(id),
                generated.ctx.taxonomy->parent(id));
      EXPECT_EQ(loaded.ctx.taxonomy->depth(id),
                generated.ctx.taxonomy->depth(id));
    }
  }
  EXPECT_EQ(loaded.ctx.concept_of.size(), generated.ctx.concept_of.size());

  // Configuration and features.
  EXPECT_EQ(loaded.agg, generated.agg);
  EXPECT_EQ(loaded.phi.fallback, generated.phi.fallback);
  EXPECT_EQ(loaded.phi.per_domain, generated.phi.per_domain);
  EXPECT_EQ(loaded.domains, generated.domains);
  EXPECT_EQ(loaded.features, generated.features);
  ASSERT_EQ(loaded.valuation_class != nullptr,
            generated.valuation_class != nullptr);
  if (generated.valuation_class != nullptr) {
    EXPECT_EQ(loaded.valuation_class->name(),
              generated.valuation_class->name());
  }
  ASSERT_EQ(loaded.val_func != nullptr, generated.val_func != nullptr);
  if (generated.val_func != nullptr) {
    EXPECT_EQ(loaded.val_func->name(), generated.val_func->name());
  }

  // The loaded dataset carries the snapshot fingerprint as a hint and the
  // hint equals what the serving layer would have computed from scratch.
  EXPECT_FALSE(loaded.fingerprint_hint.empty());

  // Provenance: byte-identical rendering, identical size.
  ASSERT_NE(loaded.provenance, nullptr);
  EXPECT_EQ(loaded.provenance->ToString(*loaded.registry),
            generated.provenance->ToString(*generated.registry));
  EXPECT_EQ(loaded.provenance->Size(), generated.provenance->Size());
}

template <typename Generator, typename Config>
void ExpectRoundTrip(const Config& config, const std::string& name) {
  const Dataset generated = Generator::Generate(config);
  for (const bool borrow : {true, false}) {
    SCOPED_TRACE(name + (borrow ? " mmap-borrow" : " copy-fallback"));
    const Dataset loaded =
        Reload(generated, name + (borrow ? "_mmap" : "_copy"), borrow);
    ExpectStructurallyEqual(generated, loaded);
  }

  // Behavioral equivalence: summarize the loaded dataset and the
  // generated dataset and require byte-identical response JSON, serial
  // and parallel. Each run gets a fresh dataset (summarization registers
  // summary annotations, so datasets are single-use).
  for (const int threads : {1, 8}) {
    SCOPED_TRACE(name + " threads=" + std::to_string(threads));
    const std::string from_generated =
        SummarizeJson(Generator::Generate(config), threads);
    const std::string from_snapshot =
        SummarizeJson(Reload(Generator::Generate(config),
                             name + "_summ" + std::to_string(threads),
                             /*allow_mmap_borrow=*/true),
                      threads);
    EXPECT_EQ(from_snapshot, from_generated);
  }
}

TEST(StoreRoundTripTest, MovieLens) {
  MovieLensConfig config;
  config.num_users = 20;
  config.num_movies = 6;
  config.ratings_per_user = 3;
  ExpectRoundTrip<MovieLensGenerator>(config, "movielens");
}

TEST(StoreRoundTripTest, Wikipedia) {
  WikipediaConfig config;
  config.num_users = 10;
  config.num_pages = 8;
  ExpectRoundTrip<WikipediaGenerator>(config, "wikipedia");
}

TEST(StoreRoundTripTest, Ddp) {
  DdpConfig config;
  config.num_executions = 8;
  ExpectRoundTrip<DdpGenerator>(config, "ddp");
}

TEST(StoreRoundTripTest, DdpFromMachine) {
  DdpConfig config;
  config.from_machine = true;
  config.num_executions = 10;
  config.seed = 21;
  ExpectRoundTrip<DdpGenerator>(config, "ddp_machine");
}

TEST(StoreRoundTripTest, SavedBytesAreDeterministic) {
  // Two saves of identically generated datasets must produce identical
  // files — the fingerprint short-circuit and cache keys depend on it.
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  auto save_bytes = [&](const std::string& name) {
    const std::string path = TempPath(name);
    Dataset ds = MovieLensGenerator::Generate(config);
    Status s = SaveDataset(ds, SaveOptions{}, path);
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string first = save_bytes("det_a");
  const std::string second = save_bytes("det_b");
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(StoreRoundTripTest, SecondGenerationSnapshotIsStable) {
  // Snapshot of a snapshot-loaded dataset: the format must be a fixed
  // point (load → save → load gives the same provenance bytes).
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  const Dataset generated = MovieLensGenerator::Generate(config);
  const Dataset first = Reload(generated, "gen2_a", /*allow_mmap_borrow=*/true);
  const Dataset second = Reload(first, "gen2_b", /*allow_mmap_borrow=*/true);
  EXPECT_EQ(second.provenance->ToString(*second.registry),
            generated.provenance->ToString(*generated.registry));
  EXPECT_EQ(second.fingerprint_hint, first.fingerprint_hint);
}

}  // namespace
}  // namespace store
}  // namespace prox
