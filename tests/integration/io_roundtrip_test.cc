// Integration: serialization round-trips of full generated datasets — the
// persistence path a downstream system would use to store provenance.

#include <gtest/gtest.h>

#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "provenance/io.h"

namespace prox {
namespace {

void CheckRoundTrip(const Dataset& ds) {
  std::string text = SerializeExpression(*ds.provenance, *ds.registry);
  AnnotationRegistry fresh;
  auto parsed = ParseExpression(text, &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value()->Size(), ds.provenance->Size());

  // All-true evaluations agree modulo annotation renaming: compare by
  // group name.
  EvalResult original =
      ds.provenance->Evaluate(MaterializedValuation(ds.registry->size()));
  EvalResult reparsed =
      parsed.value()->Evaluate(MaterializedValuation(fresh.size()));
  if (original.kind() == EvalResult::Kind::kVector) {
    ASSERT_EQ(reparsed.kind(), EvalResult::Kind::kVector);
    ASSERT_EQ(original.coords().size(), reparsed.coords().size());
    for (const auto& coord : original.coords()) {
      AnnotationId mapped =
          fresh.Find(ds.registry->name(coord.group)).MoveValue();
      EXPECT_EQ(reparsed.CoordValue(mapped), coord.value)
          << ds.registry->name(coord.group);
    }
  } else {
    EXPECT_EQ(original, reparsed);
  }
}

TEST(IoRoundTripTest, MovieLensDataset) {
  MovieLensConfig config;
  config.num_users = 15;
  config.num_movies = 6;
  CheckRoundTrip(MovieLensGenerator::Generate(config));
}

TEST(IoRoundTripTest, WikipediaDataset) {
  WikipediaConfig config;
  config.num_users = 12;
  config.num_pages = 8;
  CheckRoundTrip(WikipediaGenerator::Generate(config));
}

TEST(IoRoundTripTest, DdpDataset) {
  DdpConfig config;
  config.num_executions = 8;
  CheckRoundTrip(DdpGenerator::Generate(config));
}

TEST(IoRoundTripTest, SummaryExpressionsSerializeToo) {
  // Summaries contain summary annotations; they serialize/parse like any
  // other annotation (flagged-ness is not persisted — documented).
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  Dataset ds = MovieLensGenerator::Generate(config);
  auto users = ds.registry->AnnotationsInDomain(ds.domain("user"));
  AnnotationId merged = ds.registry->AddSummary(ds.domain("user"), "Merged");
  Homomorphism h;
  h.Set(users[0], merged);
  h.Set(users[1], merged);
  auto summary = ds.provenance->Apply(h);

  std::string text = SerializeExpression(*summary, *ds.registry);
  AnnotationRegistry fresh;
  auto parsed = ParseExpression(text, &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value()->Size(), summary->Size());
  EXPECT_TRUE(fresh.Find("Merged").ok());
}

}  // namespace
}  // namespace prox
