// End-to-end integration: the three datasets through the three algorithms,
// checking the qualitative relationships Chapter 6 reports.

#include <gtest/gtest.h>

#include "baselines/clustering_summarizer.h"
#include "baselines/random_summarizer.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "summarize/summarizer.h"

namespace prox {
namespace {

struct AlgoRuns {
  double prov_approx_dist = 0.0;
  int64_t prov_approx_size = 0;
  double random_dist = 0.0;
  int64_t random_size = 0;
};

AlgoRuns RunBoth(Dataset* ds, double w_dist, int max_steps) {
  std::vector<Valuation> valuations =
      ds->valuation_class->Generate(*ds->provenance, ds->ctx);
  EnumeratedDistance oracle(ds->provenance.get(), ds->registry.get(),
                            ds->val_func.get(), valuations);

  SummarizerOptions options;
  options.w_dist = w_dist;
  options.w_size = 1.0 - w_dist;
  options.max_steps = max_steps;
  options.phi = ds->phi;
  Summarizer summarizer(ds->provenance.get(), ds->registry.get(), &ds->ctx,
                        &ds->constraints, &oracle, &valuations, options);
  auto pa = summarizer.Run();
  EXPECT_TRUE(pa.ok()) << pa.status();

  EnumeratedDistance random_oracle(ds->provenance.get(), ds->registry.get(),
                                   ds->val_func.get(), valuations);
  RandomSummarizerOptions random_options;
  random_options.max_steps = max_steps;
  random_options.phi = ds->phi;
  RandomSummarizer random(ds->provenance.get(), ds->registry.get(), &ds->ctx,
                          &ds->constraints, &random_oracle, random_options);
  auto rd = random.Run();
  EXPECT_TRUE(rd.ok()) << rd.status();

  AlgoRuns runs;
  runs.prov_approx_dist = pa.value().final_distance;
  runs.prov_approx_size = pa.value().final_size;
  runs.random_dist = rd.value().final_distance;
  runs.random_size = rd.value().final_size;
  return runs;
}

TEST(PipelineTest, MovieLensProvApproxBeatsRandomOnDistance) {
  // Average over several seeds: with wDist = 1, Prov-Approx's distance must
  // not exceed Random's (Figure 6.1a's headline relationship).
  double pa_total = 0.0, rd_total = 0.0;
  for (uint64_t seed : {1, 2, 3}) {
    MovieLensConfig config;
    config.num_users = 16;
    config.num_movies = 6;
    config.seed = seed;
    Dataset ds = MovieLensGenerator::Generate(config);
    AlgoRuns runs = RunBoth(&ds, /*w_dist=*/1.0, /*max_steps=*/8);
    pa_total += runs.prov_approx_dist;
    rd_total += runs.random_dist;
  }
  EXPECT_LE(pa_total, rd_total + 1e-9);
}

TEST(PipelineTest, MovieLensDistanceGrowsWithSteps) {
  MovieLensConfig config;
  config.num_users = 16;
  config.num_movies = 6;
  Dataset ds1 = MovieLensGenerator::Generate(config);
  Dataset ds2 = MovieLensGenerator::Generate(config);
  AlgoRuns few = RunBoth(&ds1, 1.0, 3);
  AlgoRuns many = RunBoth(&ds2, 1.0, 10);
  EXPECT_LE(few.prov_approx_dist, many.prov_approx_dist + 1e-9);
  EXPECT_GE(few.prov_approx_size, many.prov_approx_size);
}

TEST(PipelineTest, WikipediaPipelineCompletes) {
  WikipediaConfig config;
  config.num_users = 12;
  config.num_pages = 8;
  Dataset ds = WikipediaGenerator::Generate(config);
  AlgoRuns runs = RunBoth(&ds, 1.0, 6);
  EXPECT_GE(runs.prov_approx_dist, 0.0);
  EXPECT_LE(runs.prov_approx_dist, 1.0);
  EXPECT_LT(runs.prov_approx_size, ds.provenance->Size() + 1);
}

TEST(PipelineTest, DdpPipelineCompletes) {
  DdpConfig config;
  config.num_executions = 6;
  Dataset ds = DdpGenerator::Generate(config);
  AlgoRuns runs = RunBoth(&ds, 1.0, 5);
  EXPECT_GE(runs.prov_approx_dist, 0.0);
  EXPECT_LE(runs.prov_approx_size, ds.provenance->Size());
}

TEST(PipelineTest, ClusteringRunsOnMovieLensFeatures) {
  MovieLensConfig config;
  config.num_users = 16;
  config.num_movies = 6;
  Dataset ds = MovieLensGenerator::Generate(config);
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  ClusteringOptions options;
  options.max_steps = 6;
  options.phi = ds.phi;
  ClusteringSummarizer cs(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                          &ds.constraints, &oracle, options);
  cs.SetFeatures(ds.domain("user"), ds.features.at(ds.domain("user")));
  auto outcome = cs.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_LE(outcome.value().final_size, ds.provenance->Size());
  EXPECT_GE(outcome.value().steps.size(), 1u);
}

TEST(PipelineTest, SummaryEvaluationFasterOrEqualOnSmallerExpression) {
  // Usage-time sanity (Figure 6.4's direction): the summary is not larger
  // than the original, so evaluating it touches no more terms.
  MovieLensConfig config;
  config.num_users = 20;
  config.num_movies = 8;
  Dataset ds = MovieLensGenerator::Generate(config);
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  SummarizerOptions options;
  options.w_dist = 0.0;
  options.w_size = 1.0;
  options.max_steps = 10;
  options.phi = ds.phi;
  Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, &oracle, &valuations, options);
  auto outcome = summarizer.Run();
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome.value().final_size, ds.provenance->Size());
}

}  // namespace
}  // namespace prox
