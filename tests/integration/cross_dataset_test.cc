// Cross-module behaviors not covered by the per-module suites: taxonomy
// candidates on Wikipedia, DDP summarizer dynamics, two-domain clustering,
// and generator distribution sanity.

#include <gtest/gtest.h>

#include "baselines/clustering_summarizer.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "provenance/aggregate_expr.h"
#include "summarize/candidates.h"
#include "summarize/summarizer.h"

namespace prox {
namespace {

TEST(WikipediaCandidatesTest, PageCandidatesCarryLcaNamesAndDistances) {
  WikipediaConfig config;
  config.num_users = 10;
  config.num_pages = 8;
  Dataset ds = WikipediaGenerator::Generate(config);
  CandidateGenerator gen(&ds.constraints, &ds.ctx);
  MappingState state(ds.registry.get(), ds.phi);
  auto candidates = gen.Generate(*ds.provenance, state, CandidateOptions{});
  ASSERT_FALSE(candidates.empty());

  bool any_page_candidate = false;
  for (const Candidate& c : candidates) {
    if (c.domain != ds.domain("page")) continue;
    any_page_candidate = true;
    // Summary names are taxonomy concepts; distances are Wu-Palmer based.
    EXPECT_TRUE(ds.ctx.taxonomy->Find(c.decision.name).ok())
        << c.decision.name;
    EXPECT_GE(c.decision.taxonomy_distance_sum,
              c.decision.taxonomy_distance_max - 1e-12);
    EXPECT_NE(c.decision.concept_id, kNoConcept);
  }
  EXPECT_TRUE(any_page_candidate);
}

TEST(DdpSummarizerTest, WdistControlsTradeoffAndRollbackWorks) {
  DdpConfig config;
  config.num_executions = 8;
  Dataset ds = DdpGenerator::Generate(config);
  auto run = [&](double w_dist, double target_dist) {
    Dataset fresh = DdpGenerator::Generate(config);
    auto valuations =
        fresh.valuation_class->Generate(*fresh.provenance, fresh.ctx);
    EnumeratedDistance oracle(fresh.provenance.get(), fresh.registry.get(),
                              fresh.val_func.get(), valuations);
    SummarizerOptions options;
    options.w_dist = w_dist;
    options.w_size = 1.0 - w_dist;
    options.target_dist = target_dist;
    options.max_steps = 10;
    options.phi = fresh.phi;
    Summarizer s(fresh.provenance.get(), fresh.registry.get(), &fresh.ctx,
                 &fresh.constraints, &oracle, &valuations, options);
    return s.Run().MoveValue();
  };

  SummaryOutcome size_greedy = run(0.0, 1.0);
  SummaryOutcome dist_greedy = run(1.0, 1.0);
  EXPECT_LE(dist_greedy.final_distance, size_greedy.final_distance + 1e-12);
  EXPECT_LE(size_greedy.final_size, ds.provenance->Size());

  // A tiny distance budget forces an early stop (possibly with rollback);
  // the result must respect the budget.
  SummaryOutcome bounded = run(0.0, 0.02);
  EXPECT_LT(bounded.final_distance, 0.02);
}

TEST(WikipediaClusteringTest, ClustersUsersAndPagesTogether) {
  WikipediaConfig config;
  config.num_users = 12;
  config.num_pages = 8;
  Dataset ds = WikipediaGenerator::Generate(config);
  auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  ClusteringOptions options;
  options.max_steps = 8;
  options.phi = ds.phi;
  ClusteringSummarizer cs(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                          &ds.constraints, &oracle, options);
  for (const auto& [domain, features] : ds.features) {
    cs.SetFeatures(domain, features);
  }
  auto outcome = cs.Run();
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_GE(outcome.value().steps.size(), 1u);
  // Merges come from per-domain clusterings; every merged pair is
  // same-domain.
  for (const auto& [summary, members] : outcome.value().state.summaries()) {
    DomainId d = ds.registry->domain(summary);
    for (AnnotationId m : members) {
      EXPECT_EQ(ds.registry->domain(m), d);
    }
  }
}

TEST(MovieLensPopularityTest, ZipfSkewsRatingsTowardTopMovies) {
  MovieLensConfig config;
  config.num_users = 60;
  config.num_movies = 10;
  config.ratings_per_user = 4;
  config.zipf_skew = 1.0;
  Dataset ds = MovieLensGenerator::Generate(config);
  const auto* agg =
      dynamic_cast<const AggregateExpression*>(ds.provenance.get());
  std::map<AnnotationId, int> per_movie;
  for (const TensorTerm& t : agg->terms()) per_movie[t.group]++;
  // Movie 0 (rank 0 in the Zipf order, first registered) collects more
  // ratings than the last movie.
  auto movies = ds.registry->AnnotationsInDomain(ds.domain("movie"));
  EXPECT_GT(per_movie[movies.front()], per_movie[movies.back()]);
}

TEST(DdpMachineDatasetTest, MachineModeSummarizes) {
  DdpConfig config;
  config.from_machine = true;
  config.num_executions = 10;
  config.seed = 21;
  Dataset ds = DdpGenerator::Generate(config);
  ASSERT_GT(ds.provenance->Size(), 0);
  auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 6;
  options.phi = ds.phi;
  Summarizer s(ds.provenance.get(), ds.registry.get(), &ds.ctx,
               &ds.constraints, &oracle, &valuations, options);
  auto outcome = s.Run();
  ASSERT_TRUE(outcome.ok());
  EXPECT_LT(outcome.value().final_size, ds.provenance->Size());
}

}  // namespace
}  // namespace prox
