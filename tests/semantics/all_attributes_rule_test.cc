#include <gtest/gtest.h>

#include "semantics/constraints.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(AllAttributesRuleTest, RequiresEveryListedAttribute) {
  MovieFixture fx;
  // Conjunctive rule over Gender AND Role.
  fx.constraints.SetRule(fx.user_domain, std::make_unique<AllAttributesRule>(
                                             std::vector<AttrId>{0, 1}));
  // U1 (F, Audience) vs U2 (F, Critic): Gender matches, Role doesn't.
  EXPECT_FALSE(
      fx.constraints.Evaluate(fx.user_domain, {fx.u1, fx.u2}, fx.ctx)
          .allowed);
  // U1 (F, Audience) vs U3 (M, Audience): Role matches, Gender doesn't.
  EXPECT_FALSE(
      fx.constraints.Evaluate(fx.user_domain, {fx.u1, fx.u3}, fx.ctx)
          .allowed);
}

TEST(AllAttributesRuleTest, IdenticalProfilesAllowedWithCompositeName) {
  MovieFixture fx;
  uint32_t row =
      fx.ctx.tables.at(fx.user_domain).AddRow({"F", "Audience"}).MoveValue();
  AnnotationId u4 = fx.registry.Add(fx.user_domain, "U4", row).MoveValue();
  fx.constraints.SetRule(fx.user_domain, std::make_unique<AllAttributesRule>(
                                             std::vector<AttrId>{0, 1}));
  MergeDecision d =
      fx.constraints.Evaluate(fx.user_domain, {fx.u1, u4}, fx.ctx);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.name, "Gender:F+Role:Audience");
}

TEST(AllAttributesRuleTest, SingleAttributeSubset) {
  MovieFixture fx;
  fx.constraints.SetRule(fx.user_domain, std::make_unique<AllAttributesRule>(
                                             std::vector<AttrId>{0}));
  MergeDecision d =
      fx.constraints.Evaluate(fx.user_domain, {fx.u1, fx.u2}, fx.ctx);
  EXPECT_TRUE(d.allowed);  // both F
  EXPECT_EQ(d.name, "Gender:F");
}

TEST(AllAttributesRuleTest, ConjunctiveIsStricterThanDisjunctive) {
  MovieFixture fx;
  ConstraintSet disjunctive;
  disjunctive.SetRule(fx.user_domain, std::make_unique<SharedAttributeRule>(
                                          std::vector<AttrId>{0, 1}));
  ConstraintSet conjunctive;
  conjunctive.SetRule(fx.user_domain, std::make_unique<AllAttributesRule>(
                                          std::vector<AttrId>{0, 1}));
  for (AnnotationId a : {fx.u1, fx.u2, fx.u3}) {
    for (AnnotationId b : {fx.u1, fx.u2, fx.u3}) {
      if (a == b) continue;
      bool conj =
          conjunctive.Evaluate(fx.user_domain, {a, b}, fx.ctx).allowed;
      bool disj =
          disjunctive.Evaluate(fx.user_domain, {a, b}, fx.ctx).allowed;
      EXPECT_TRUE(!conj || disj);  // conj ⇒ disj
    }
  }
}

}  // namespace
}  // namespace prox
