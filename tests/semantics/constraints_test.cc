#include "semantics/constraints.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(SharedAttributeRuleTest, AllowsSharedGender) {
  MovieFixture fx;
  // U1 (F) and U2 (F) share Gender.
  MergeDecision d = fx.constraints.Evaluate(fx.user_domain, {fx.u1, fx.u2},
                                            fx.ctx);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.name, "Gender:F");
}

TEST(SharedAttributeRuleTest, AttributePriorityOrderNamesFirstMatch) {
  MovieFixture fx;
  // U1 (F, Audience) and U3 (M, Audience) share only Role.
  MergeDecision d = fx.constraints.Evaluate(fx.user_domain, {fx.u1, fx.u3},
                                            fx.ctx);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.name, "Role:Audience");
}

TEST(SharedAttributeRuleTest, RejectsNothingInCommon) {
  MovieFixture fx;
  // U2 (F, Critic) and U3 (M, Audience): no shared attribute.
  MergeDecision d = fx.constraints.Evaluate(fx.user_domain, {fx.u2, fx.u3},
                                            fx.ctx);
  EXPECT_FALSE(d.allowed);
}

TEST(SharedAttributeRuleTest, TransitivityOverThreeMembers) {
  MovieFixture fx;
  // {U1, U2, U3}: F/F/M and Audience/Critic/Audience — no value shared by
  // all three.
  MergeDecision d = fx.constraints.Evaluate(fx.user_domain,
                                            {fx.u1, fx.u2, fx.u3}, fx.ctx);
  EXPECT_FALSE(d.allowed);
}

TEST(SharedAttributeRuleTest, SingletonIsAllowed) {
  MovieFixture fx;
  MergeDecision d = fx.constraints.Evaluate(fx.user_domain, {fx.u1}, fx.ctx);
  EXPECT_TRUE(d.allowed);
}

TEST(ConstraintSetTest, CrossDomainMembersRejected) {
  MovieFixture fx;
  MergeDecision d = fx.constraints.Evaluate(fx.user_domain,
                                            {fx.u1, fx.match_point}, fx.ctx);
  EXPECT_FALSE(d.allowed);
}

TEST(ConstraintSetTest, DomainWithoutRuleRejects) {
  MovieFixture fx;
  MergeDecision d = fx.constraints.Evaluate(
      fx.movie_domain, {fx.match_point, fx.blue_jasmine}, fx.ctx);
  EXPECT_FALSE(d.allowed);
  EXPECT_FALSE(fx.constraints.HasRule(fx.movie_domain));
  EXPECT_TRUE(fx.constraints.HasRule(fx.user_domain));
}

struct TaxonomyRuleFixture {
  AnnotationRegistry registry;
  DomainId page_domain;
  AnnotationId adele, celine, lori, lisbon;
  SemanticContext ctx;
  ConstraintSet constraints;

  TaxonomyRuleFixture() {
    page_domain = registry.AddDomain("page");
    adele = registry.Add(page_domain, "Adele").MoveValue();
    celine = registry.Add(page_domain, "CelineDion").MoveValue();
    lori = registry.Add(page_domain, "LoriBlack").MoveValue();
    lisbon = registry.Add(page_domain, "Lisbon").MoveValue();

    Taxonomy tax;
    ConceptId entity = tax.AddRoot("entity");
    ConceptId person = tax.AddConcept("person", entity).MoveValue();
    ConceptId artist = tax.AddConcept("artist", person).MoveValue();
    ConceptId singer = tax.AddConcept("singer", artist).MoveValue();
    ConceptId guitarist = tax.AddConcept("guitarist", artist).MoveValue();
    ConceptId place = tax.AddConcept("place", entity).MoveValue();

    ctx.registry = &registry;
    ctx.concept_of[adele] = singer;
    ctx.concept_of[celine] = singer;
    ctx.concept_of[lori] = guitarist;
    ctx.concept_of[lisbon] = place;
    ctx.taxonomy = std::move(tax);
    constraints.SetRule(page_domain,
                        std::make_unique<TaxonomyAncestorRule>());
  }
};

TEST(TaxonomyAncestorRuleTest, NamesSummaryAfterLca) {
  TaxonomyRuleFixture fx;
  MergeDecision d = fx.constraints.Evaluate(fx.page_domain,
                                            {fx.adele, fx.celine}, fx.ctx);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.name, "singer");
  EXPECT_DOUBLE_EQ(d.taxonomy_distance_max, 0.0);  // both ARE singers
}

TEST(TaxonomyAncestorRuleTest, CousinsGroupUnderCommonAncestor) {
  TaxonomyRuleFixture fx;
  MergeDecision d = fx.constraints.Evaluate(fx.page_domain,
                                            {fx.adele, fx.lori}, fx.ctx);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.name, "artist");
  EXPECT_GT(d.taxonomy_distance_max, 0.0);
  EXPECT_GT(d.taxonomy_distance_sum, d.taxonomy_distance_max - 1e-12);
}

TEST(TaxonomyAncestorRuleTest, RootOnlyAncestorRejected) {
  TaxonomyRuleFixture fx;
  // singer vs place: LCA is the root — nothing in common.
  MergeDecision d = fx.constraints.Evaluate(fx.page_domain,
                                            {fx.adele, fx.lisbon}, fx.ctx);
  EXPECT_FALSE(d.allowed);
}

TEST(TaxonomyAncestorRuleTest, MemberWithoutConceptRejected) {
  TaxonomyRuleFixture fx;
  AnnotationId orphan =
      fx.registry.Add(fx.page_domain, "Orphan").MoveValue();
  MergeDecision d = fx.constraints.Evaluate(fx.page_domain,
                                            {fx.adele, orphan}, fx.ctx);
  EXPECT_FALSE(d.allowed);
}

struct NumericRuleFixture {
  AnnotationRegistry registry;
  DomainId cost_domain;
  AnnotationId c_cheap, c_mid, c_pricey;
  SemanticContext ctx;
  ConstraintSet constraints;

  NumericRuleFixture() {
    cost_domain = registry.AddDomain("cost_var");
    EntityTable costs("CostVars");
    AttrId cost_attr = costs.AddAttribute("Cost");
    c_cheap = registry.Add(cost_domain, "c1",
                           costs.AddRow({"2"}).MoveValue())
                  .MoveValue();
    c_mid = registry.Add(cost_domain, "c2", costs.AddRow({"3"}).MoveValue())
                .MoveValue();
    c_pricey = registry.Add(cost_domain, "c3",
                            costs.AddRow({"9"}).MoveValue())
                   .MoveValue();
    ctx.registry = &registry;
    ctx.tables.emplace(cost_domain, std::move(costs));
    constraints.SetRule(cost_domain, std::make_unique<NumericToleranceRule>(
                                         cost_attr, 2.0));
  }
};

TEST(NumericToleranceRuleTest, AllowsWithinTolerance) {
  NumericRuleFixture fx;
  MergeDecision d = fx.constraints.Evaluate(fx.cost_domain,
                                            {fx.c_cheap, fx.c_mid}, fx.ctx);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.name, "Cost≈2.5");
}

TEST(NumericToleranceRuleTest, RejectsBeyondTolerance) {
  NumericRuleFixture fx;
  MergeDecision d = fx.constraints.Evaluate(
      fx.cost_domain, {fx.c_cheap, fx.c_pricey}, fx.ctx);
  EXPECT_FALSE(d.allowed);
  // Transitive: {2, 3, 9} spans 7 > 2.
  d = fx.constraints.Evaluate(fx.cost_domain,
                              {fx.c_cheap, fx.c_mid, fx.c_pricey}, fx.ctx);
  EXPECT_FALSE(d.allowed);
}

TEST(AnyMergeRuleTest, AllowsAnySameDomainPair) {
  AnnotationRegistry registry;
  DomainId db_domain = registry.AddDomain("db_var");
  AnnotationId d1 = registry.Add(db_domain, "d1").MoveValue();
  AnnotationId d2 = registry.Add(db_domain, "d2").MoveValue();
  SemanticContext ctx;
  ctx.registry = &registry;
  ConstraintSet constraints;
  constraints.SetRule(db_domain, std::make_unique<AnyMergeRule>("D"));
  MergeDecision d = constraints.Evaluate(db_domain, {d1, d2}, ctx);
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.name, "D" + std::to_string(d1));
}

}  // namespace
}  // namespace prox
