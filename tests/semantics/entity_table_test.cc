#include "semantics/entity_table.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(EntityTableTest, AddAttributeIsIdempotent) {
  EntityTable t("Users");
  AttrId a = t.AddAttribute("Gender");
  AttrId b = t.AddAttribute("Age");
  AttrId c = t.AddAttribute("Gender");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.num_attributes(), 2u);
  EXPECT_EQ(t.attribute_name(a), "Gender");
}

TEST(EntityTableTest, FindAttribute) {
  EntityTable t("Users");
  AttrId a = t.AddAttribute("Gender");
  auto found = t.FindAttribute("Gender");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), a);
  EXPECT_EQ(t.FindAttribute("Shoe").status().code(), StatusCode::kNotFound);
}

TEST(EntityTableTest, InternValueDeduplicates) {
  EntityTable t("Users");
  ValueId a = t.InternValue("M");
  ValueId b = t.InternValue("F");
  ValueId c = t.InternValue("M");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(t.value_name(b), "F");
}

TEST(EntityTableTest, AddRowAndLookup) {
  EntityTable t("Users");
  AttrId gender = t.AddAttribute("Gender");
  AttrId age = t.AddAttribute("Age");
  auto row = t.AddRow({"F", "25-34"});
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.ValueNameOf(row.value(), gender), "F");
  EXPECT_EQ(t.ValueNameOf(row.value(), age), "25-34");
}

TEST(EntityTableTest, SharedValuesShareIds) {
  EntityTable t("Users");
  t.AddAttribute("Gender");
  uint32_t r1 = t.AddRow({"F"}).MoveValue();
  uint32_t r2 = t.AddRow({"F"}).MoveValue();
  uint32_t r3 = t.AddRow({"M"}).MoveValue();
  EXPECT_EQ(t.ValueOf(r1, 0), t.ValueOf(r2, 0));
  EXPECT_NE(t.ValueOf(r1, 0), t.ValueOf(r3, 0));
}

TEST(EntityTableTest, ArityMismatchRejected) {
  EntityTable t("Users");
  t.AddAttribute("Gender");
  t.AddAttribute("Age");
  EXPECT_EQ(t.AddRow({"F"}).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.AddRow({"F", "25", "extra"}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace prox
