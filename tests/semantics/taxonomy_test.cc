#include "semantics/taxonomy.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

/// entity → {person → {artist → {singer, guitarist}, scientist}, place}
struct TaxonomyFixture {
  Taxonomy tax;
  ConceptId entity, person, artist, singer, guitarist, scientist, place;

  TaxonomyFixture() {
    entity = tax.AddRoot("entity");
    person = tax.AddConcept("person", entity).MoveValue();
    artist = tax.AddConcept("artist", person).MoveValue();
    singer = tax.AddConcept("singer", artist).MoveValue();
    guitarist = tax.AddConcept("guitarist", artist).MoveValue();
    scientist = tax.AddConcept("scientist", person).MoveValue();
    place = tax.AddConcept("place", entity).MoveValue();
  }
};

TEST(TaxonomyTest, DepthsCountFromRootAtOne) {
  TaxonomyFixture fx;
  EXPECT_EQ(fx.tax.depth(fx.entity), 1);
  EXPECT_EQ(fx.tax.depth(fx.person), 2);
  EXPECT_EQ(fx.tax.depth(fx.artist), 3);
  EXPECT_EQ(fx.tax.depth(fx.singer), 4);
}

TEST(TaxonomyTest, FindByName) {
  TaxonomyFixture fx;
  EXPECT_EQ(fx.tax.Find("singer").MoveValue(), fx.singer);
  EXPECT_EQ(fx.tax.Find("nope").status().code(), StatusCode::kNotFound);
}

TEST(TaxonomyTest, DuplicateNamesRejected) {
  TaxonomyFixture fx;
  EXPECT_EQ(fx.tax.AddConcept("singer", fx.person).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(TaxonomyTest, LcaOfSiblingsIsParent) {
  TaxonomyFixture fx;
  EXPECT_EQ(fx.tax.Lca(fx.singer, fx.guitarist), fx.artist);
  EXPECT_EQ(fx.tax.Lca(fx.singer, fx.scientist), fx.person);
  EXPECT_EQ(fx.tax.Lca(fx.singer, fx.place), fx.entity);
}

TEST(TaxonomyTest, LcaWithAncestorIsAncestor) {
  TaxonomyFixture fx;
  EXPECT_EQ(fx.tax.Lca(fx.singer, fx.artist), fx.artist);
  EXPECT_EQ(fx.tax.Lca(fx.singer, fx.singer), fx.singer);
}

TEST(TaxonomyTest, IsAncestorFollowsRootPath) {
  TaxonomyFixture fx;
  EXPECT_TRUE(fx.tax.IsAncestor(fx.entity, fx.singer));
  EXPECT_TRUE(fx.tax.IsAncestor(fx.artist, fx.guitarist));
  EXPECT_TRUE(fx.tax.IsAncestor(fx.singer, fx.singer));
  EXPECT_FALSE(fx.tax.IsAncestor(fx.singer, fx.artist));
  EXPECT_FALSE(fx.tax.IsAncestor(fx.place, fx.singer));
}

TEST(TaxonomyTest, SubtreeCollectsDescendants) {
  TaxonomyFixture fx;
  auto subtree = fx.tax.Subtree(fx.artist);
  std::sort(subtree.begin(), subtree.end());
  EXPECT_EQ(subtree, (std::vector<ConceptId>{fx.artist, fx.singer,
                                             fx.guitarist}));
  EXPECT_EQ(fx.tax.Subtree(fx.place), (std::vector<ConceptId>{fx.place}));
}

TEST(TaxonomyTest, WuPalmerSimilarityFormula) {
  TaxonomyFixture fx;
  // sim(singer, guitarist) = 2·depth(artist) / (4 + 4) = 6/8.
  EXPECT_DOUBLE_EQ(fx.tax.WuPalmerSimilarity(fx.singer, fx.guitarist), 0.75);
  // sim(singer, scientist) = 2·2 / (4 + 3) = 4/7.
  EXPECT_DOUBLE_EQ(fx.tax.WuPalmerSimilarity(fx.singer, fx.scientist),
                   4.0 / 7.0);
  EXPECT_DOUBLE_EQ(fx.tax.WuPalmerSimilarity(fx.singer, fx.singer), 1.0);
}

TEST(TaxonomyTest, WuPalmerDistanceIsComplement) {
  TaxonomyFixture fx;
  EXPECT_DOUBLE_EQ(fx.tax.WuPalmerDistance(fx.singer, fx.guitarist), 0.25);
  EXPECT_DOUBLE_EQ(fx.tax.WuPalmerDistance(fx.singer, fx.singer), 0.0);
}

TEST(TaxonomyTest, DeeperLcaMeansSmallerDistance) {
  // The tie-breaking preference of Section 3.2: mapping users to
  // 'Guitarist' beats mapping them to 'Person'.
  TaxonomyFixture fx;
  double to_artist = fx.tax.WuPalmerDistance(fx.singer, fx.artist);
  double to_person = fx.tax.WuPalmerDistance(fx.singer, fx.person);
  double to_entity = fx.tax.WuPalmerDistance(fx.singer, fx.entity);
  EXPECT_LT(to_artist, to_person);
  EXPECT_LT(to_person, to_entity);
}

TEST(TaxonomyTest, ChildrenTracksDirectChildren) {
  TaxonomyFixture fx;
  EXPECT_EQ(fx.tax.children(fx.artist),
            (std::vector<ConceptId>{fx.singer, fx.guitarist}));
  EXPECT_TRUE(fx.tax.children(fx.singer).empty());
}

TEST(TaxonomyTest, ParentOutOfRangeRejected) {
  Taxonomy tax;
  tax.AddRoot("root");
  EXPECT_EQ(tax.AddConcept("x", 99).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace prox
