#include "summarize/valuation_class.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(CancelSingleAnnotationTest, OneValuationPerAnnotation) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  // 3 users + 2 movies.
  EXPECT_EQ(valuations.size(), 5u);
  for (const Valuation& v : valuations) {
    EXPECT_EQ(v.false_set().size(), 1u);
  }
}

TEST(CancelSingleAnnotationTest, DomainFilterRestricts) {
  MovieFixture fx;
  CancelSingleAnnotation cls({fx.user_domain});
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EXPECT_EQ(valuations.size(), 3u);
  for (const Valuation& v : valuations) {
    EXPECT_EQ(fx.registry.domain(v.false_set()[0]), fx.user_domain);
  }
}

TEST(CancelSingleAnnotationTest, LabelsNameTheCancelledAnnotation) {
  MovieFixture fx;
  CancelSingleAnnotation cls({fx.user_domain});
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  bool found = false;
  for (const Valuation& v : valuations) {
    if (v.label() == "cancel U2") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CancelSingleAttributeTest, OneValuationPerAttributeValue) {
  MovieFixture fx;
  CancelSingleAttribute cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  // User attribute values present: Gender {F, M}, Role {Audience, Critic}.
  // Movies carry no entity rows.
  EXPECT_EQ(valuations.size(), 4u);
}

TEST(CancelSingleAttributeTest, CancelsAllCarriers) {
  MovieFixture fx;
  CancelSingleAttribute cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  // "cancel Gender:F" must cancel U1 and U2 together.
  bool found = false;
  for (const Valuation& v : valuations) {
    if (v.label() == "cancel Gender:F") {
      EXPECT_EQ(v.false_set(), (std::vector<AnnotationId>{fx.u1, fx.u2}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ExhaustiveValuationsTest, EnumeratesAllTruthAssignments) {
  MovieFixture fx;
  ExhaustiveValuations cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EXPECT_EQ(valuations.size(), 32u);  // 2^5
  // All distinct.
  std::sort(valuations.begin(), valuations.end(),
            [](const Valuation& a, const Valuation& b) {
              return a.false_set() < b.false_set();
            });
  for (size_t i = 1; i < valuations.size(); ++i) {
    EXPECT_FALSE(valuations[i] == valuations[i - 1]);
  }
}

TEST(ExhaustiveValuationsTest, RefusesBeyondGuardSize) {
  MovieFixture fx;
  ExhaustiveValuations cls(/*max_annotations=*/3);
  EXPECT_TRUE(cls.Generate(*fx.p0, fx.ctx).empty());
}

TEST(CompositeValuationClassTest, ConcatenatesClasses) {
  MovieFixture fx;
  CompositeValuationClass composite;
  composite.Add(std::make_unique<CancelSingleAnnotation>(
      std::vector<DomainId>{fx.user_domain}));
  composite.Add(std::make_unique<CancelSingleAttribute>());
  auto valuations = composite.Generate(*fx.p0, fx.ctx);
  EXPECT_EQ(valuations.size(), 3u + 4u);
}

struct TaxonomyValuationFixture {
  AnnotationRegistry registry;
  DomainId page_domain;
  AnnotationId adele, lori, lisbon;
  SemanticContext ctx;
  std::unique_ptr<AggregateExpression> p0;

  TaxonomyValuationFixture() {
    page_domain = registry.AddDomain("page");
    adele = registry.Add(page_domain, "Adele").MoveValue();
    lori = registry.Add(page_domain, "LoriBlack").MoveValue();
    lisbon = registry.Add(page_domain, "Lisbon").MoveValue();

    Taxonomy tax;
    ConceptId entity = tax.AddRoot("entity");
    ConceptId artist = tax.AddConcept("artist", entity).MoveValue();
    ConceptId singer = tax.AddConcept("singer", artist).MoveValue();
    ConceptId guitarist = tax.AddConcept("guitarist", artist).MoveValue();
    ConceptId place = tax.AddConcept("place", entity).MoveValue();

    ctx.registry = &registry;
    ctx.concept_of[adele] = singer;
    ctx.concept_of[lori] = guitarist;
    ctx.concept_of[lisbon] = place;
    ctx.taxonomy = std::move(tax);

    p0 = std::make_unique<AggregateExpression>(AggKind::kSum);
    for (AnnotationId page : {adele, lori, lisbon}) {
      TensorTerm t;
      t.monomial = Monomial({page});
      t.group = page;
      t.value = {1, 1};
      p0->AddTerm(std::move(t));
    }
    p0->Simplify();
  }
};

TEST(CancelSingleAnnotationTest, TaxonomyConsistentWithLeafConcepts) {
  // Leaf-concept pages have no descendants among the expression's
  // annotations, so closure adds nothing.
  TaxonomyValuationFixture fx;
  CancelSingleAnnotation cls({}, /*taxonomy_consistent=*/true);
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EXPECT_EQ(valuations.size(), 3u);
  for (const Valuation& v : valuations) {
    EXPECT_EQ(v.false_set().size(), 1u);
  }
}

TEST(CancelSingleAnnotationTest, TaxonomyClosureCancelsDescendants) {
  // Attach a page denoting the *artist* concept itself: cancelling it must
  // also cancel the singer and guitarist pages (the consistency rule of
  // Example 5.2.1).
  TaxonomyValuationFixture fx;
  AnnotationId artists_page =
      fx.registry.Add(fx.page_domain, "ArtistsPortal").MoveValue();
  fx.ctx.concept_of[artists_page] =
      fx.ctx.taxonomy->Find("artist").MoveValue();
  TensorTerm t;
  t.monomial = Monomial({artists_page});
  t.group = artists_page;
  t.value = {1, 1};
  fx.p0->AddTerm(std::move(t));
  fx.p0->Simplify();

  CancelSingleAnnotation cls({}, /*taxonomy_consistent=*/true);
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  bool found = false;
  for (const Valuation& v : valuations) {
    if (v.label() == "cancel ArtistsPortal") {
      EXPECT_TRUE(v.IsFalse(artists_page));
      EXPECT_TRUE(v.IsFalse(fx.adele));
      EXPECT_TRUE(v.IsFalse(fx.lori));
      EXPECT_FALSE(v.IsFalse(fx.lisbon));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace prox
