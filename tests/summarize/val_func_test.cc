#include "summarize/val_func.h"

#include <gtest/gtest.h>

#include <cmath>

namespace prox {
namespace {

TEST(AbsoluteDifferenceTest, Scalars) {
  AbsoluteDifferenceValFunc f;
  EXPECT_EQ(f.Compute(EvalResult::Scalar(5), EvalResult::Scalar(3)), 2.0);
  EXPECT_EQ(f.Compute(EvalResult::Scalar(3), EvalResult::Scalar(5)), 2.0);
  EXPECT_EQ(f.Compute(EvalResult::Scalar(4), EvalResult::Scalar(4)), 0.0);
}

TEST(AbsoluteDifferenceTest, VectorsUseL1) {
  AbsoluteDifferenceValFunc f;
  EvalResult a = EvalResult::Vector({{1, 3.0}, {2, 1.0}});
  EvalResult b = EvalResult::Vector({{1, 1.0}, {3, 2.0}});
  // |3-1| + |1-0| + |0-2| = 5
  EXPECT_EQ(f.Compute(a, b), 5.0);
}

TEST(AbsoluteDifferenceTest, MaxErrorIsAllTrueMass) {
  AbsoluteDifferenceValFunc f;
  EXPECT_EQ(f.MaxError(EvalResult::Scalar(5)), 5.0);
  EXPECT_EQ(f.MaxError(EvalResult::Vector({{1, 3.0}, {2, 4.0}})), 7.0);
}

TEST(DisagreementTest, ZeroOnEqualOneOtherwise) {
  DisagreementValFunc f;
  EXPECT_EQ(f.Compute(EvalResult::Scalar(2), EvalResult::Scalar(2)), 0.0);
  EXPECT_EQ(f.Compute(EvalResult::Scalar(2), EvalResult::Scalar(3)), 1.0);
  EXPECT_EQ(f.Compute(EvalResult::Vector({{1, 1.0}}),
                      EvalResult::Vector({{1, 1.0}})),
            0.0);
  EXPECT_EQ(f.Compute(EvalResult::Vector({{1, 1.0}}),
                      EvalResult::Vector({{1, 2.0}})),
            1.0);
  EXPECT_EQ(f.MaxError(EvalResult::Scalar(100)), 1.0);
}

TEST(EuclideanTest, ScalarDegeneratesToAbsoluteDifference) {
  EuclideanValFunc f;
  EXPECT_EQ(f.Compute(EvalResult::Scalar(5), EvalResult::Scalar(2)), 3.0);
}

TEST(EuclideanTest, VectorL2Distance) {
  EuclideanValFunc f;
  EvalResult a = EvalResult::Vector({{1, 3.0}, {2, 0.0}});
  EvalResult b = EvalResult::Vector({{1, 0.0}, {2, 4.0}});
  EXPECT_DOUBLE_EQ(f.Compute(a, b), 5.0);  // sqrt(9 + 16)
}

TEST(EuclideanTest, DisjointKeysTreatedAsZeros) {
  EuclideanValFunc f;
  EvalResult a = EvalResult::Vector({{1, 3.0}});
  EvalResult b = EvalResult::Vector({{2, 4.0}});
  EXPECT_DOUBLE_EQ(f.Compute(a, b), 5.0);
}

TEST(EuclideanTest, Example521WikipediaDistance) {
  // Example 5.2.1: projected original (guitarist: 2, singer: 0) vs summary
  // (guitarist: 2, singer: 1) → distance 1.
  EuclideanValFunc f;
  EvalResult orig = EvalResult::Vector({{10, 2.0}, {11, 0.0}});
  EvalResult summ = EvalResult::Vector({{10, 2.0}, {11, 1.0}});
  EXPECT_DOUBLE_EQ(f.Compute(orig, summ), 1.0);
}

TEST(EuclideanTest, MaxErrorBoundsAnyBoxDistance) {
  EuclideanValFunc f;
  EvalResult all_true = EvalResult::Vector({{1, 3.0}, {2, 4.0}});
  double bound = f.MaxError(all_true);
  EXPECT_EQ(bound, 7.0);  // L1 norm
  // The actual max L2 distance within the box is 5 ≤ 7.
  EXPECT_GE(bound, f.Compute(all_true, EvalResult::Vector({})));
}

TEST(DdpDifferenceTest, BothFeasibleComparesCosts) {
  DdpDifferenceValFunc f(10, 5);
  EXPECT_EQ(f.Compute(EvalResult::CostBool(7, true),
                      EvalResult::CostBool(4, true)),
            3.0);
}

TEST(DdpDifferenceTest, BothInfeasibleIsZero) {
  DdpDifferenceValFunc f(10, 5);
  EXPECT_EQ(f.Compute(EvalResult::CostBool(0, false),
                      EvalResult::CostBool(0, false)),
            0.0);
}

TEST(DdpDifferenceTest, FeasibilityMismatchIsMaxError) {
  // Example 5.2.2: max cost per transition (10) × transitions (5) = 50.
  DdpDifferenceValFunc f(10, 5);
  EXPECT_EQ(f.Compute(EvalResult::CostBool(7, true),
                      EvalResult::CostBool(0, false)),
            50.0);
  EXPECT_EQ(f.MaxError(EvalResult::CostBool(0, true)), 50.0);
}

TEST(DdpDifferenceTest, CustomBoundsChangeMaxError) {
  DdpDifferenceValFunc f(3, 4);
  EXPECT_EQ(f.MaxError(EvalResult::CostBool(0, true)), 12.0);
}

TEST(ValFuncTest, Names) {
  EXPECT_EQ(AbsoluteDifferenceValFunc().name(), "AbsoluteDifference");
  EXPECT_EQ(DisagreementValFunc().name(), "Disagreement");
  EXPECT_EQ(EuclideanValFunc().name(), "Euclidean");
  EXPECT_EQ(DdpDifferenceValFunc().name(), "DdpDifference");
}

}  // namespace
}  // namespace prox
