#include "summarize/summarizer.h"

#include <gtest/gtest.h>

#include "summarize/valuation_class.h"
#include "summarize/val_func.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

struct Harness {
  MovieFixture fx;
  std::vector<Valuation> valuations;
  EuclideanValFunc vf;
  std::unique_ptr<EnumeratedDistance> oracle;

  explicit Harness(bool attribute_valuations = false) {
    if (attribute_valuations) {
      CancelSingleAttribute cls;
      valuations = cls.Generate(*fx.p0, fx.ctx);
    } else {
      CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
      valuations = cls.Generate(*fx.p0, fx.ctx);
    }
    oracle = std::make_unique<EnumeratedDistance>(fx.p0.get(), &fx.registry,
                                                  &vf, valuations);
  }

  Result<SummaryOutcome> Run(SummarizerOptions options) {
    Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints,
                 oracle.get(), &valuations, options);
    return s.Run();
  }
};

TEST(SummarizerTest, Example423PicksAudienceOverFemale) {
  Harness h;
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().steps.size(), 1u);
  EXPECT_EQ(outcome.value().steps[0].summary_name, "Role:Audience");
  EXPECT_EQ(outcome.value().final_distance, 0.0);
  EXPECT_EQ(outcome.value().final_size, 6);  // 8 - 2 (merged tensor)
}

TEST(SummarizerTest, PureSizeWeightStillMerges) {
  Harness h;
  SummarizerOptions options;
  options.w_dist = 0.0;
  options.w_size = 1.0;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  // Both candidates shrink the expression; one merge must happen.
  EXPECT_EQ(outcome.value().steps.size(), 1u);
  EXPECT_LT(outcome.value().final_size, 8);
}

TEST(SummarizerTest, StopsAtTargetSize) {
  Harness h;
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.target_size = 8;  // already satisfied
  options.group_equivalent_first = false;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().steps.empty());
  EXPECT_EQ(outcome.value().final_size, 8);
}

TEST(SummarizerTest, TargetDistRollbackReturnsPreviousExpression) {
  // Restrict the constraints to Gender only, so the sole candidate is
  // {U1, U2} -> Female, whose distance is positive and overshoots the tiny
  // TARGET-DIST; Algorithm 1 line 11 must return the previous expression.
  MovieFixture fx;
  fx.constraints.SetRule(fx.user_domain, std::make_unique<SharedAttributeRule>(
                                             std::vector<AttrId>{0}));
  CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.target_dist = 1e-9;
  options.group_equivalent_first = false;
  options.max_steps = 10;
  Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints, &oracle,
               &valuations, options);
  auto outcome = s.Run();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().rolled_back);
  EXPECT_LT(outcome.value().final_distance, 1e-9);
  EXPECT_EQ(outcome.value().final_size, fx.p0->Size());  // back to p0
  EXPECT_EQ(outcome.value().steps.size(), 1u);  // the attempted step logged
}

TEST(SummarizerTest, MaxStepsBoundsIterations) {
  Harness h(/*attribute_valuations=*/true);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().steps.size(), 1u);
}

TEST(SummarizerTest, GroupEquivalentMergesIdenticalProfiles) {
  // Add U4 with U1's exact profile: under cancel-single-attribute
  // valuations U1 and U4 are equivalent and merged at distance 0 before
  // the greedy loop.
  MovieFixture fx;
  uint32_t row =
      fx.ctx.tables.at(fx.user_domain).AddRow({"F", "Audience"}).MoveValue();
  AnnotationId u4 = fx.registry.Add(fx.user_domain, "U4", row).MoveValue();
  fx.AddRating(u4, fx.blue_jasmine, 2);
  fx.p0->Simplify();

  CancelSingleAttribute cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);
  SummarizerOptions options;
  options.max_steps = 0;  // equivalence grouping only
  Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints, &oracle,
               &valuations, options);
  auto outcome = s.Run();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().equivalence_merges, 1);
  EXPECT_EQ(outcome.value().final_distance, 0.0);
  EXPECT_EQ(outcome.value().state.cumulative().Map(fx.u1),
            outcome.value().state.cumulative().Map(u4));
}

TEST(SummarizerTest, DeterministicAcrossRuns) {
  Harness h1(true), h2(true);
  SummarizerOptions options;
  options.w_dist = 0.7;
  options.w_size = 0.3;
  options.max_steps = 3;
  auto a = h1.Run(options);
  auto b = h2.Run(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().final_size, b.value().final_size);
  EXPECT_EQ(a.value().final_distance, b.value().final_distance);
  ASSERT_EQ(a.value().steps.size(), b.value().steps.size());
  for (size_t i = 0; i < a.value().steps.size(); ++i) {
    EXPECT_EQ(a.value().steps[i].summary_name,
              b.value().steps[i].summary_name);
  }
}

TEST(SummarizerTest, KWayMergeReducesMoreAtOnce) {
  // The future-work extension (§9): arity 3 merges three annotations per
  // step. Add U4 = (F, Audience) so a 3-subset exists.
  MovieFixture fx;
  uint32_t row =
      fx.ctx.tables.at(fx.user_domain).AddRow({"F", "Audience"}).MoveValue();
  AnnotationId u4 = fx.registry.Add(fx.user_domain, "U4", row).MoveValue();
  fx.AddRating(u4, fx.match_point, 4);
  fx.p0->Simplify();

  CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  options.candidates.arity = 3;
  Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints, &oracle,
               &valuations, options);
  auto outcome = s.Run();
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().steps.size(), 1u);
  EXPECT_EQ(outcome.value().steps[0].merged_roots.size(), 3u);
}

TEST(SummarizerTest, OrdinalRanksPickAValidCandidate) {
  Harness h(true);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 2;
  options.use_ordinal_ranks = true;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().steps.size(), 1u);
  EXPECT_LT(outcome.value().final_size, 8);
}

TEST(SummarizerTest, RejectsNegativeWeights) {
  Harness h;
  SummarizerOptions options;
  options.w_dist = -0.5;
  auto outcome = h.Run(options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(SummarizerTest, RejectsBothWeightsZero) {
  Harness h;
  SummarizerOptions options;
  options.w_dist = 0.0;
  options.w_size = 0.0;
  auto outcome = h.Run(options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(SummarizerTest, NormalizesWeightsThatDoNotSumToOne) {
  // 0.9/0.3 normalizes to 0.75/0.25; the outcome must be identical to
  // requesting the convex combination directly (a common scale factor
  // cannot change the candidate ranking).
  SummarizerOptions skewed;
  skewed.w_dist = 0.9;
  skewed.w_size = 0.3;
  skewed.max_steps = 3;
  skewed.group_equivalent_first = false;
  SummarizerOptions convex;
  convex.w_dist = 0.75;
  convex.w_size = 0.25;
  convex.max_steps = 3;
  convex.group_equivalent_first = false;

  Harness h_skewed;
  Harness h_convex;
  auto a = h_skewed.Run(skewed);
  auto b = h_convex.Run(convex);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().steps.size(), b.value().steps.size());
  for (size_t i = 0; i < a.value().steps.size(); ++i) {
    EXPECT_EQ(a.value().steps[i].merged_roots,
              b.value().steps[i].merged_roots);
    EXPECT_DOUBLE_EQ(a.value().steps[i].score, b.value().steps[i].score);
  }
  EXPECT_EQ(a.value().final_size, b.value().final_size);
  EXPECT_DOUBLE_EQ(a.value().final_distance, b.value().final_distance);
}

TEST(SummarizerTest, RejectsArityBelowTwo) {
  Harness h;
  SummarizerOptions options;
  options.candidates.arity = 1;
  auto outcome = h.Run(options);
  EXPECT_FALSE(outcome.ok());
}

TEST(SummarizerTest, StepRecordsCarryDiagnostics) {
  Harness h;
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().steps.size(), 1u);
  const StepRecord& step = outcome.value().steps[0];
  EXPECT_EQ(step.step, 1);
  EXPECT_EQ(step.num_candidates, 2);
  EXPECT_EQ(step.merged_roots.size(), 2u);
  EXPECT_GT(step.step_nanos, 0.0);
  EXPECT_GT(step.candidate_eval_nanos, 0.0);
  EXPECT_GT(outcome.value().total_nanos, 0.0);
}

TEST(SummarizerTest, DistanceNeverDecreasesAlongSteps) {
  Harness h(true);
  SummarizerOptions options;
  options.w_dist = 0.0;
  options.w_size = 1.0;
  options.max_steps = 6;
  options.group_equivalent_first = false;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  double prev = 0.0;
  int64_t prev_size = 8;
  for (const StepRecord& step : outcome.value().steps) {
    EXPECT_GE(step.distance, prev - 1e-12);
    EXPECT_LE(step.size, prev_size);
    prev = step.distance;
    prev_size = step.size;
  }
}

}  // namespace
}  // namespace prox
