#include "summarize/candidates.h"

#include <gtest/gtest.h>

#include <set>

#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(CandidateGeneratorTest, EnumeratesAllowedPairsOnly) {
  MovieFixture fx;
  CandidateGenerator gen(&fx.constraints, &fx.ctx);
  MappingState state(&fx.registry, PhiConfig{});
  auto candidates = gen.Generate(*fx.p0, state, CandidateOptions{});
  // Allowed user pairs: {U1,U2} (Gender:F) and {U1,U3} (Role:Audience);
  // {U2,U3} shares nothing; movies have no rule.
  ASSERT_EQ(candidates.size(), 2u);
  std::set<std::vector<AnnotationId>> roots;
  for (const auto& c : candidates) {
    roots.insert(c.roots);
    EXPECT_TRUE(c.decision.allowed);
    EXPECT_EQ(c.domain, fx.user_domain);
  }
  EXPECT_TRUE(roots.count({fx.u1, fx.u2}));
  EXPECT_TRUE(roots.count({fx.u1, fx.u3}));
}

TEST(CandidateGeneratorTest, NamesComeFromConstraintDecision) {
  MovieFixture fx;
  CandidateGenerator gen(&fx.constraints, &fx.ctx);
  MappingState state(&fx.registry, PhiConfig{});
  auto candidates = gen.Generate(*fx.p0, state, CandidateOptions{});
  std::set<std::string> names;
  for (const auto& c : candidates) names.insert(c.decision.name);
  EXPECT_TRUE(names.count("Gender:F"));
  EXPECT_TRUE(names.count("Role:Audience"));
}

TEST(CandidateGeneratorTest, MergedGroupsCheckedOnUnionOfMembers) {
  MovieFixture fx;
  // After merging U1,U2 -> Female, the only remaining pair is
  // {Female, U3}, whose member union {U1,U2,U3} shares nothing — no
  // candidates.
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto current = fx.p0->Apply(h);

  CandidateGenerator gen(&fx.constraints, &fx.ctx);
  auto candidates = gen.Generate(*current, state, CandidateOptions{});
  EXPECT_TRUE(candidates.empty());
}

TEST(CandidateGeneratorTest, AudienceGroupCanStillAbsorbNothingButU2) {
  MovieFixture fx;
  // After merging U1,U3 -> Audience: pair {Audience, U2} has member union
  // {U1,U2,U3} — not allowed. No candidates.
  AnnotationId audience = fx.registry.AddSummary(fx.user_domain, "Audience");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u3}, audience);
  Homomorphism h;
  h.Set(fx.u1, audience);
  h.Set(fx.u3, audience);
  auto current = fx.p0->Apply(h);

  CandidateGenerator gen(&fx.constraints, &fx.ctx);
  auto candidates = gen.Generate(*current, state, CandidateOptions{});
  EXPECT_TRUE(candidates.empty());
}

TEST(CandidateGeneratorTest, ThreeWayArityEnumeratesTriples) {
  // Add U4 = (F, Audience): with arity 3, {U1, U2, U4} all share Gender:F
  // and {U1, U3, U4} all share Role:Audience.
  MovieFixture fx;
  uint32_t row =
      fx.ctx.tables.at(fx.user_domain).AddRow({"F", "Audience"}).MoveValue();
  AnnotationId u4 =
      fx.registry.Add(fx.user_domain, "U4", row).MoveValue();
  fx.AddRating(u4, fx.match_point, 4);
  fx.p0->Simplify();

  CandidateGenerator gen(&fx.constraints, &fx.ctx);
  MappingState state(&fx.registry, PhiConfig{});
  CandidateOptions opts;
  opts.arity = 3;
  auto candidates = gen.Generate(*fx.p0, state, opts);
  std::set<std::vector<AnnotationId>> roots;
  for (const auto& c : candidates) roots.insert(c.roots);
  EXPECT_TRUE(roots.count({fx.u1, fx.u2, u4}));
  EXPECT_TRUE(roots.count({fx.u1, fx.u3, u4}));
  EXPECT_FALSE(roots.count({fx.u1, fx.u2, fx.u3}));
}

TEST(CandidateGeneratorTest, MaxCandidatesCapsDeterministically) {
  MovieFixture fx;
  CandidateGenerator gen(&fx.constraints, &fx.ctx);
  MappingState state(&fx.registry, PhiConfig{});
  CandidateOptions opts;
  opts.max_candidates = 1;
  auto first = gen.Generate(*fx.p0, state, opts);
  auto second = gen.Generate(*fx.p0, state, opts);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].roots, second[0].roots);
}

TEST(CandidateGeneratorTest, RootsAreSortedAndDeterministicOrder) {
  MovieFixture fx;
  CandidateGenerator gen(&fx.constraints, &fx.ctx);
  MappingState state(&fx.registry, PhiConfig{});
  auto a = gen.Generate(*fx.p0, state, CandidateOptions{});
  auto b = gen.Generate(*fx.p0, state, CandidateOptions{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].roots, b[i].roots);
    EXPECT_TRUE(std::is_sorted(a[i].roots.begin(), a[i].roots.end()));
  }
}

}  // namespace
}  // namespace prox
