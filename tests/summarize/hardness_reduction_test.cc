// Proposition 4.1.1 states DIST-COMP is #P-hard, by reduction from #DNF:
// mapping every variable of a (positive) DNF formula f to a single summary
// annotation A makes the exact distance (w.r.t. all valuations and the
// disagreement VAL-FUNC) reveal the number of satisfying valuations of f.
// This test *executes* the reduction: it recovers #SAT(f) from
// dist(f, h(f)) and checks it against brute-force model counting.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "provenance/aggregate_expr.h"
#include "summarize/distance.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"

namespace prox {
namespace {

struct Dnf {
  int num_vars;
  std::vector<std::vector<int>> monomials;  // variable indices, non-empty

  bool Satisfied(uint64_t mask) const {
    for (const auto& mono : monomials) {
      bool all = true;
      for (int v : mono) {
        if (!(mask & (uint64_t{1} << v))) {
          all = false;
          break;
        }
      }
      if (all) return true;
    }
    return false;
  }

  uint64_t CountSatisfying() const {
    uint64_t count = 0;
    for (uint64_t mask = 0; mask < (uint64_t{1} << num_vars); ++mask) {
      if (Satisfied(mask)) ++count;
    }
    return count;
  }
};

Dnf RandomDnf(Rng* rng, int num_vars, int num_monomials) {
  Dnf f;
  for (int m = 0; m < num_monomials; ++m) {
    int width = 1 + static_cast<int>(rng->PickIndex(3));
    std::vector<int> mono;
    for (int i = 0; i < width; ++i) {
      mono.push_back(static_cast<int>(rng->PickIndex(num_vars)));
    }
    f.monomials.push_back(std::move(mono));
  }
  // Compact to the variables actually used, so the valuation space of the
  // encoded expression matches 2^{num_vars} exactly.
  std::map<int, int> remap;
  for (auto& mono : f.monomials) {
    for (int& v : mono) {
      auto [it, inserted] = remap.emplace(v, static_cast<int>(remap.size()));
      v = it->second;
    }
  }
  f.num_vars = static_cast<int>(remap.size());
  return f;
}

class HardnessReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(HardnessReductionTest, DistanceRevealsModelCount) {
  Rng rng(GetParam());
  Dnf f = RandomDnf(&rng, 3 + static_cast<int>(rng.PickIndex(5)),
                    2 + rng.PickIndex(4));
  const int num_vars = f.num_vars;

  // Encode f as a boolean-valued provenance expression (MAX aggregation of
  // 1-valued tensors: evaluates to 1 iff some monomial is satisfied).
  AnnotationRegistry registry;
  DomainId domain = registry.AddDomain("var");
  std::vector<AnnotationId> vars;
  for (int v = 0; v < num_vars; ++v) {
    vars.push_back(
        registry.Add(domain, "x" + std::to_string(v)).MoveValue());
  }
  AggregateExpression expr(AggKind::kMax);
  for (const auto& mono : f.monomials) {
    std::vector<AnnotationId> factors;
    for (int v : mono) factors.push_back(vars[v]);
    TensorTerm t;
    t.monomial = Monomial(std::move(factors));
    t.group = kNoAnnotation;
    t.value = {1, 1};
    expr.AddTerm(std::move(t));
  }
  expr.Simplify();

  // h: every variable -> A, with φ = OR.
  SemanticContext ctx;
  ctx.registry = &registry;
  ExhaustiveValuations all_cls;
  auto valuations = all_cls.Generate(expr, ctx);
  ASSERT_EQ(valuations.size(), uint64_t{1} << num_vars);

  DisagreementValFunc vf;
  EnumeratedDistance oracle(&expr, &registry, &vf, valuations);

  AnnotationId a = registry.AddSummary(domain, "A");
  MappingState state(&registry, PhiConfig{});
  state.Merge(vars, a);
  Homomorphism h;
  for (AnnotationId v : vars) h.Set(v, a);
  auto hf = expr.Apply(h);

  const double dist = oracle.Distance(*hf, state);
  const uint64_t total = uint64_t{1} << num_vars;

  // Positive DNF: h(f) is true iff some variable is true, so the
  // disagreeing valuations are exactly the unsatisfying ones except the
  // all-false valuation (where both sides are 0).
  const uint64_t unsat_from_dist =
      static_cast<uint64_t>(std::llround(dist * total)) + 1;
  const uint64_t sat_from_dist = total - unsat_from_dist;
  EXPECT_EQ(sat_from_dist, f.CountSatisfying());
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, HardnessReductionTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace prox
