#include "summarize/mapping_state.h"

#include <gtest/gtest.h>

#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(MappingStateTest, FreshStateIsIdentity) {
  MovieFixture fx;
  MappingState state(&fx.registry, PhiConfig{});
  EXPECT_TRUE(state.cumulative().IsIdentity());
  EXPECT_EQ(state.num_merges(), 0);
  EXPECT_EQ(state.Members(fx.u1), (std::vector<AnnotationId>{fx.u1}));
}

TEST(MappingStateTest, MergeUpdatesHomomorphismAndMembers) {
  MovieFixture fx;
  MappingState state(&fx.registry, PhiConfig{});
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  state.Merge({fx.u1, fx.u2}, female);
  EXPECT_EQ(state.cumulative().Map(fx.u1), female);
  EXPECT_EQ(state.cumulative().Map(fx.u2), female);
  EXPECT_EQ(state.cumulative().Map(fx.u3), fx.u3);
  EXPECT_EQ(state.Members(female), (std::vector<AnnotationId>{fx.u1, fx.u2}));
  EXPECT_EQ(state.num_merges(), 1);
}

TEST(MappingStateTest, ChainedMergesFlattenMembers) {
  MovieFixture fx;
  MappingState state(&fx.registry, PhiConfig{});
  AnnotationId g1 = fx.registry.AddSummary(fx.user_domain, "G1");
  AnnotationId g2 = fx.registry.AddSummary(fx.user_domain, "G2");
  state.Merge({fx.u1, fx.u2}, g1);
  state.Merge({g1, fx.u3}, g2);
  EXPECT_EQ(state.cumulative().Map(fx.u1), g2);
  EXPECT_EQ(state.cumulative().Map(fx.u2), g2);
  EXPECT_EQ(state.cumulative().Map(fx.u3), g2);
  EXPECT_EQ(state.Members(g2),
            (std::vector<AnnotationId>{fx.u1, fx.u2, fx.u3}));
  // The intermediate group no longer tracks members separately.
  EXPECT_EQ(state.Members(g1), (std::vector<AnnotationId>{g1}));
}

TEST(MappingStateTest, TransformOrCancelsOnlyWhenAllMembersFalse) {
  // φ = ∨: the summary is cancelled only if all members are cancelled
  // (Section 3.2).
  MovieFixture fx;
  MappingState state(&fx.registry, PhiConfig{});
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  state.Merge({fx.u1, fx.u2}, female);

  MaterializedValuation one_false =
      state.Transform(Valuation({fx.u1}), fx.registry.size());
  EXPECT_TRUE(one_false.truth(female));
  EXPECT_FALSE(one_false.truth(fx.u1));

  MaterializedValuation both_false =
      state.Transform(Valuation({fx.u1, fx.u2}), fx.registry.size());
  EXPECT_FALSE(both_false.truth(female));
}

TEST(MappingStateTest, TransformAndCancelsWhenAnyMemberFalse) {
  MovieFixture fx;
  PhiConfig phi;
  phi.fallback = PhiKind::kAnd;
  MappingState state(&fx.registry, phi);
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  state.Merge({fx.u1, fx.u2}, female);

  MaterializedValuation one_false =
      state.Transform(Valuation({fx.u1}), fx.registry.size());
  EXPECT_FALSE(one_false.truth(female));

  MaterializedValuation none_false =
      state.Transform(Valuation(), fx.registry.size());
  EXPECT_TRUE(none_false.truth(female));
}

TEST(MappingStateTest, PerDomainPhiOverride) {
  MovieFixture fx;
  PhiConfig phi;
  phi.fallback = PhiKind::kOr;
  phi.per_domain[fx.movie_domain] = PhiKind::kAnd;
  MappingState state(&fx.registry, phi);
  EXPECT_EQ(state.PhiFor(fx.user_domain), PhiKind::kOr);
  EXPECT_EQ(state.PhiFor(fx.movie_domain), PhiKind::kAnd);
}

TEST(MappingStateTest, CopyIsIndependent) {
  MovieFixture fx;
  MappingState state(&fx.registry, PhiConfig{});
  AnnotationId g1 = fx.registry.AddSummary(fx.user_domain, "G1");
  state.Merge({fx.u1, fx.u2}, g1);

  MappingState copy = state;
  AnnotationId g2 = fx.registry.AddSummary(fx.user_domain, "G2");
  copy.Merge({g1, fx.u3}, g2);

  EXPECT_EQ(state.cumulative().Map(fx.u3), fx.u3);
  EXPECT_EQ(copy.cumulative().Map(fx.u3), g2);
  EXPECT_EQ(state.num_merges(), 1);
  EXPECT_EQ(copy.num_merges(), 2);
}

TEST(MappingStateTest, SummariesRecordCreationOrder) {
  MovieFixture fx;
  MappingState state(&fx.registry, PhiConfig{});
  AnnotationId g1 = fx.registry.AddSummary(fx.user_domain, "G1");
  AnnotationId g2 = fx.registry.AddSummary(fx.user_domain, "G2");
  state.Merge({fx.u1, fx.u2}, g1);
  state.Merge({g1, fx.u3}, g2);
  ASSERT_EQ(state.summaries().size(), 2u);
  EXPECT_EQ(state.summaries()[0].first, g1);
  EXPECT_EQ(state.summaries()[1].first, g2);
  EXPECT_EQ(state.summaries()[1].second,
            (std::vector<AnnotationId>{fx.u1, fx.u2, fx.u3}));
}

}  // namespace
}  // namespace prox
