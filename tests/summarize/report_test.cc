#include "summarize/report.h"

#include <gtest/gtest.h>

#include "summarize/distance.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

SummaryOutcome RunFixture(MovieFixture* fx, SummarizerOptions options,
                          std::vector<Valuation>* valuations_out,
                          std::unique_ptr<EnumeratedDistance>* oracle_out) {
  CancelSingleAnnotation cls(std::vector<DomainId>{fx->user_domain});
  *valuations_out = cls.Generate(*fx->p0, fx->ctx);
  static EuclideanValFunc vf;
  *oracle_out = std::make_unique<EnumeratedDistance>(fx->p0.get(),
                                                     &fx->registry, &vf,
                                                     *valuations_out);
  Summarizer s(fx->p0.get(), &fx->registry, &fx->ctx, &fx->constraints,
               oracle_out->get(), valuations_out, options);
  return s.Run().MoveValue();
}

TEST(SummaryReporterTest, GroupsCarryMembersAndAttributes) {
  MovieFixture fx;
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  std::vector<Valuation> valuations;
  std::unique_ptr<EnumeratedDistance> oracle;
  SummaryOutcome outcome = RunFixture(&fx, options, &valuations, &oracle);

  SummaryReporter reporter(&fx.ctx);
  auto groups = reporter.Groups(outcome);
  ASSERT_EQ(groups.size(), 1u);
  const GroupReport& g = groups[0];
  EXPECT_EQ(g.name, "Role:Audience");
  EXPECT_EQ(g.member_names, (std::vector<std::string>{"U1", "U3"}));
  // Attribute breakdown (Figure 7.6): one F and one M audience member.
  EXPECT_EQ(g.attribute_histogram.at("Gender").at("F"), 1);
  EXPECT_EQ(g.attribute_histogram.at("Gender").at("M"), 1);
  EXPECT_EQ(g.attribute_histogram.at("Role").at("Audience"), 2);
  // Aggregate contribution: MAX(3, 3) = 3 (Figure 7.5's AGG column).
  ASSERT_TRUE(g.has_aggregate);
  EXPECT_EQ(g.aggregate, 3.0);
}

TEST(SummaryReporterTest, AbsorbedGroupsAreSkipped) {
  MovieFixture fx;
  // Manually chain two merges so the first group is absorbed.
  AnnotationId g1 = fx.registry.AddSummary(fx.user_domain, "G1");
  AnnotationId g2 = fx.registry.AddSummary(fx.user_domain, "G2");
  SummaryOutcome outcome{nullptr, MappingState(&fx.registry, PhiConfig{}),
                         {},      0.0,
                         0,       false,
                         0,       0.0};
  outcome.state.Merge({fx.u1, fx.u2}, g1);
  outcome.state.Merge({g1, fx.u3}, g2);
  outcome.summary = fx.p0->Apply(outcome.state.cumulative());

  SummaryReporter reporter(&fx.ctx);
  auto groups = reporter.Groups(outcome);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].name, "G2");
  EXPECT_EQ(groups[0].member_names.size(), 3u);
}

TEST(SummaryReporterTest, TraceDescribesSteps) {
  MovieFixture fx;
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  std::vector<Valuation> valuations;
  std::unique_ptr<EnumeratedDistance> oracle;
  SummaryOutcome outcome = RunFixture(&fx, options, &valuations, &oracle);

  SummaryReporter reporter(&fx.ctx);
  auto trace = reporter.Trace(outcome);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_NE(trace[0].find("step 1"), std::string::npos);
  EXPECT_NE(trace[0].find("U1"), std::string::npos);
  EXPECT_NE(trace[0].find("Role:Audience"), std::string::npos);
}

TEST(SummaryReporterTest, RollbackNotedInTrace) {
  MovieFixture fx;
  fx.constraints.SetRule(fx.user_domain, std::make_unique<SharedAttributeRule>(
                                             std::vector<AttrId>{0}));
  CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.target_dist = 1e-9;
  options.group_equivalent_first = false;
  Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints, &oracle,
               &valuations, options);
  SummaryOutcome outcome = s.Run().MoveValue();
  ASSERT_TRUE(outcome.rolled_back);

  SummaryReporter reporter(&fx.ctx);
  auto trace = reporter.Trace(outcome);
  ASSERT_FALSE(trace.empty());
  EXPECT_NE(trace.back().find("rolled back"), std::string::npos);
}

}  // namespace
}  // namespace prox
