// Property-based reproduction of Proposition 4.2.2: along any chain of
// homomorphisms p0 -> p1 -> ... the distance from p0 is non-decreasing and
// the size non-increasing, for every shipped VAL-FUNC, φ ∈ {OR, AND} and
// aggregation ∈ {MAX, MIN, SUM}.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/rng.h"
#include "provenance/aggregate_expr.h"
#include "summarize/distance.h"
#include "summarize/mapping_state.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"

namespace prox {
namespace {

enum class FuncKind { kAbsolute, kDisagreement, kEuclidean };

std::unique_ptr<ValFunc> MakeFunc(FuncKind kind) {
  switch (kind) {
    case FuncKind::kAbsolute:
      return std::make_unique<AbsoluteDifferenceValFunc>();
    case FuncKind::kDisagreement:
      return std::make_unique<DisagreementValFunc>();
    case FuncKind::kEuclidean:
      return std::make_unique<EuclideanValFunc>();
  }
  return nullptr;
}

using Params = std::tuple<AggKind, PhiKind, FuncKind, int>;

class MonotonicityTest : public ::testing::TestWithParam<Params> {};

TEST_P(MonotonicityTest, DistanceGrowsSizeShrinksAlongMergeChains) {
  const auto [agg, phi_kind, func_kind, seed] = GetParam();
  Rng rng(seed);

  // Random expression: `n` users rating `m` movies.
  AnnotationRegistry registry;
  DomainId user_domain = registry.AddDomain("user");
  DomainId movie_domain = registry.AddDomain("movie");
  const int n = 6, m = 3;
  std::vector<AnnotationId> users, movies;
  for (int u = 0; u < n; ++u) {
    users.push_back(
        registry.Add(user_domain, "U" + std::to_string(u)).MoveValue());
  }
  for (int v = 0; v < m; ++v) {
    movies.push_back(
        registry.Add(movie_domain, "M" + std::to_string(v)).MoveValue());
  }
  AggregateExpression p0(agg);
  for (int u = 0; u < n; ++u) {
    int count = 1 + static_cast<int>(rng.PickIndex(m));
    for (int r = 0; r < count; ++r) {
      TensorTerm t;
      AnnotationId movie = movies[rng.PickIndex(m)];
      t.monomial = Monomial({users[u], movie});
      t.group = movie;
      t.value = {1.0 + static_cast<double>(rng.PickIndex(5)), 1.0};
      p0.AddTerm(std::move(t));
    }
  }
  p0.Simplify();

  SemanticContext ctx;
  ctx.registry = &registry;
  CancelSingleAnnotation cls(std::vector<DomainId>{user_domain});
  auto valuations = cls.Generate(p0, ctx);
  auto vf = MakeFunc(func_kind);
  EnumeratedDistance oracle(&p0, &registry, vf.get(), valuations);

  PhiConfig phi;
  phi.fallback = phi_kind;
  MappingState state(&registry, phi);
  std::unique_ptr<ProvenanceExpression> current = p0.Clone();

  double prev_dist = oracle.Distance(*current, state);
  int64_t prev_size = current->Size();
  EXPECT_EQ(prev_dist, 0.0);

  // Random chain of user merges until one root remains.
  std::vector<AnnotationId> roots = users;
  while (roots.size() > 1) {
    size_t i = rng.PickIndex(roots.size());
    size_t j = rng.PickIndex(roots.size() - 1);
    if (j >= i) ++j;
    AnnotationId summary = registry.AddSummary(user_domain, "G");
    state.Merge({roots[i], roots[j]}, summary);
    Homomorphism h;
    h.Set(roots[i], summary);
    h.Set(roots[j], summary);
    current = current->Apply(h);

    roots.erase(roots.begin() + std::max(i, j));
    roots.erase(roots.begin() + std::min(i, j));
    roots.push_back(summary);

    double dist = oracle.Distance(*current, state);
    int64_t size = current->Size();
    EXPECT_GE(dist, prev_dist - 1e-12)
        << "distance decreased along the chain (agg="
        << AggKindToString(agg) << ")";
    EXPECT_LE(size, prev_size) << "size increased along the chain";
    prev_dist = dist;
    prev_size = size;
  }
}

// MAX and SUM are monotone for both φ combiners (Proposition 4.2.2's
// cases cover them directly).
INSTANTIATE_TEST_SUITE_P(
    MaxSum, MonotonicityTest,
    ::testing::Combine(
        ::testing::Values(AggKind::kMax, AggKind::kSum),
        ::testing::Values(PhiKind::kOr, PhiKind::kAnd),
        ::testing::Values(FuncKind::kAbsolute, FuncKind::kDisagreement,
                          FuncKind::kEuclidean),
        ::testing::Range(0, 4)));

// MIN is monotone with φ = ∨ (the thesis's case c). With φ = ∧ it is NOT:
// see MinWithAndCounterexample below — the proposition's "similar proof
// exists for φ = ∧" does not extend to MIN under the empty-coordinate-
// evaluates-to-0 convention the thesis itself uses (Example 5.2.1).
INSTANTIATE_TEST_SUITE_P(
    MinOr, MonotonicityTest,
    ::testing::Combine(
        ::testing::Values(AggKind::kMin), ::testing::Values(PhiKind::kOr),
        ::testing::Values(FuncKind::kAbsolute, FuncKind::kDisagreement,
                          FuncKind::kEuclidean),
        ::testing::Range(0, 4)));

TEST(MonotonicityCounterexampleTest, MinWithAndIsNotMonotone) {
  // MIN + φ=∧ counterexample. Movie M1 is rated by d (10) and e (3); users
  // b and c rate M2 and are both cancelled by the valuation v.
  //   v(p0):  M1 = min(10, 3) = 3.
  //   p1 = merge {e, b}: the ∧-group is false under v, e's tensor dies,
  //        M1 = 10 → error |10 − 3| = 7.
  //   p2 = further merge {d, c}: d's tensor dies too, M1 empties to 0 →
  //        error |0 − 3| = 3 < 7. Distance DECREASED along the chain.
  AnnotationRegistry registry;
  DomainId user_domain = registry.AddDomain("user");
  DomainId movie_domain = registry.AddDomain("movie");
  AnnotationId d = registry.Add(user_domain, "d").MoveValue();
  AnnotationId e = registry.Add(user_domain, "e").MoveValue();
  AnnotationId b = registry.Add(user_domain, "b").MoveValue();
  AnnotationId c = registry.Add(user_domain, "c").MoveValue();
  AnnotationId m1 = registry.Add(movie_domain, "M1").MoveValue();
  AnnotationId m2 = registry.Add(movie_domain, "M2").MoveValue();

  AggregateExpression p0(AggKind::kMin);
  auto add = [&](AnnotationId user, AnnotationId movie, double score) {
    TensorTerm t;
    t.monomial = Monomial({user, movie});
    t.group = movie;
    t.value = {score, 1};
    p0.AddTerm(std::move(t));
  };
  add(d, m1, 10);
  add(e, m1, 3);
  add(b, m2, 1);
  add(c, m2, 1);
  p0.Simplify();

  SemanticContext ctx;
  ctx.registry = &registry;
  std::vector<Valuation> valuations = {Valuation({b, c}, "cancel b,c")};
  AbsoluteDifferenceValFunc vf;
  EnumeratedDistance oracle(&p0, &registry, &vf, valuations);

  PhiConfig phi;
  phi.fallback = PhiKind::kAnd;
  MappingState state(&registry, phi);

  AnnotationId g1 = registry.AddSummary(user_domain, "G1");
  state.Merge({e, b}, g1);
  Homomorphism h1;
  h1.Set(e, g1);
  h1.Set(b, g1);
  auto p1 = p0.Apply(h1);
  double d1 = oracle.Distance(*p1, state);

  AnnotationId g2 = registry.AddSummary(user_domain, "G2");
  state.Merge({d, c}, g2);
  Homomorphism h2;
  h2.Set(d, g2);
  h2.Set(c, g2);
  auto p2 = p1->Apply(h2);
  double d2 = oracle.Distance(*p2, state);

  EXPECT_GT(d1, 0.0);
  EXPECT_LT(d2, d1);  // the violation Proposition 4.2.2 does not cover
}

}  // namespace
}  // namespace prox
