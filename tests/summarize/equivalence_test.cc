#include "summarize/equivalence.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

/// Brute-force check of Proposition 4.2.1's equivalence definition.
bool BruteForceEquivalent(AnnotationId a, AnnotationId b,
                          const std::vector<Valuation>& valuations) {
  for (const Valuation& v : valuations) {
    if (v.IsTrue(a) != v.IsTrue(b)) return false;
  }
  return true;
}

TEST(EquivalenceTest, NoValuationsGroupsPerDomain) {
  MovieFixture fx;
  auto classes = EquivalenceClasses(
      {fx.u1, fx.u2, fx.u3, fx.match_point, fx.blue_jasmine}, {},
      fx.registry);
  // With no valuations, everything in one domain is equivalent.
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0], (std::vector<AnnotationId>{fx.u1, fx.u2, fx.u3}));
  EXPECT_EQ(classes[1],
            (std::vector<AnnotationId>{fx.match_point, fx.blue_jasmine}));
}

TEST(EquivalenceTest, CancelSingleAnnotationSeparatesEverything) {
  MovieFixture fx;
  std::vector<Valuation> valuations;
  for (AnnotationId a : {fx.u1, fx.u2, fx.u3}) {
    valuations.emplace_back(std::vector<AnnotationId>{a});
  }
  auto classes =
      EquivalenceClasses({fx.u1, fx.u2, fx.u3}, valuations, fx.registry);
  EXPECT_EQ(classes.size(), 3u);
  for (const auto& cls : classes) EXPECT_EQ(cls.size(), 1u);
}

TEST(EquivalenceTest, AttributeValuationsGroupIdenticalProfiles) {
  // U1 and U2 are cancelled together by "Gender:F" but separated by the
  // Role valuations; a fourth user identical to U1 joins U1's class.
  MovieFixture fx;
  AnnotationId u4 =
      fx.registry
          .Add(fx.user_domain, "U4",
               fx.ctx.tables.at(fx.user_domain).ValueOf(0, 0) == kNoValue
                   ? kNoEntity
                   : 0)  // same row as U1: (F, Audience)
          .MoveValue();
  std::vector<Valuation> valuations = {
      Valuation({fx.u1, fx.u2, u4}, "Gender:F"),
      Valuation({fx.u3}, "Gender:M"),
      Valuation({fx.u1, fx.u3, u4}, "Role:Audience"),
      Valuation({fx.u2}, "Role:Critic"),
  };
  auto classes = EquivalenceClasses({fx.u1, fx.u2, fx.u3, u4}, valuations,
                                    fx.registry);
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0], (std::vector<AnnotationId>{fx.u1, u4}));
  EXPECT_EQ(classes[1], (std::vector<AnnotationId>{fx.u2}));
  EXPECT_EQ(classes[2], (std::vector<AnnotationId>{fx.u3}));
}

TEST(EquivalenceTest, DifferentDomainsNeverMergeEvenIfIndistinguishable) {
  MovieFixture fx;
  // A valuation that touches neither users nor movies leaves all of them
  // "equivalent", but the domain refinement keeps them apart.
  std::vector<Valuation> valuations = {Valuation()};
  auto classes = EquivalenceClasses({fx.u1, fx.match_point}, valuations,
                                    fx.registry);
  EXPECT_EQ(classes.size(), 2u);
}

TEST(EquivalenceTest, InputDeduplicatedAndSorted) {
  MovieFixture fx;
  auto classes = EquivalenceClasses({fx.u2, fx.u1, fx.u2}, {}, fx.registry);
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], (std::vector<AnnotationId>{fx.u1, fx.u2}));
}

class EquivalenceRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalenceRandomTest, AgreesWithBruteForcePairwiseCheck) {
  Rng rng(GetParam());
  AnnotationRegistry registry;
  DomainId d0 = registry.AddDomain("a");
  DomainId d1 = registry.AddDomain("b");
  std::vector<AnnotationId> anns;
  for (int i = 0; i < 12; ++i) {
    anns.push_back(registry
                       .Add(rng.Bernoulli(0.5) ? d0 : d1,
                            "n" + std::to_string(i))
                       .MoveValue());
  }
  std::vector<Valuation> valuations;
  for (int v = 0; v < 5; ++v) {
    std::vector<AnnotationId> cancelled;
    for (AnnotationId a : anns) {
      if (rng.Bernoulli(0.4)) cancelled.push_back(a);
    }
    valuations.emplace_back(std::move(cancelled));
  }

  auto classes = EquivalenceClasses(anns, valuations, registry);

  // Build a class id per annotation.
  std::map<AnnotationId, int> class_of;
  for (size_t c = 0; c < classes.size(); ++c) {
    for (AnnotationId a : classes[c]) class_of[a] = static_cast<int>(c);
  }
  ASSERT_EQ(class_of.size(), anns.size());
  for (AnnotationId a : anns) {
    for (AnnotationId b : anns) {
      bool same_class = class_of[a] == class_of[b];
      bool equivalent = BruteForceEquivalent(a, b, valuations) &&
                        registry.domain(a) == registry.domain(b);
      EXPECT_EQ(same_class, equivalent)
          << registry.name(a) << " vs " << registry.name(b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, EquivalenceRandomTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace prox
