// Tests for the score-shaping options: taxonomy-weighted scoring
// (Section 3.2's "incorporated as part of the computation") and weighted
// valuation classes (the w(v) of the VAL-FUNC examples).

#include <gtest/gtest.h>

#include "summarize/distance.h"
#include "summarize/summarizer.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

/// Wikipedia-style fixture where two page merges tie on distance and size
/// but differ in taxonomy distance: {Adele, Celine} share the deep LCA
/// "singer" while {Adele, Lori} only share "artist".
struct TaxonomyScoreFixture {
  AnnotationRegistry registry;
  DomainId page_domain;
  AnnotationId adele, celine, lori;
  SemanticContext ctx;
  ConstraintSet constraints;
  std::unique_ptr<AggregateExpression> p0;

  TaxonomyScoreFixture() {
    page_domain = registry.AddDomain("page");
    adele = registry.Add(page_domain, "Adele").MoveValue();
    celine = registry.Add(page_domain, "CelineDion").MoveValue();
    lori = registry.Add(page_domain, "LoriBlack").MoveValue();

    Taxonomy tax;
    ConceptId entity = tax.AddRoot("entity");
    ConceptId artist = tax.AddConcept("artist", entity).MoveValue();
    ConceptId singer = tax.AddConcept("singer", artist).MoveValue();
    ConceptId guitarist = tax.AddConcept("guitarist", artist).MoveValue();
    ctx.registry = &registry;
    ctx.concept_of[adele] = singer;
    ctx.concept_of[celine] = singer;
    ctx.concept_of[lori] = guitarist;
    ctx.taxonomy = std::move(tax);
    constraints.SetRule(page_domain,
                        std::make_unique<TaxonomyAncestorRule>());

    // Symmetric tensors so every pair merge has identical distance/size.
    p0 = std::make_unique<AggregateExpression>(AggKind::kSum);
    for (AnnotationId page : {adele, celine, lori}) {
      TensorTerm t;
      t.monomial = Monomial({page});
      t.group = kNoAnnotation;  // single aggregate: fully symmetric
      t.value = {1, 1};
      p0->AddTerm(std::move(t));
    }
    p0->Simplify();
  }
};

TEST(TaxonomyWeightedScoringTest, PositiveWeightPrefersDeeperLca) {
  TaxonomyScoreFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.w_taxonomy = 0.5;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  options.tie_break = TieBreak::kFirst;  // isolate the score term
  Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints, &oracle,
               &valuations, options);
  auto outcome = s.Run();
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().steps.size(), 1u);
  // {Adele, Celine} -> singer (taxonomy distance 0) must win over the
  // artist-level merges.
  EXPECT_EQ(outcome.value().steps[0].summary_name, "singer");
}

TEST(TaxonomyWeightedScoringTest, TieBreakAloneAlsoPrefersDeeperLca) {
  TaxonomyScoreFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.w_taxonomy = 0.0;  // scores tie; the tie-break must decide
  options.max_steps = 1;
  options.group_equivalent_first = false;
  options.tie_break = TieBreak::kTaxonomyMax;
  Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints, &oracle,
               &valuations, options);
  auto outcome = s.Run();
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().steps.size(), 1u);
  EXPECT_EQ(outcome.value().steps[0].summary_name, "singer");
}

TEST(WeightedValuationTest, GroupSizeWeightingChangesDistance) {
  MovieFixture fx;
  CancelSingleAttribute uniform({}, CancelSingleAttribute::Weighting::kUniform);
  CancelSingleAttribute weighted({},
                                 CancelSingleAttribute::Weighting::kGroupSize);
  auto uniform_vals = uniform.Generate(*fx.p0, fx.ctx);
  auto weighted_vals = weighted.Generate(*fx.p0, fx.ctx);
  ASSERT_EQ(uniform_vals.size(), weighted_vals.size());

  bool any_weight_above_one = false;
  for (const Valuation& v : weighted_vals) {
    EXPECT_EQ(v.weight(), static_cast<double>(v.false_set().size()));
    if (v.weight() > 1.0) any_weight_above_one = true;
  }
  EXPECT_TRUE(any_weight_above_one);

  // The two weightings disagree on the distance of the Female merge
  // (valuations cancelling larger groups count more).
  EuclideanValFunc vf;
  EnumeratedDistance uniform_oracle(fx.p0.get(), &fx.registry, &vf,
                                    uniform_vals);
  EnumeratedDistance weighted_oracle(fx.p0.get(), &fx.registry, &vf,
                                     weighted_vals);
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);
  double du = uniform_oracle.Distance(*cand, state);
  double dw = weighted_oracle.Distance(*cand, state);
  EXPECT_GT(du, 0.0);
  EXPECT_GT(dw, 0.0);
  EXPECT_NE(du, dw);
}

}  // namespace
}  // namespace prox
