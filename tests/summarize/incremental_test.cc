// The incremental scorer must produce exactly the scores of the naive
// path (materialize + evaluate), and the summarizer with incremental
// scoring on must make identical choices.

#include "summarize/incremental.h"

#include <gtest/gtest.h>

#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "summarize/candidates.h"
#include "summarize/summarizer.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

TEST(IncrementalScorerTest, MatchesNaiveOnMovieFixture) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);
  MappingState state(&fx.registry, PhiConfig{});

  auto scorer = IncrementalScorer::Create(
      fx.p0.get(), &oracle, &state, IncrementalScorer::Metric::kEuclidean);
  ASSERT_NE(scorer, nullptr);

  for (auto roots : {std::vector<AnnotationId>{fx.u1, fx.u2},
                     std::vector<AnnotationId>{fx.u1, fx.u3},
                     std::vector<AnnotationId>{fx.u2, fx.u3},
                     std::vector<AnnotationId>{fx.u1, fx.u2, fx.u3}}) {
    ASSERT_TRUE(scorer->CanScore(roots));
    IncrementalScorer::Score fast = scorer->ScoreMerge(roots);

    AnnotationId tmp = fx.registry.AddSummary(fx.user_domain, "~tmp");
    MappingState tentative = state;
    tentative.Merge(roots, tmp);
    Homomorphism h;
    for (AnnotationId r : roots) h.Set(r, tmp);
    auto cand = fx.p0->Apply(h);
    EXPECT_NEAR(fast.distance, oracle.Distance(*cand, tentative), 1e-12);
    EXPECT_EQ(fast.size, cand->Size());
  }
}

TEST(IncrementalScorerTest, GroupKeyMergesAreRejected) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);
  MappingState state(&fx.registry, PhiConfig{});
  auto scorer = IncrementalScorer::Create(
      fx.p0.get(), &oracle, &state, IncrementalScorer::Metric::kEuclidean);
  ASSERT_NE(scorer, nullptr);
  EXPECT_FALSE(scorer->CanScore({fx.match_point, fx.blue_jasmine}));
}

TEST(IncrementalScorerTest, GuardedTermsHandled) {
  // Terms guarded by [S·U ⊗ n > 2]: merging users must track guard-body
  // occurrences too.
  AnnotationRegistry reg;
  DomainId users = reg.AddDomain("user");
  DomainId stats = reg.AddDomain("stats");
  DomainId movies = reg.AddDomain("movie");
  AnnotationId u1 = reg.Add(users, "U1").MoveValue();
  AnnotationId u2 = reg.Add(users, "U2").MoveValue();
  AnnotationId s1 = reg.Add(stats, "S1").MoveValue();
  AnnotationId s2 = reg.Add(stats, "S2").MoveValue();
  AnnotationId m = reg.Add(movies, "M").MoveValue();
  AggregateExpression p0(AggKind::kMax);
  for (auto [u, s, score] :
       {std::tuple{u1, s1, 3.0}, std::tuple{u2, s2, 5.0}}) {
    TensorTerm t;
    t.monomial = Monomial({u, m});
    t.guard = Guard(Monomial({s, u}), 5.0, CompareOp::kGt, 2.0);
    t.group = m;
    t.value = {score, 1};
    p0.AddTerm(std::move(t));
  }
  p0.Simplify();

  SemanticContext ctx;
  ctx.registry = &reg;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(p0, ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(&p0, &reg, &vf, valuations);
  MappingState state(&reg, PhiConfig{});
  auto scorer = IncrementalScorer::Create(
      &p0, &oracle, &state, IncrementalScorer::Metric::kEuclidean);
  ASSERT_NE(scorer, nullptr);

  IncrementalScorer::Score fast = scorer->ScoreMerge({u1, u2});
  AnnotationId tmp = reg.AddSummary(users, "~tmp");
  MappingState tentative = state;
  tentative.Merge({u1, u2}, tmp);
  Homomorphism h;
  h.Set(u1, tmp);
  h.Set(u2, tmp);
  auto cand = p0.Apply(h);
  EXPECT_NEAR(fast.distance, oracle.Distance(*cand, tentative), 1e-12);
  EXPECT_EQ(fast.size, cand->Size());
}

class IncrementalDatasetTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDatasetTest, AllCandidatesMatchNaiveOnMovieLens) {
  MovieLensConfig config;
  config.num_users = 14;
  config.num_movies = 6;
  config.ratings_per_user = 4;
  config.seed = GetParam();
  Dataset ds = MovieLensGenerator::Generate(config);
  auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  MappingState state(ds.registry.get(), ds.phi);
  const auto* agg =
      dynamic_cast<const AggregateExpression*>(ds.provenance.get());
  auto scorer = IncrementalScorer::Create(
      agg, &oracle, &state, IncrementalScorer::Metric::kEuclidean);
  ASSERT_NE(scorer, nullptr);

  CandidateGenerator gen(&ds.constraints, &ds.ctx);
  auto candidates = gen.Generate(*ds.provenance, state, CandidateOptions{});
  ASSERT_FALSE(candidates.empty());
  int checked = 0;
  for (const Candidate& c : candidates) {
    if (!scorer->CanScore(c.roots)) continue;
    IncrementalScorer::Score fast = scorer->ScoreMerge(c.roots);
    AnnotationId tmp = ds.registry->AddSummary(c.domain, "~tmp");
    MappingState tentative = state;
    tentative.Merge(c.roots, tmp);
    Homomorphism h;
    for (AnnotationId r : c.roots) h.Set(r, tmp);
    auto cand = ds.provenance->Apply(h);
    ASSERT_NEAR(fast.distance, oracle.Distance(*cand, tentative), 1e-10);
    ASSERT_EQ(fast.size, cand->Size());
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDatasetTest,
                         ::testing::Range(1, 5));

TEST(IncrementalSummarizerTest, SameChoicesAsNaive) {
  auto run = [](SummarizerOptions::Incremental mode) {
    MovieLensConfig config;
    config.num_users = 16;
    config.num_movies = 6;
    config.seed = 3;
    Dataset ds = MovieLensGenerator::Generate(config);
    auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
    EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                              ds.val_func.get(), valuations);
    SummarizerOptions options;
    options.w_dist = 0.6;
    options.w_size = 0.4;
    options.max_steps = 6;
    options.incremental = mode;
    options.phi = ds.phi;
    Summarizer s(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                 &ds.constraints, &oracle, &valuations, options);
    auto outcome = s.Run().MoveValue();
    std::vector<std::string> names;
    for (const StepRecord& step : outcome.steps) {
      names.push_back(step.summary_name);
    }
    return std::make_tuple(outcome.final_distance, outcome.final_size,
                           names);
  };
  auto naive = run(SummarizerOptions::Incremental::kOff);
  auto fast = run(SummarizerOptions::Incremental::kEuclidean);
  EXPECT_NEAR(std::get<0>(naive), std::get<0>(fast), 1e-12);
  EXPECT_EQ(std::get<1>(naive), std::get<1>(fast));
  EXPECT_EQ(std::get<2>(naive), std::get<2>(fast));
}

TEST(IncrementalScorerTest, WikipediaSumAggregationMatches) {
  WikipediaConfig config;
  config.num_users = 12;
  config.num_pages = 8;
  Dataset ds = WikipediaGenerator::Generate(config);
  auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  MappingState state(ds.registry.get(), ds.phi);
  const auto* agg =
      dynamic_cast<const AggregateExpression*>(ds.provenance.get());
  auto scorer = IncrementalScorer::Create(
      agg, &oracle, &state, IncrementalScorer::Metric::kEuclidean);
  ASSERT_NE(scorer, nullptr);

  auto users = ds.registry->AnnotationsInDomain(ds.domain("wiki_user"));
  std::vector<AnnotationId> roots = {users[0], users[1]};
  ASSERT_TRUE(scorer->CanScore(roots));
  IncrementalScorer::Score fast = scorer->ScoreMerge(roots);
  AnnotationId tmp =
      ds.registry->AddSummary(ds.domain("wiki_user"), "~tmp");
  MappingState tentative = state;
  tentative.Merge(roots, tmp);
  Homomorphism h;
  h.Set(roots[0], tmp);
  h.Set(roots[1], tmp);
  auto cand = ds.provenance->Apply(h);
  EXPECT_NEAR(fast.distance, oracle.Distance(*cand, tentative), 1e-10);
  EXPECT_EQ(fast.size, cand->Size());
}

}  // namespace
}  // namespace prox
