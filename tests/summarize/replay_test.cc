// ExpressionAtStep — the step-through navigation of the summary view.

#include <gtest/gtest.h>

#include "summarize/distance.h"
#include "summarize/report.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

struct ReplayHarness {
  MovieFixture fx;
  std::vector<Valuation> valuations;
  EuclideanValFunc vf;
  std::unique_ptr<EnumeratedDistance> oracle;
  SummaryOutcome outcome{nullptr, MappingState(nullptr, PhiConfig{}), {},
                         0.0,     0,
                         false,   0,
                         0.0};

  explicit ReplayHarness(SummarizerOptions options) {
    // Add U4 identical to U1 so two steps are possible after equivalence.
    uint32_t row = fx.ctx.tables.at(fx.user_domain)
                       .AddRow({"F", "Audience"})
                       .MoveValue();
    AnnotationId u4 = fx.registry.Add(fx.user_domain, "U4", row).MoveValue();
    fx.AddRating(u4, fx.blue_jasmine, 2);
    fx.p0->Simplify();

    CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
    valuations = cls.Generate(*fx.p0, fx.ctx);
    oracle = std::make_unique<EnumeratedDistance>(fx.p0.get(), &fx.registry,
                                                  &vf, valuations);
    Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints,
                 oracle.get(), &valuations, options);
    outcome = s.Run().MoveValue();
  }
};

TEST(ReplayTest, StepZeroIsOriginalWithoutEquivalence) {
  SummarizerOptions options;
  options.w_dist = 1.0;
  options.w_size = 0.0;
  options.max_steps = 2;
  options.group_equivalent_first = false;
  ReplayHarness h(options);

  auto at0 = ExpressionAtStep(*h.fx.p0, h.outcome, 0);
  ASSERT_TRUE(at0.ok());
  EXPECT_EQ(at0.value()->Size(), h.fx.p0->Size());
  EXPECT_EQ(at0.value()->ToString(h.fx.registry),
            h.fx.p0->ToString(h.fx.registry));
}

TEST(ReplayTest, IntermediateStepsMatchRecordedSizes) {
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 3;
  options.group_equivalent_first = false;
  ReplayHarness h(options);
  ASSERT_GE(h.outcome.steps.size(), 2u);

  for (size_t k = 1; k <= h.outcome.steps.size(); ++k) {
    auto at_k = ExpressionAtStep(*h.fx.p0, h.outcome, static_cast<int>(k));
    ASSERT_TRUE(at_k.ok()) << at_k.status();
    EXPECT_EQ(at_k.value()->Size(), h.outcome.steps[k - 1].size)
        << "step " << k;
  }
}

TEST(ReplayTest, FinalStepEqualsOutcomeSummary) {
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 3;
  ReplayHarness h(options);
  auto last = ExpressionAtStep(
      *h.fx.p0, h.outcome,
      static_cast<int>(h.outcome.state.summaries().size()) -
          h.outcome.equivalence_merges);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last.value()->ToString(h.fx.registry),
            h.outcome.summary->ToString(h.fx.registry));
}

TEST(ReplayTest, OutOfRangeIsError) {
  SummarizerOptions options;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  ReplayHarness h(options);
  EXPECT_FALSE(ExpressionAtStep(*h.fx.p0, h.outcome, -1).ok());
  EXPECT_FALSE(ExpressionAtStep(*h.fx.p0, h.outcome, 99).ok());
}

}  // namespace
}  // namespace prox
