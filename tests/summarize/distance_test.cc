#include "summarize/distance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "summarize/valuation_class.h"
#include "summarize/val_func.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

/// Brute-force distance: re-derives Definition 3.2.2 with no caching.
double BruteForceDistance(const ProvenanceExpression& p0,
                          const ProvenanceExpression& cand,
                          const MappingState& state,
                          const std::vector<Valuation>& valuations,
                          const ValFunc& vf, size_t registry_size) {
  double total = 0.0, weights = 0.0;
  for (const Valuation& v : valuations) {
    EvalResult base = p0.Evaluate(MaterializedValuation(v, registry_size));
    EvalResult proj = cand.ProjectEvalResult(base, state.cumulative());
    EvalResult summ = cand.Evaluate(state.Transform(v, registry_size));
    total += v.weight() * vf.Compute(proj, summ);
    weights += v.weight();
  }
  EvalResult all_true = p0.Evaluate(MaterializedValuation(registry_size));
  double max_error = vf.MaxError(all_true);
  return (total / weights) / max_error;
}

TEST(EnumeratedDistanceTest, IdentityMappingHasZeroDistance) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);
  MappingState state(&fx.registry, PhiConfig{});
  EXPECT_EQ(oracle.Distance(*fx.p0, state), 0.0);
}

TEST(EnumeratedDistanceTest, Example423AudienceBeatsFemale) {
  // The flow of Example 4.2.3: mapping U1,U3 -> Audience is at distance 0;
  // mapping U1,U2 -> Female is not (cancelling U2 disagrees).
  MovieFixture fx;
  CancelSingleAnnotation cls({fx.user_domain});
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  AnnotationId audience = fx.registry.AddSummary(fx.user_domain, "Audience");
  MappingState audience_state(&fx.registry, PhiConfig{});
  audience_state.Merge({fx.u1, fx.u3}, audience);
  Homomorphism ha;
  ha.Set(fx.u1, audience);
  ha.Set(fx.u3, audience);
  auto p_audience = fx.p0->Apply(ha);
  EXPECT_EQ(oracle.Distance(*p_audience, audience_state), 0.0);

  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState female_state(&fx.registry, PhiConfig{});
  female_state.Merge({fx.u1, fx.u2}, female);
  Homomorphism hf;
  hf.Set(fx.u1, female);
  hf.Set(fx.u2, female);
  auto p_female = fx.p0->Apply(hf);
  EXPECT_GT(oracle.Distance(*p_female, female_state), 0.0);
}

TEST(EnumeratedDistanceTest, MatchesBruteForceRederivation) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);

  double expected = BruteForceDistance(*fx.p0, *cand, state, valuations, vf,
                                       fx.registry.size());
  EXPECT_NEAR(oracle.Distance(*cand, state), expected, 1e-12);
}

TEST(EnumeratedDistanceTest, WeightsScaleContributions) {
  MovieFixture fx;
  // Two copies of the same valuation, one with triple weight, must give
  // the same distance as one copy (weighted average).
  std::vector<Valuation> uniform = {Valuation({fx.u2}, "a", 1.0)};
  std::vector<Valuation> weighted = {Valuation({fx.u2}, "a", 3.0)};
  EuclideanValFunc vf;
  EnumeratedDistance o1(fx.p0.get(), &fx.registry, &vf, uniform);
  EnumeratedDistance o2(fx.p0.get(), &fx.registry, &vf, weighted);

  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);
  EXPECT_NEAR(o1.Distance(*cand, state), o2.Distance(*cand, state), 1e-12);
}

TEST(EnumeratedDistanceTest, NormalizedDistanceStaysInUnitInterval) {
  MovieFixture fx;
  CancelSingleAttribute cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  // Merge everything mergeable and check the bound.
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);
  double d = oracle.Distance(*cand, state);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(SampledDistanceTest, RequiredSamplesMatchesHoeffding) {
  EXPECT_EQ(SampledDistance::RequiredSamples(0.05, 0.05),
            static_cast<int>(
                std::ceil(std::log(2.0 / 0.05) / (2 * 0.05 * 0.05))));
  EXPECT_GT(SampledDistance::RequiredSamples(0.01, 0.05),
            SampledDistance::RequiredSamples(0.1, 0.05));
  EXPECT_GT(SampledDistance::RequiredSamples(0.05, 0.01),
            SampledDistance::RequiredSamples(0.05, 0.1));
}

TEST(SampledDistanceTest, ZeroDistanceForIdentity) {
  MovieFixture fx;
  EuclideanValFunc vf;
  SampledDistance::Options opts;
  opts.num_samples = 200;
  SampledDistance oracle(fx.p0.get(), &fx.registry, &vf, opts);
  MappingState state(&fx.registry, PhiConfig{});
  EXPECT_EQ(oracle.Distance(*fx.p0, state), 0.0);
}

TEST(SampledDistanceTest, ConvergesToExhaustiveAverage) {
  // Proposition 4.1.2: the Monte-Carlo estimate over all 2^n valuations
  // approaches the exhaustive enumeration's value.
  MovieFixture fx;
  EuclideanValFunc vf;

  ExhaustiveValuations exhaustive_cls;
  auto all = exhaustive_cls.Generate(*fx.p0, fx.ctx);
  EnumeratedDistance exact(fx.p0.get(), &fx.registry, &vf, all);

  SampledDistance::Options opts;
  opts.num_samples = 20000;
  opts.seed = 99;
  SampledDistance sampled(fx.p0.get(), &fx.registry, &vf, opts);

  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);

  double exact_d = exact.Distance(*cand, state);
  double approx_d = sampled.Distance(*cand, state);
  EXPECT_NEAR(approx_d, exact_d, 0.01);
}

TEST(SampledDistanceTest, DeterministicForFixedSeed) {
  MovieFixture fx;
  EuclideanValFunc vf;
  SampledDistance::Options opts;
  opts.num_samples = 500;
  opts.seed = 7;
  SampledDistance a(fx.p0.get(), &fx.registry, &vf, opts);
  SampledDistance b(fx.p0.get(), &fx.registry, &vf, opts);

  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);
  EXPECT_EQ(a.Distance(*cand, state), b.Distance(*cand, state));
}

class SamplingEpsilonTest : public ::testing::TestWithParam<double> {};

TEST_P(SamplingEpsilonTest, EstimateWithinEpsilonOfTruth) {
  // Statistical check of the (ε, δ) guarantee at several ε values; the
  // Hoeffding bound is conservative, so a single run landing inside ε is
  // the overwhelmingly likely outcome.
  const double epsilon = GetParam();
  MovieFixture fx;
  EuclideanValFunc vf;

  ExhaustiveValuations exhaustive_cls;
  auto all = exhaustive_cls.Generate(*fx.p0, fx.ctx);
  EnumeratedDistance exact(fx.p0.get(), &fx.registry, &vf, all);

  SampledDistance::Options opts;
  opts.epsilon = epsilon;
  opts.delta = 0.01;
  opts.seed = 1234;
  SampledDistance sampled(fx.p0.get(), &fx.registry, &vf, opts);
  EXPECT_EQ(sampled.num_samples(),
            SampledDistance::RequiredSamples(epsilon, 0.01));

  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);
  EXPECT_NEAR(sampled.Distance(*cand, state), exact.Distance(*cand, state),
              epsilon);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, SamplingEpsilonTest,
                         ::testing::Values(0.02, 0.05, 0.1));

}  // namespace
}  // namespace prox
