// The EnumeratedDistance projection fast path (identity group mapping)
// must agree exactly with the general path that projects through the
// cumulative homomorphism.

#include <gtest/gtest.h>

#include "summarize/distance.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

/// Re-derivation that always takes the general (projecting) path.
double SlowDistance(const ProvenanceExpression& p0,
                    const ProvenanceExpression& cand,
                    const MappingState& state,
                    const std::vector<Valuation>& valuations,
                    const ValFunc& vf, size_t n) {
  EvalResult all_true = p0.Evaluate(MaterializedValuation(n));
  double max_error = vf.MaxError(all_true);
  double total = 0.0, weights = 0.0;
  for (const Valuation& v : valuations) {
    EvalResult base = p0.Evaluate(MaterializedValuation(v, n));
    EvalResult orig = cand.ProjectEvalResult(base, state.cumulative());
    EvalResult summ = cand.Evaluate(state.Transform(v, n));
    total += v.weight() * vf.Compute(orig, summ);
    weights += v.weight();
  }
  return (total / weights) / max_error;
}

TEST(DistanceFastPathTest, UserOnlyMergeMatchesGeneralPath) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  // User merge: group keys untouched -> fast path taken.
  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  auto cand = fx.p0->Apply(h);

  EXPECT_NEAR(oracle.Distance(*cand, state),
              SlowDistance(*fx.p0, *cand, state, valuations, vf,
                           fx.registry.size()),
              1e-12);
}

TEST(DistanceFastPathTest, MovieMergeTakesProjectingPathAndAgrees) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  // Movie merge: group keys remap -> projection required.
  AnnotationId merged =
      fx.registry.AddSummary(fx.movie_domain, "WoodyAllen");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.match_point, fx.blue_jasmine}, merged);
  Homomorphism h;
  h.Set(fx.match_point, merged);
  h.Set(fx.blue_jasmine, merged);
  auto cand = fx.p0->Apply(h);

  EXPECT_NEAR(oracle.Distance(*cand, state),
              SlowDistance(*fx.p0, *cand, state, valuations, vf,
                           fx.registry.size()),
              1e-12);
}

TEST(DistanceFastPathTest, MixedMergeSequencesAgree) {
  MovieFixture fx;
  CancelSingleAnnotation cls;
  auto valuations = cls.Generate(*fx.p0, fx.ctx);
  EuclideanValFunc vf;
  EnumeratedDistance oracle(fx.p0.get(), &fx.registry, &vf, valuations);

  AnnotationId female = fx.registry.AddSummary(fx.user_domain, "Female");
  AnnotationId merged =
      fx.registry.AddSummary(fx.movie_domain, "WoodyAllen");
  MappingState state(&fx.registry, PhiConfig{});
  state.Merge({fx.u1, fx.u2}, female);
  state.Merge({fx.match_point, fx.blue_jasmine}, merged);
  Homomorphism h;
  h.Set(fx.u1, female);
  h.Set(fx.u2, female);
  h.Set(fx.match_point, merged);
  h.Set(fx.blue_jasmine, merged);
  auto cand = fx.p0->Apply(h);

  EXPECT_NEAR(oracle.Distance(*cand, state),
              SlowDistance(*fx.p0, *cand, state, valuations, vf,
                           fx.registry.size()),
              1e-12);
}

}  // namespace
}  // namespace prox
