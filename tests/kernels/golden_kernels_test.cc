// Golden bit-identity for the batch kernels: the batched distance path
// must produce the exact bytes the legacy per-valuation path produces —
// summary expression text, bit-exact distances, and the /v1/summarize
// JSON body — at every SIMD tier (scalar, SSE4.2, AVX2 via the tier
// cap), at thread counts 1 and 8, on all three dataset families. The
// same binary runs a second time under PROX_SIMD=0 (CTest target
// prox_kernels_golden_simd_off), proving the kill switch forces the
// scalar tier without changing a byte.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/json.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "ir/adopt.h"
#include "ir/term_pool.h"
#include "kernels/metrics.h"
#include "engine/codec.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

namespace prox {
namespace {

struct GoldenRun {
  std::string expression;  // summary->ToString
  std::string json;        // /v1/summarize body (groups, steps, distances)
  double final_distance = 0.0;
  int64_t final_size = 0;
};

/// Scoped SIMD-tier cap; lifts back to the env/hardware decision on exit
/// (under the PROX_SIMD=0 CTest variant every "tier" below therefore
/// resolves to scalar — the identity assertions must still hold).
struct TierCap {
  explicit TierCap(common::SimdTier tier) { common::SetSimdTierCap(tier); }
  ~TierCap() { common::SetSimdTierCap(common::SimdTier::kAvx2); }
};

template <typename Generator, typename Config>
GoldenRun RunFamily(const Config& config, bool use_ir, int threads) {
  Dataset ds = Generator::Generate(config);
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations, threads);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 6;
  options.phi = ds.phi;
  options.threads = threads;
  options.use_ir = use_ir;
  Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, &oracle, &valuations, options);
  SummaryOutcome outcome = summarizer.Run().MoveValue();

  GoldenRun run;
  run.expression = outcome.summary->ToString(*ds.registry);
  run.json = WriteJson(engine::SummaryOutcomeToJson(outcome, *ds.registry));
  run.final_distance = outcome.final_distance;
  run.final_size = outcome.final_size;
  return run;
}

template <typename Generator, typename Config>
void ExpectByteIdenticalAcrossTiers(const Config& config) {
  // Reference: the legacy pointer-tree path, serial. Legacy candidates
  // have no batch lowering, so this run never touches the kernels.
  const GoldenRun reference = RunFamily<Generator>(config, /*use_ir=*/false,
                                                   /*threads=*/1);
  EXPECT_FALSE(reference.expression.empty());
  EXPECT_FALSE(reference.json.empty());

  struct Variant {
    common::SimdTier tier;
    bool use_ir;
    int threads;
  };
  const Variant variants[] = {
      {common::SimdTier::kScalar, true, 1},
      {common::SimdTier::kSse42, true, 1},
      {common::SimdTier::kAvx2, true, 1},
      {common::SimdTier::kScalar, true, 8},
      {common::SimdTier::kAvx2, true, 8},
      {common::SimdTier::kAvx2, false, 8},  // legacy, parallel
  };
  for (const Variant& v : variants) {
    SCOPED_TRACE(std::string(v.use_ir ? "batch" : "legacy") + " tier=" +
                 common::SimdTierName(v.tier) + " threads=" +
                 std::to_string(v.threads));
    TierCap cap(v.tier);
    const GoldenRun run = RunFamily<Generator>(config, v.use_ir, v.threads);
    EXPECT_EQ(run.expression, reference.expression);
    EXPECT_EQ(run.json, reference.json);
    EXPECT_EQ(run.final_distance, reference.final_distance);  // bit-exact
    EXPECT_EQ(run.final_size, reference.final_size);
  }
}

TEST(GoldenKernelsTest, MovieLens) {
  MovieLensConfig config;
  config.num_users = 20;
  config.num_movies = 6;
  config.ratings_per_user = 3;
  ExpectByteIdenticalAcrossTiers<MovieLensGenerator>(config);
}

TEST(GoldenKernelsTest, Wikipedia) {
  WikipediaConfig config;
  config.num_users = 10;
  config.num_pages = 8;
  ExpectByteIdenticalAcrossTiers<WikipediaGenerator>(config);
}

TEST(GoldenKernelsTest, Ddp) {
  DdpConfig config;
  config.num_executions = 8;
  ExpectByteIdenticalAcrossTiers<DdpGenerator>(config);
}

TEST(GoldenKernelsTest, BatchPathActuallyEngages) {
  // Identity is vacuous if the batch path silently never runs. An IR run
  // must advance the batched-valuation counter; a legacy run (candidates
  // without a batch lowering) must advance the fallback counter instead.
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 4;
  config.ratings_per_user = 3;

  const uint64_t batch_before = kernels::BatchEvalsForTesting();
  RunFamily<MovieLensGenerator>(config, /*use_ir=*/true, /*threads=*/1);
  const uint64_t batch_after = kernels::BatchEvalsForTesting();
  EXPECT_GT(batch_after, batch_before);

  const uint64_t fallback_before = kernels::ScalarFallbacksForTesting();
  RunFamily<MovieLensGenerator>(config, /*use_ir=*/false, /*threads=*/1);
  EXPECT_GT(kernels::ScalarFallbacksForTesting(), fallback_before);
  // The legacy run itself must not have gone through the kernels.
  EXPECT_EQ(kernels::BatchEvalsForTesting(), batch_after);
}

TEST(GoldenKernelsTest, SampledOracleBitIdenticalAcrossTiers) {
  // The Monte-Carlo oracle regenerates each sample from (seed, index), so
  // distances are comparable across runs; they must be bit-identical
  // across tiers and thread counts too.
  MovieLensConfig config;
  config.num_users = 14;
  config.num_movies = 5;
  Dataset ds = MovieLensGenerator::Generate(config);
  // An IR candidate, so the candidate side has a batch lowering and the
  // batched path genuinely engages (a legacy candidate would fall back).
  auto pool = std::make_shared<ir::TermPool>();
  auto cand = ir::Adopt(*ds.provenance, pool);

  auto distance_at = [&](common::SimdTier tier, int threads) {
    TierCap cap(tier);
    SampledDistance::Options options;
    options.num_samples = 160;  // 10 grain-16 chunks
    options.threads = threads;
    SampledDistance oracle(ds.provenance.get(), ds.registry.get(),
                           ds.val_func.get(), options);
    MappingState state(ds.registry.get(), ds.phi);
    return oracle.Distance(*cand, state);
  };

  const double reference = distance_at(common::SimdTier::kScalar, 1);
  EXPECT_EQ(distance_at(common::SimdTier::kSse42, 1), reference);
  EXPECT_EQ(distance_at(common::SimdTier::kAvx2, 1), reference);
  EXPECT_EQ(distance_at(common::SimdTier::kAvx2, 8), reference);
  EXPECT_EQ(distance_at(common::SimdTier::kScalar, 8), reference);
}

}  // namespace
}  // namespace prox
