// prox::kernels units: ValuationBlock layout, BlockEval pack/extract
// round-trips, batch evaluation vs the scalar Evaluate() oracle at every
// SIMD tier, batched VAL-FUNC errors vs ValFunc::Compute, and the
// chunked-reduction-order identity that makes the batch path
// bit-identical to DeterministicSum at every thread count.

#include "kernels/batch_eval.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "datasets/ddp.h"
#include "exec/thread_pool.h"
#include "ir/adopt.h"
#include "ir/term_pool.h"
#include "kernels/valuation_block.h"
#include "provenance/polynomial_expr.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

/// Scoped SIMD-tier cap: forces a tier for one test body, then lifts the
/// cap back to the env/hardware decision.
struct TierCap {
  explicit TierCap(common::SimdTier tier) { common::SetSimdTierCap(tier); }
  ~TierCap() { common::SetSimdTierCap(common::SimdTier::kAvx2); }
};

const common::SimdTier kAllTiers[] = {common::SimdTier::kScalar,
                                      common::SimdTier::kSse42,
                                      common::SimdTier::kAvx2};

std::string TierTrace(common::SimdTier tier) {
  return std::string("tier=") + common::SimdTierName(tier);
}

// ---------------------------------------------------------------------------
// ValuationBlock

TEST(ValuationBlockTest, ResetDefaultsTrueAndPicksStride) {
  kernels::ValuationBlock block;
  block.Reset(5, 3);
  EXPECT_EQ(block.num_annotations(), 5u);
  EXPECT_EQ(block.width(), 3u);
  EXPECT_EQ(block.stride(), 8u);
  for (AnnotationId a = 0; a < 5; ++a) {
    const uint8_t* row = block.Row(a);
    for (size_t lane = 0; lane < block.stride(); ++lane) {
      EXPECT_EQ(row[lane], 0xFF);
    }
  }
  block.Reset(4, 12);  // > 8 lanes switches to the wide stride
  EXPECT_EQ(block.stride(), 16u);
}

TEST(ValuationBlockTest, FillLaneMatchesMaterializedValuation) {
  const size_t n = 6;
  Valuation v({1, 4});  // false set {1, 4}
  MaterializedValuation mat(v, n);

  kernels::ValuationBlock block;
  block.Reset(n, 2);
  block.FillLane(0, mat);
  block.FillLaneSparse(1, v);  // sparse fill must produce identical bytes
  for (AnnotationId a = 0; a < n; ++a) {
    const uint8_t expected = mat.truth(a) ? 0xFF : 0x00;
    EXPECT_EQ(block.Row(a)[0], expected) << "a=" << a;
    EXPECT_EQ(block.Row(a)[1], expected) << "a=" << a;
  }
  // Unfilled lanes keep the Reset() default (all-true).
  EXPECT_EQ(block.Row(1)[2], 0xFF);
}

TEST(ValuationBlockTest, SetOverridesOneLaneByte) {
  kernels::ValuationBlock block;
  block.Reset(3, 8);
  block.Set(2, 1, false);
  EXPECT_EQ(block.Row(1)[2], 0x00);
  EXPECT_EQ(block.Row(1)[3], 0xFF);
  block.Set(2, 1, true);
  EXPECT_EQ(block.Row(1)[2], 0xFF);
}

// ---------------------------------------------------------------------------
// PackEvalBlock / Extract

TEST(PackEvalBlockTest, ScalarRoundTrip) {
  std::vector<EvalResult> evals = {EvalResult::Scalar(3.5),
                                   EvalResult::Scalar(-0.0),
                                   EvalResult::Scalar(7.25)};
  kernels::BlockEval block;
  ASSERT_TRUE(kernels::PackEvalBlock(evals.data(), evals.size(),
                                     EvalResult::Kind::kScalar, nullptr, 0,
                                     &block));
  EXPECT_EQ(block.width, 3u);
  EXPECT_EQ(block.stride, 8u);
  for (size_t l = 0; l < evals.size(); ++l) {
    EXPECT_EQ(block.Extract(l), evals[l]);
  }
  // -0.0 must survive bitwise, not just by operator== (which treats
  // -0.0 == 0.0): the packed column is the scalar's exact bits.
  uint64_t bits = 0;
  std::memcpy(&bits, &block.values[1], sizeof(bits));
  EXPECT_EQ(bits, uint64_t{1} << 63);
}

TEST(PackEvalBlockTest, VectorRoundTripAndLayoutRejection) {
  const AnnotationId groups[] = {3, 7};
  auto vec = [&](double a, double b) {
    return EvalResult::Vector({{3, a, 1.0}, {7, b, 2.0}});
  };
  std::vector<EvalResult> evals = {vec(1.0, 2.0), vec(-4.5, 0.25)};
  kernels::BlockEval block;
  ASSERT_TRUE(kernels::PackEvalBlock(evals.data(), evals.size(),
                                     EvalResult::Kind::kVector, groups, 2,
                                     &block));
  for (size_t l = 0; l < evals.size(); ++l) {
    EXPECT_EQ(block.Extract(l), evals[l]);
  }

  // A result whose group keys differ from the layout must be rejected.
  std::vector<EvalResult> wrong = {EvalResult::Vector({{3, 1.0, 1.0}})};
  EXPECT_FALSE(kernels::PackEvalBlock(wrong.data(), 1,
                                      EvalResult::Kind::kVector, groups, 2,
                                      &block));
  EXPECT_FALSE(kernels::EvalMatchesLayout(wrong[0], EvalResult::Kind::kVector,
                                          groups, 2));
  EXPECT_TRUE(kernels::EvalMatchesLayout(evals[0], EvalResult::Kind::kVector,
                                         groups, 2));
}

TEST(PackEvalBlockTest, CostBoolRoundTrip) {
  std::vector<EvalResult> evals = {EvalResult::CostBool(4.0, true),
                                   EvalResult::CostBool(0.0, false)};
  kernels::BlockEval block;
  ASSERT_TRUE(kernels::PackEvalBlock(evals.data(), evals.size(),
                                     EvalResult::Kind::kCostBool, nullptr, 0,
                                     &block));
  for (size_t l = 0; l < evals.size(); ++l) {
    EXPECT_EQ(block.Extract(l), evals[l]);
  }
}

// ---------------------------------------------------------------------------
// Batch evaluation vs the scalar Evaluate() oracle, at every tier

/// Fills one block lane per valuation and checks every lane's extracted
/// EvalResult against expr.Evaluate() at every SIMD tier.
void ExpectBatchMatchesScalar(const ProvenanceExpression& expr,
                              const kernels::BatchProgram& program,
                              const std::vector<Valuation>& valuations,
                              size_t registry_size) {
  for (common::SimdTier tier : kAllTiers) {
    SCOPED_TRACE(TierTrace(tier));
    TierCap cap(tier);
    for (size_t base = 0; base < valuations.size();
         base += kernels::kMaxLanes) {
      const size_t width =
          std::min(kernels::kMaxLanes, valuations.size() - base);
      kernels::ValuationBlock block;
      block.Reset(registry_size, width);
      for (size_t l = 0; l < width; ++l) {
        block.FillLane(l, MaterializedValuation(valuations[base + l],
                                                registry_size));
      }
      kernels::BlockEval evals;
      kernels::EvaluateBlock(program, block, &evals);
      for (size_t l = 0; l < width; ++l) {
        const EvalResult expected = expr.Evaluate(
            MaterializedValuation(valuations[base + l], registry_size));
        EXPECT_EQ(evals.Extract(l), expected) << "lane " << l;
      }
    }
  }
}

TEST(BatchEvalTest, AggregateMatchesScalarEvaluateAtEveryTier) {
  MovieFixture fx;
  auto pool = std::make_shared<ir::TermPool>();
  auto ir_expr = ir::Adopt(*fx.p0, pool);
  const kernels::BatchEvalFacade* facade = ir_expr->AsBatchEval();
  ASSERT_NE(facade, nullptr);
  kernels::BatchProgram program = facade->LowerBatch();
  EXPECT_EQ(program.shape, kernels::BatchProgram::Shape::kAggregate);

  CancelSingleAnnotation cls;
  std::vector<Valuation> valuations = cls.Generate(*fx.p0, fx.ctx);
  valuations.emplace_back(std::vector<AnnotationId>{
      fx.u1, fx.u2, fx.u3});  // all users cancelled: empty groups
  ExpectBatchMatchesScalar(*ir_expr, program, valuations, fx.registry.size());
}

TEST(BatchEvalTest, DdpMatchesScalarEvaluateAtEveryTier) {
  DdpConfig config;
  config.num_executions = 6;
  Dataset ds = DdpGenerator::Generate(config);
  auto pool = std::make_shared<ir::TermPool>();
  auto ir_expr = ir::Adopt(*ds.provenance, pool);
  const kernels::BatchEvalFacade* facade = ir_expr->AsBatchEval();
  ASSERT_NE(facade, nullptr);
  kernels::BatchProgram program = facade->LowerBatch();
  EXPECT_EQ(program.shape, kernels::BatchProgram::Shape::kDdp);

  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  ASSERT_FALSE(valuations.empty());
  ExpectBatchMatchesScalar(*ir_expr, program, valuations,
                           ds.registry->size());
}

TEST(BatchEvalTest, PolynomialMatchesScalarEvaluateAtEveryTier) {
  AnnotationRegistry registry;
  DomainId d = registry.AddDomain("d");
  AnnotationId a = registry.Add(d, "a", kNoEntity).MoveValue();
  AnnotationId b = registry.Add(d, "b", kNoEntity).MoveValue();
  AnnotationId c = registry.Add(d, "c", kNoEntity).MoveValue();
  Polynomial poly;
  poly.AddTerm({a, b}, 2);
  poly.AddTerm({b, c}, 3);
  poly.AddTerm({a}, 1);
  PolynomialExpression expr(std::move(poly));

  auto pool = std::make_shared<ir::TermPool>();
  auto ir_expr = ir::Adopt(expr, pool);
  const kernels::BatchEvalFacade* facade = ir_expr->AsBatchEval();
  ASSERT_NE(facade, nullptr);
  kernels::BatchProgram program = facade->LowerBatch();
  EXPECT_EQ(program.shape, kernels::BatchProgram::Shape::kPolynomial);

  std::vector<Valuation> valuations;
  for (unsigned mask = 0; mask < 8; ++mask) {  // all 2^3 truth assignments
    std::vector<AnnotationId> false_set;
    if (mask & 1) false_set.push_back(a);
    if (mask & 2) false_set.push_back(b);
    if (mask & 4) false_set.push_back(c);
    valuations.emplace_back(std::move(false_set));
  }
  ExpectBatchMatchesScalar(*ir_expr, program, valuations, registry.size());
}

// ---------------------------------------------------------------------------
// Batched VAL-FUNC errors vs ValFunc::Compute

TEST(ValFuncBlockTest, ErrorsMatchScalarComputeBitExact) {
  MovieFixture fx;
  auto pool = std::make_shared<ir::TermPool>();
  auto base_ir = ir::Adopt(*fx.p0, pool);

  // A genuine candidate: U1,U3 -> Audience (the Example 4.2.3 merge).
  AnnotationId audience = fx.registry.AddSummary(fx.user_domain, "Audience");
  Homomorphism h;
  h.Set(fx.u1, audience);
  h.Set(fx.u3, audience);
  auto cand_ir = ir::Adopt(*fx.p0->Apply(h), pool);

  const kernels::BatchEvalFacade* base_facade = base_ir->AsBatchEval();
  const kernels::BatchEvalFacade* cand_facade = cand_ir->AsBatchEval();
  ASSERT_NE(base_facade, nullptr);
  ASSERT_NE(cand_facade, nullptr);
  kernels::BatchProgram base_program = base_facade->LowerBatch();
  kernels::BatchProgram cand_program = cand_facade->LowerBatch();
  // Merging users leaves the movie group keys untouched, so both
  // programs share one coordinate layout — the precondition the oracles
  // check before engaging the batch path.
  ASSERT_TRUE(kernels::ProgramMatchesLayout(
      cand_program, base_program.kind, base_program.groups,
      base_program.num_groups));

  CancelSingleAnnotation cls;
  const std::vector<Valuation> valuations = cls.Generate(*fx.p0, fx.ctx);
  const size_t n = fx.registry.size();
  const size_t width = std::min(kernels::kMaxLanes, valuations.size());

  const AbsoluteDifferenceValFunc l1;
  const EuclideanValFunc l2;
  const DisagreementValFunc dis;
  struct Case {
    const ValFunc* vf;
    const char* name;
  };
  const Case cases[] = {{&l1, "L1"}, {&l2, "L2"}, {&dis, "Disagreement"}};

  for (common::SimdTier tier : kAllTiers) {
    SCOPED_TRACE(TierTrace(tier));
    TierCap cap(tier);
    kernels::ValuationBlock block;
    block.Reset(n, width);
    for (size_t l = 0; l < width; ++l) {
      block.FillLane(l, MaterializedValuation(valuations[l], n));
    }
    kernels::BlockEval base_evals, cand_evals;
    kernels::EvaluateBlock(base_program, block, &base_evals);
    kernels::EvaluateBlock(cand_program, block, &cand_evals);

    for (const Case& c : cases) {
      SCOPED_TRACE(c.name);
      ASSERT_NE(c.vf->batch_kind(), kernels::ValFuncBatchKind::kNone);
      double err[kernels::kMaxLanes] = {0};
      kernels::ValFuncBlockErrors(c.vf->batch_kind(),
                                  c.vf->batch_mismatch_penalty(), base_evals,
                                  cand_evals, err);
      for (size_t l = 0; l < width; ++l) {
        const double expected = c.vf->Compute(base_evals.Extract(l),
                                              cand_evals.Extract(l));
        EXPECT_EQ(err[l], expected) << "lane " << l;  // bit-exact
      }
    }
  }
}

TEST(ValFuncBlockTest, DdpErrorsMatchScalarComputeBitExact) {
  DdpConfig config;
  config.num_executions = 5;
  Dataset ds = DdpGenerator::Generate(config);
  auto pool = std::make_shared<ir::TermPool>();
  auto ir_expr = ir::Adopt(*ds.provenance, pool);
  const kernels::BatchEvalFacade* facade = ir_expr->AsBatchEval();
  ASSERT_NE(facade, nullptr);
  kernels::BatchProgram program = facade->LowerBatch();
  ASSERT_EQ(ds.val_func->batch_kind(), kernels::ValFuncBatchKind::kDdp);

  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  const size_t n = ds.registry->size();
  const size_t width = std::min(kernels::kMaxLanes, valuations.size());
  ASSERT_GT(width, 0u);

  for (common::SimdTier tier : kAllTiers) {
    SCOPED_TRACE(TierTrace(tier));
    TierCap cap(tier);
    kernels::ValuationBlock block;
    block.Reset(n, width);
    for (size_t l = 0; l < width; ++l) {
      block.FillLane(l, MaterializedValuation(valuations[l], n));
    }
    // Base lanes evaluate under the block; candidate lanes under the
    // all-true valuation, so feasibility genuinely diverges across lanes
    // and the mismatch-penalty arm is exercised.
    kernels::ValuationBlock all_true;
    all_true.Reset(n, width);
    kernels::BlockEval base_evals, cand_evals;
    kernels::EvaluateBlock(program, block, &base_evals);
    kernels::EvaluateBlock(program, all_true, &cand_evals);

    double err[kernels::kMaxLanes] = {0};
    kernels::ValFuncBlockErrors(kernels::ValFuncBatchKind::kDdp,
                                ds.val_func->batch_mismatch_penalty(),
                                base_evals, cand_evals, err);
    for (size_t l = 0; l < width; ++l) {
      const double expected = ds.val_func->Compute(base_evals.Extract(l),
                                                   cand_evals.Extract(l));
      EXPECT_EQ(err[l], expected) << "lane " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Reduction order: the chunked batch reduction is the DeterministicSum
// summation tree, bit for bit, at every thread count.

TEST(ReductionOrderTest, ChunkSumMatchesPerTermSumBitExact) {
  const int64_t count = 103;  // deliberately not a grain multiple
  const int64_t grain = 8;
  std::vector<double> terms(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    // Irrational-ish magnitudes at wildly different scales, so any
    // reassociation of the summation tree changes the result bits.
    terms[static_cast<size_t>(i)] =
        std::sin(static_cast<double>(i) + 0.5) *
        std::pow(10.0, static_cast<double>(i % 13) - 6.0);
  }
  const double reference = exec::DeterministicSum(
      nullptr, count, grain,
      [&](int64_t i) { return terms[static_cast<size_t>(i)]; });

  for (int threads : {1, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    exec::PoolRef pool(threads);
    const double per_term = exec::DeterministicSum(
        pool.pool(), count, grain,
        [&](int64_t i) { return terms[static_cast<size_t>(i)]; });
    const double chunked = exec::DeterministicChunkSum(
        pool.pool(), count, grain, [&](int64_t lo, int64_t hi) {
          double partial = 0.0;  // ascending, plain + — the contract
          for (int64_t i = lo; i < hi; ++i) {
            partial += terms[static_cast<size_t>(i)];
          }
          return partial;
        });
    EXPECT_EQ(per_term, reference);
    EXPECT_EQ(chunked, reference);
  }
}

// ---------------------------------------------------------------------------
// Tier dispatch

TEST(TierDispatchTest, CapClampsActiveTier) {
  {
    TierCap cap(common::SimdTier::kScalar);
    EXPECT_EQ(common::ActiveSimdTier(), common::SimdTier::kScalar);
  }
  {
    TierCap cap(common::SimdTier::kSse42);
    EXPECT_LE(common::ActiveSimdTier(), common::SimdTier::kSse42);
  }
  // Lifting the cap never exceeds the hardware.
  EXPECT_LE(common::ActiveSimdTier(), common::DetectedSimdTier());
}

TEST(TierDispatchTest, TierNamesAreStable) {
  EXPECT_STREQ(common::SimdTierName(common::SimdTier::kScalar), "scalar");
  EXPECT_STREQ(common::SimdTierName(common::SimdTier::kSse42), "sse4.2");
  EXPECT_STREQ(common::SimdTierName(common::SimdTier::kAvx2), "avx2");
}

TEST(TierDispatchTest, EnvKillSwitchForcesScalar) {
  // Only asserts under the PROX_SIMD=0 CTest variant
  // (prox_kernels_golden_simd_off registers the golden suite with the
  // env set; this binary just documents the contract otherwise).
  const char* env = std::getenv("PROX_SIMD");
  if (env == nullptr) {
    GTEST_SKIP() << "PROX_SIMD not set";
  }
  const std::string value(env);
  if (value == "0" || value == "off" || value == "scalar") {
    EXPECT_EQ(common::ActiveSimdTier(), common::SimdTier::kScalar);
  }
}

}  // namespace
}  // namespace prox
