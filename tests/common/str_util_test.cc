#include "common/str_util.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(StrUtilTest, JoinEmptyAndNonEmpty) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, "·"), "a·b·c");
}

TEST(StrUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrUtilTest, SplitJoinRoundTrip) {
  std::vector<std::string> parts = {"x", "yy", "", "z"};
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\na b\r "), "a b");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("wordnet_singer", "wordnet_"));
  EXPECT_FALSE(StartsWith("singer", "wordnet_"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 1), "-0.5");
}

TEST(StrUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("Match Point"), "match point");
  EXPECT_EQ(ToLowerAscii("ABC123xyz"), "abc123xyz");
}

}  // namespace
}  // namespace prox
