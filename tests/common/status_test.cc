#include "common/status.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad weight");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad weight");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_NE(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound("a"), Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    PROX_RETURN_NOT_OK(Status::Internal("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);

  auto succeeds = []() -> Status {
    PROX_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(succeeds().code(), StatusCode::kNotFound);
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

}  // namespace
}  // namespace prox
