#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace prox {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyValueSupported) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = r.MoveValue();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<std::string> ok("hello");
  Result<std::string> err(Status::Internal("boom"));
  EXPECT_EQ(ok.ValueOr("fallback"), "hello");
  EXPECT_EQ(err.ValueOr("fallback"), "fallback");
}

TEST(ResultTest, AssignOrReturnMacroPropagatesError) {
  auto inner = []() -> Result<int> { return Status::OutOfRange("too big"); };
  auto outer = [&]() -> Status {
    int value = 0;
    PROX_ASSIGN_OR_RETURN(value, inner());
    (void)value;
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, AssignOrReturnMacroAssignsValue) {
  auto inner = []() -> Result<int> { return 11; };
  auto outer = [&]() -> Result<int> {
    int value = 0;
    PROX_ASSIGN_OR_RETURN(value, inner());
    return value * 2;
  };
  auto r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 22);
}

}  // namespace
}  // namespace prox
