#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace prox {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(19);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(ZipfSamplerTest, SkewZeroIsUniform) {
  Rng rng(29);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c / 20000.0, 0.25, 0.02);
}

TEST(ZipfSamplerTest, PositiveSkewFavorsLowRanks) {
  Rng rng(31);
  ZipfSampler zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(ZipfSamplerTest, SingleItemAlwaysSampled) {
  Rng rng(37);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace prox
