#include "common/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace prox {
namespace {

TEST(TimerTest, ElapsedGrowsMonotonically) {
  Timer timer;
  int64_t a = timer.ElapsedNanos();
  int64_t b = timer.ElapsedNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, MeasuresSleeps) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(timer.ElapsedNanos(), 4'000'000);  // at least ~4ms
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  timer.Reset();
  EXPECT_LT(timer.ElapsedNanos(), 3'000'000);
}

TEST(TimerScopedTest, AccumulatesIntoSink) {
  int64_t total = 0;
  {
    Timer::Scoped scope(&total);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(scope.ElapsedNanos(), 0);
  }
  EXPECT_GE(total, 1'000'000);  // at least ~1ms landed in the sink
  const int64_t first = total;
  {
    Timer::Scoped scope(&total);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(total, first);  // adds, does not overwrite
}

TEST(TimerScopedTest, SaturatingAddPinsAtMax) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  EXPECT_EQ(Timer::Scoped::SaturatingAdd(10, 5), 15);
  EXPECT_EQ(Timer::Scoped::SaturatingAdd(max, 1), max);
  EXPECT_EQ(Timer::Scoped::SaturatingAdd(max - 3, 10), max);
  // Clock anomalies (negative deltas) never subtract.
  EXPECT_EQ(Timer::Scoped::SaturatingAdd(10, -5), 10);
}

TEST(TimerTest, UnitConversionsAgree) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  int64_t nanos = timer.ElapsedNanos();
  double micros = timer.ElapsedMicros();
  double millis = timer.ElapsedMillis();
  double seconds = timer.ElapsedSeconds();
  EXPECT_NEAR(micros, nanos / 1e3, nanos / 1e3);  // loose: separate reads
  EXPECT_GT(millis, 0.0);
  EXPECT_GT(seconds, 0.0);
  EXPECT_LT(seconds, 1.0);
}

}  // namespace
}  // namespace prox
