#include "datasets/ddp.h"

#include <gtest/gtest.h>

#include "provenance/ddp_expr.h"

namespace prox {
namespace {

TEST(DdpGeneratorTest, DeterministicForFixedSeed) {
  Dataset a = DdpGenerator::Generate(DdpConfig{});
  Dataset b = DdpGenerator::Generate(DdpConfig{});
  EXPECT_EQ(a.provenance->ToString(*a.registry),
            b.provenance->ToString(*b.registry));
}

TEST(DdpGeneratorTest, StructureFollowsExample522) {
  Dataset ds = DdpGenerator::Generate(DdpConfig{});
  const auto* ddp = dynamic_cast<const DdpExpression*>(ds.provenance.get());
  ASSERT_NE(ddp, nullptr);
  EXPECT_GT(ddp->executions().size(), 0u);
  DdpConfig config;
  for (const DdpExecution& exec : ddp->executions()) {
    EXPECT_GE(exec.transitions.size(),
              static_cast<size_t>(config.min_transitions));
    EXPECT_LE(exec.transitions.size(),
              static_cast<size_t>(config.max_transitions));
    for (const DdpTransition& t : exec.transitions) {
      if (t.kind == DdpTransition::Kind::kUser) {
        EXPECT_EQ(ds.registry->domain(t.cost_var), ds.domain("cost_var"));
        double cost = ddp->CostOf(t.cost_var);
        EXPECT_GE(cost, 1.0);
        EXPECT_LE(cost, config.max_cost);
      } else {
        EXPECT_GE(t.db_factors.Size(), 1);
        EXPECT_LE(t.db_factors.Size(), 2);
        for (AnnotationId a : t.db_factors.factors()) {
          EXPECT_EQ(ds.registry->domain(a), ds.domain("db_var"));
        }
      }
    }
  }
}

TEST(DdpGeneratorTest, CostConstraintUsesTolerance) {
  DdpConfig config;
  config.cost_tolerance = 0.0;  // only equal costs group
  Dataset ds = DdpGenerator::Generate(config);
  DomainId cost = ds.domain("cost_var");
  const EntityTable* table = ds.ctx.TableFor(cost);
  ASSERT_NE(table, nullptr);
  auto cost_attr = table->FindAttribute("Cost").MoveValue();
  auto vars = ds.registry->AnnotationsInDomain(cost);
  for (size_t i = 0; i < vars.size(); ++i) {
    for (size_t j = i + 1; j < vars.size(); ++j) {
      bool equal_cost = ds.ctx.AttrValueOf(vars[i], cost_attr) ==
                        ds.ctx.AttrValueOf(vars[j], cost_attr);
      EXPECT_EQ(
          ds.constraints.Evaluate(cost, {vars[i], vars[j]}, ds.ctx).allowed,
          equal_cost);
    }
  }
}

TEST(DdpGeneratorTest, DbVariablesMergeFreely) {
  Dataset ds = DdpGenerator::Generate(DdpConfig{});
  DomainId db = ds.domain("db_var");
  auto vars = ds.registry->AnnotationsInDomain(db);
  ASSERT_GE(vars.size(), 2u);
  EXPECT_TRUE(
      ds.constraints.Evaluate(db, {vars[0], vars[1]}, ds.ctx).allowed);
}

TEST(DdpGeneratorTest, DefaultValFuncIsDdpDifference) {
  Dataset ds = DdpGenerator::Generate(DdpConfig{});
  EXPECT_EQ(ds.val_func->name(), "DdpDifference");
  // Max error = max_cost × max_transitions (Example 5.2.2's 10 × 5).
  EXPECT_EQ(ds.val_func->MaxError(EvalResult::CostBool(0, true)), 50.0);
}

TEST(DdpGeneratorTest, EvaluationProducesCostBool) {
  Dataset ds = DdpGenerator::Generate(DdpConfig{});
  EvalResult r =
      ds.provenance->Evaluate(MaterializedValuation(ds.registry->size()));
  EXPECT_EQ(r.kind(), EvalResult::Kind::kCostBool);
}

TEST(DdpGeneratorTest, ScalesWithConfig) {
  DdpConfig config;
  config.num_executions = 3;
  config.num_db_vars = 4;
  config.num_cost_vars = 3;
  Dataset ds = DdpGenerator::Generate(config);
  EXPECT_EQ(ds.registry->AnnotationsInDomain(ds.domain("db_var")).size(), 4u);
  EXPECT_EQ(ds.registry->AnnotationsInDomain(ds.domain("cost_var")).size(),
            3u);
  const auto* ddp = dynamic_cast<const DdpExpression*>(ds.provenance.get());
  EXPECT_LE(ddp->executions().size(), 3u);  // dedup may shrink
}

}  // namespace
}  // namespace prox
