#include "datasets/movielens.h"

#include <gtest/gtest.h>

#include "provenance/aggregate_expr.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

namespace prox {
namespace {

TEST(MovieLensGeneratorTest, DeterministicForFixedSeed) {
  MovieLensConfig config;
  Dataset a = MovieLensGenerator::Generate(config);
  Dataset b = MovieLensGenerator::Generate(config);
  EXPECT_EQ(a.provenance->Size(), b.provenance->Size());
  EXPECT_EQ(a.provenance->ToString(*a.registry),
            b.provenance->ToString(*b.registry));
}

TEST(MovieLensGeneratorTest, DifferentSeedsDiffer) {
  MovieLensConfig a_config, b_config;
  b_config.seed = a_config.seed + 1;
  Dataset a = MovieLensGenerator::Generate(a_config);
  Dataset b = MovieLensGenerator::Generate(b_config);
  EXPECT_NE(a.provenance->ToString(*a.registry),
            b.provenance->ToString(*b.registry));
}

TEST(MovieLensGeneratorTest, Table51StructureHolds) {
  // Every term is (UserID·MovieTitle·MovieYear) ⊗ (Rating, 1) grouped by
  // movie title.
  MovieLensConfig config;
  Dataset ds = MovieLensGenerator::Generate(config);
  const auto* agg = dynamic_cast<const AggregateExpression*>(
      ds.provenance.get());
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->agg(), AggKind::kMax);
  DomainId user = ds.domain("user");
  DomainId movie = ds.domain("movie");
  DomainId year = ds.domain("year");
  for (const TensorTerm& t : agg->terms()) {
    ASSERT_EQ(t.monomial.factors().size(), 3u);
    int users = 0, movies = 0, years = 0;
    for (AnnotationId a : t.monomial.factors()) {
      DomainId d = ds.registry->domain(a);
      users += d == user;
      movies += d == movie;
      years += d == year;
    }
    EXPECT_EQ(users, 1);
    EXPECT_EQ(movies, 1);
    EXPECT_EQ(years, 1);
    EXPECT_EQ(ds.registry->domain(t.group), movie);
    EXPECT_TRUE(t.monomial.Contains(t.group));
    EXPECT_GE(t.value.value, 1.0);
    EXPECT_LE(t.value.value, 5.0);
    EXPECT_EQ(t.value.count, 1.0);
    EXPECT_FALSE(t.guard.has_value());
  }
}

TEST(MovieLensGeneratorTest, UsersCarryAllFourAttributes) {
  Dataset ds = MovieLensGenerator::Generate(MovieLensConfig{});
  const EntityTable* users = ds.ctx.TableFor(ds.domain("user"));
  ASSERT_NE(users, nullptr);
  EXPECT_EQ(users->num_attributes(), 4u);
  EXPECT_TRUE(users->FindAttribute("Gender").ok());
  EXPECT_TRUE(users->FindAttribute("AgeRange").ok());
  EXPECT_TRUE(users->FindAttribute("Occupation").ok());
  EXPECT_TRUE(users->FindAttribute("ZipCode").ok());
  EXPECT_EQ(users->num_rows(), 40u);
}

TEST(MovieLensGeneratorTest, ScalesWithConfig) {
  MovieLensConfig config;
  config.num_users = 10;
  config.num_movies = 5;
  config.ratings_per_user = 2;
  Dataset ds = MovieLensGenerator::Generate(config);
  EXPECT_EQ(ds.registry->AnnotationsInDomain(ds.domain("user")).size(), 10u);
  EXPECT_EQ(ds.registry->AnnotationsInDomain(ds.domain("movie")).size(), 5u);
  EXPECT_GT(ds.provenance->Size(), 0);
}

TEST(MovieLensGeneratorTest, ConstraintsAllowSharedAttributePairs) {
  Dataset ds = MovieLensGenerator::Generate(MovieLensConfig{});
  DomainId user = ds.domain("user");
  auto users = ds.registry->AnnotationsInDomain(user);
  // Some pair of the 40 users shares an attribute (pigeonhole on gender).
  bool any_allowed = false;
  for (size_t i = 0; i < users.size() && !any_allowed; ++i) {
    for (size_t j = i + 1; j < users.size() && !any_allowed; ++j) {
      any_allowed =
          ds.constraints.Evaluate(user, {users[i], users[j]}, ds.ctx).allowed;
    }
  }
  EXPECT_TRUE(any_allowed);
}

TEST(MovieLensGeneratorTest, ProvidesDefaultsAndFeatures) {
  Dataset ds = MovieLensGenerator::Generate(MovieLensConfig{});
  EXPECT_NE(ds.valuation_class, nullptr);
  EXPECT_NE(ds.val_func, nullptr);
  EXPECT_EQ(ds.val_func->name(), "Euclidean");
  EXPECT_EQ(ds.features.count(ds.domain("user")), 1u);
  EXPECT_FALSE(ds.features.at(ds.domain("user")).empty());
}

TEST(MovieLensGeneratorTest, GuardedStructureOption) {
  MovieLensConfig config;
  config.num_users = 8;
  config.num_movies = 4;
  config.ratings_per_user = 4;
  config.with_guards = true;
  Dataset ds = MovieLensGenerator::Generate(config);
  const auto* agg = dynamic_cast<const AggregateExpression*>(
      ds.provenance.get());
  ASSERT_NE(agg, nullptr);
  DomainId stats = ds.domain("stats");
  for (const TensorTerm& t : agg->terms()) {
    ASSERT_TRUE(t.guard.has_value());
    EXPECT_EQ(t.guard->op(), CompareOp::kGt);
    EXPECT_EQ(t.guard->threshold(), 2.0);
    // Guard body is S_u·U_u.
    ASSERT_EQ(t.guard->factors().factors().size(), 2u);
    bool has_stats = false, has_user = false;
    for (AnnotationId a : t.guard->factors().factors()) {
      has_stats |= ds.registry->domain(a) == stats;
      has_user |= ds.registry->domain(a) == ds.domain("user");
    }
    EXPECT_TRUE(has_stats);
    EXPECT_TRUE(has_user);
  }

  // Cancelling a user's Stats annotation kills their contributions
  // (Example 2.3.1 at scale).
  AnnotationId u = ds.registry->AnnotationsInDomain(ds.domain("user"))[0];
  AnnotationId s =
      ds.registry->Find("S_" + ds.registry->name(u)).MoveValue();
  EvalResult with =
      ds.provenance->Evaluate(MaterializedValuation(ds.registry->size()));
  EvalResult without = ds.provenance->Evaluate(
      MaterializedValuation(Valuation({s}), ds.registry->size()));
  // MAX aggregation: values can only drop (or stay) when reviews vanish.
  for (const auto& coord : with.coords()) {
    EXPECT_LE(without.CoordValue(coord.group), coord.value);
  }
}

TEST(MovieLensGeneratorTest, GuardedExpressionSummarizes) {
  MovieLensConfig config;
  config.num_users = 10;
  config.num_movies = 4;
  config.with_guards = true;
  Dataset ds = MovieLensGenerator::Generate(config);
  auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 4;
  options.incremental = SummarizerOptions::Incremental::kEuclidean;
  options.phi = ds.phi;
  Summarizer s(ds.provenance.get(), ds.registry.get(), &ds.ctx,
               &ds.constraints, &oracle, &valuations, options);
  auto outcome = s.Run();
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().final_size, ds.provenance->Size());
}

TEST(MovieLensGeneratorTest, SumAggregationOption) {
  MovieLensConfig config;
  config.agg = AggKind::kSum;
  Dataset ds = MovieLensGenerator::Generate(config);
  const auto* agg = dynamic_cast<const AggregateExpression*>(
      ds.provenance.get());
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->agg(), AggKind::kSum);
}

}  // namespace
}  // namespace prox
