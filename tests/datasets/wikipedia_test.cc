#include "datasets/wikipedia.h"

#include <gtest/gtest.h>

#include "provenance/aggregate_expr.h"

namespace prox {
namespace {

TEST(WikipediaGeneratorTest, DeterministicForFixedSeed) {
  Dataset a = WikipediaGenerator::Generate(WikipediaConfig{});
  Dataset b = WikipediaGenerator::Generate(WikipediaConfig{});
  EXPECT_EQ(a.provenance->ToString(*a.registry),
            b.provenance->ToString(*b.registry));
}

TEST(WikipediaGeneratorTest, Table51StructureHolds) {
  // Every term is (Username·PageTitle) ⊗ (EditType, 1) with SUM
  // aggregation and page grouping.
  Dataset ds = WikipediaGenerator::Generate(WikipediaConfig{});
  const auto* agg = dynamic_cast<const AggregateExpression*>(
      ds.provenance.get());
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->agg(), AggKind::kSum);
  DomainId user = ds.domain("wiki_user");
  DomainId page = ds.domain("page");
  for (const TensorTerm& t : agg->terms()) {
    ASSERT_EQ(t.monomial.factors().size(), 2u);
    EXPECT_EQ(ds.registry->domain(t.monomial.factors()[0]), user);
    EXPECT_EQ(ds.registry->domain(t.monomial.factors()[1]), page);
    EXPECT_EQ(ds.registry->domain(t.group), page);
    EXPECT_TRUE(t.value.value == 0.0 || t.value.value == 1.0);
  }
}

TEST(WikipediaGeneratorTest, PagesDenoteLeafConcepts) {
  Dataset ds = WikipediaGenerator::Generate(WikipediaConfig{});
  ASSERT_TRUE(ds.ctx.taxonomy.has_value());
  for (AnnotationId page :
       ds.registry->AnnotationsInDomain(ds.domain("page"))) {
    if (ds.registry->is_summary(page)) continue;
    ConceptId c = ds.ctx.ConceptOf(page);
    ASSERT_NE(c, kNoConcept);
    EXPECT_TRUE(ds.ctx.taxonomy->children(c).empty())
        << "page concept should be a leaf";
  }
}

TEST(WikipediaGeneratorTest, TaxonomyHasWordNetBackbone) {
  Dataset ds = WikipediaGenerator::Generate(WikipediaConfig{});
  const Taxonomy& tax = *ds.ctx.taxonomy;
  ASSERT_TRUE(tax.Find("wordnet_entity").ok());
  ConceptId singer = tax.Find("wordnet_singer").MoveValue();
  ConceptId guitarist = tax.Find("wordnet_guitarist").MoveValue();
  ConceptId artist = tax.Find("wordnet_artist").MoveValue();
  EXPECT_EQ(tax.Lca(singer, guitarist), artist);
}

TEST(WikipediaGeneratorTest, PageMergesConstrainedByTaxonomy) {
  Dataset ds = WikipediaGenerator::Generate(WikipediaConfig{});
  DomainId page = ds.domain("page");
  auto pages = ds.registry->AnnotationsInDomain(page);
  ASSERT_GE(pages.size(), 2u);
  // Same-leaf pages (if any) merge under the leaf name; any two pages under
  // wordnet_person merge under a sub-root ancestor; person-vs-place pairs
  // are rejected (root-only LCA).
  const Taxonomy& tax = *ds.ctx.taxonomy;
  ConceptId root = tax.Find("wordnet_entity").MoveValue();
  for (size_t i = 0; i < pages.size(); ++i) {
    for (size_t j = i + 1; j < pages.size(); ++j) {
      MergeDecision d =
          ds.constraints.Evaluate(page, {pages[i], pages[j]}, ds.ctx);
      ConceptId lca =
          tax.Lca(ds.ctx.ConceptOf(pages[i]), ds.ctx.ConceptOf(pages[j]));
      EXPECT_EQ(d.allowed, lca != root);
      if (d.allowed) {
        EXPECT_EQ(d.name, tax.name(lca));
      }
    }
  }
}

TEST(WikipediaGeneratorTest, UsersCarryContributionAttributes) {
  Dataset ds = WikipediaGenerator::Generate(WikipediaConfig{});
  const EntityTable* users = ds.ctx.TableFor(ds.domain("wiki_user"));
  ASSERT_NE(users, nullptr);
  EXPECT_TRUE(users->FindAttribute("IsRegistered").ok());
  EXPECT_TRUE(users->FindAttribute("Gender").ok());
  EXPECT_TRUE(users->FindAttribute("ContributionLevel").ok());
}

TEST(WikipediaGeneratorTest, FeaturesForBothClusterableDomains) {
  Dataset ds = WikipediaGenerator::Generate(WikipediaConfig{});
  EXPECT_EQ(ds.features.count(ds.domain("wiki_user")), 1u);
  EXPECT_EQ(ds.features.count(ds.domain("page")), 1u);
}

TEST(WikipediaGeneratorTest, ScalesWithConfig) {
  WikipediaConfig config;
  config.num_users = 8;
  config.num_pages = 6;
  Dataset ds = WikipediaGenerator::Generate(config);
  EXPECT_EQ(ds.registry->AnnotationsInDomain(ds.domain("wiki_user")).size(),
            8u);
  EXPECT_EQ(ds.registry->AnnotationsInDomain(ds.domain("page")).size(), 6u);
}

}  // namespace
}  // namespace prox
