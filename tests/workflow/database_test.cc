#include "workflow/database.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

TEST(AnnotatedTableTest, InsertAndLookup) {
  AnnotatedTable t("Users", {"UID", "Gender"});
  ASSERT_TRUE(t.Insert({"u1", "F"}, 7).ok());
  ASSERT_TRUE(t.Insert({"u2", "M"}, 8).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Value(0, "UID"), "u1");
  EXPECT_EQ(t.Value(1, "Gender"), "M");
  EXPECT_EQ(t.row(0).annotation, 7u);
}

TEST(AnnotatedTableTest, ArityMismatchRejected) {
  AnnotatedTable t("Users", {"UID", "Gender"});
  EXPECT_EQ(t.Insert({"u1"}).code(), StatusCode::kInvalidArgument);
}

TEST(AnnotatedTableTest, ColumnIndexErrors) {
  AnnotatedTable t("Users", {"UID"});
  EXPECT_TRUE(t.ColumnIndex("UID").ok());
  EXPECT_EQ(t.ColumnIndex("Nope").status().code(), StatusCode::kNotFound);
}

TEST(AnnotatedTableTest, FindMatchesColumnValues) {
  AnnotatedTable t("Stats", {"UID", "NumRate"});
  ASSERT_TRUE(t.Insert({"u1", "1"}).ok());
  ASSERT_TRUE(t.Insert({"u2", "3"}).ok());
  ASSERT_TRUE(t.Insert({"u1", "5"}).ok());
  EXPECT_EQ(t.Find("UID", "u1"), (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(t.Find("UID", "u9").empty());
  EXPECT_TRUE(t.Find("NoColumn", "x").empty());
}

TEST(AnnotatedTableTest, MutableRowUpdates) {
  AnnotatedTable t("Stats", {"UID", "NumRate"});
  ASSERT_TRUE(t.Insert({"u1", "1"}).ok());
  t.mutable_row(0)->values[1] = "2";
  EXPECT_EQ(t.Value(0, "NumRate"), "2");
}

TEST(WorkflowDatabaseTest, CreateAndFetchTables) {
  WorkflowDatabase db;
  ASSERT_TRUE(db.CreateTable("Users", {"UID"}).ok());
  EXPECT_TRUE(db.HasTable("Users"));
  EXPECT_FALSE(db.HasTable("Stats"));
  auto table = db.Table("Users");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->name(), "Users");
  EXPECT_EQ(db.Table("Stats").status().code(), StatusCode::kNotFound);
}

TEST(WorkflowDatabaseTest, DuplicateTableRejected) {
  WorkflowDatabase db;
  ASSERT_TRUE(db.CreateTable("Users", {"UID"}).ok());
  EXPECT_EQ(db.CreateTable("Users", {"UID"}).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace prox
