// Positive relational algebra with semiring provenance — the [21]
// substrate. The canonical checks: join multiplies, union/projection add,
// and the derived polynomials evaluate correctly under truth valuations.

#include "workflow/relalg.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

/// R(a, b) = {(1, 2)@r1, (1, 3)@r2}; S(b, c) = {(2, 7)@s1, (3, 7)@s2}.
struct RelalgFixture {
  AnnotationRegistry registry;
  AnnotationId r1, r2, s1, s2;
  KRelation r{"R", {"a", "b"}};
  KRelation s{"S", {"b", "c"}};

  RelalgFixture() {
    DomainId d = registry.AddDomain("tuple");
    r1 = registry.Add(d, "r1").MoveValue();
    r2 = registry.Add(d, "r2").MoveValue();
    s1 = registry.Add(d, "s1").MoveValue();
    s2 = registry.Add(d, "s2").MoveValue();
    EXPECT_TRUE(r.InsertBase({"1", "2"}, r1).ok());
    EXPECT_TRUE(r.InsertBase({"1", "3"}, r2).ok());
    EXPECT_TRUE(s.InsertBase({"2", "7"}, s1).ok());
    EXPECT_TRUE(s.InsertBase({"3", "7"}, s2).ok());
  }
};

TEST(KRelationTest, BaseTuplesCarrySingleAnnotations) {
  RelalgFixture fx;
  EXPECT_EQ(fx.r.size(), 2u);
  EXPECT_EQ(fx.r.tuples()[0].provenance, Polynomial::FromVar(fx.r1));
}

TEST(KRelationTest, UnannotatedBaseTupleIsOne) {
  KRelation rel("T", {"x"});
  ASSERT_TRUE(rel.InsertBase({"v"}, kNoAnnotation).ok());
  EXPECT_EQ(rel.tuples()[0].provenance, Polynomial::One());
}

TEST(KRelationTest, ArityMismatchRejected) {
  KRelation rel("T", {"x", "y"});
  EXPECT_FALSE(rel.InsertBase({"v"}, kNoAnnotation).ok());
}

TEST(RelalgTest, SelectKeepsProvenance) {
  RelalgFixture fx;
  auto selected = relalg::SelectEq(fx.r, "b", "2");
  ASSERT_TRUE(selected.ok());
  ASSERT_EQ(selected.value().size(), 1u);
  EXPECT_EQ(selected.value().tuples()[0].provenance,
            Polynomial::FromVar(fx.r1));
  EXPECT_FALSE(relalg::SelectEq(fx.r, "nope", "2").ok());
}

TEST(RelalgTest, JoinMultipliesProvenance) {
  RelalgFixture fx;
  auto joined = relalg::NaturalJoin(fx.r, fx.s);
  ASSERT_TRUE(joined.ok());
  ASSERT_EQ(joined.value().size(), 2u);
  // (1,2,7) @ r1·s1 and (1,3,7) @ r2·s2.
  EXPECT_EQ(joined.value().tuples()[0].provenance,
            Polynomial::FromVar(fx.r1) * Polynomial::FromVar(fx.s1));
  EXPECT_EQ(joined.value().tuples()[1].provenance,
            Polynomial::FromVar(fx.r2) * Polynomial::FromVar(fx.s2));
  EXPECT_EQ(joined.value().columns(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RelalgTest, JoinWithoutSharedColumnsRejected) {
  RelalgFixture fx;
  KRelation t("T", {"x"});
  EXPECT_FALSE(relalg::NaturalJoin(fx.r, t).ok());
}

TEST(RelalgTest, ProjectionAddsAlternativeDerivations) {
  // π_{a,c}(R ⋈ S): both joined tuples project to (1, 7), so the
  // provenance is r1·s1 + r2·s2 — the classic [21] example shape.
  RelalgFixture fx;
  auto joined = relalg::NaturalJoin(fx.r, fx.s).MoveValue();
  auto projected = relalg::Project(joined, {"a", "c"});
  ASSERT_TRUE(projected.ok());
  ASSERT_EQ(projected.value().size(), 1u);
  Polynomial expected =
      Polynomial::FromVar(fx.r1) * Polynomial::FromVar(fx.s1) +
      Polynomial::FromVar(fx.r2) * Polynomial::FromVar(fx.s2);
  EXPECT_EQ(projected.value().tuples()[0].provenance, expected);
}

TEST(RelalgTest, UnionAddsProvenanceOfEqualTuples) {
  RelalgFixture fx;
  KRelation r_copy("R2", {"a", "b"});
  ASSERT_TRUE(r_copy.InsertBase({"1", "2"}, fx.s1).ok());  // same tuple
  auto unioned = relalg::Union(fx.r, r_copy);
  ASSERT_TRUE(unioned.ok());
  ASSERT_EQ(unioned.value().size(), 2u);
  EXPECT_EQ(unioned.value().tuples()[0].provenance,
            Polynomial::FromVar(fx.r1) + Polynomial::FromVar(fx.s1));
}

TEST(RelalgTest, UnionRequiresSameSchema) {
  RelalgFixture fx;
  EXPECT_FALSE(relalg::Union(fx.r, fx.s).ok());
}

TEST(RelalgTest, DerivedProvenanceEvaluatesUnderValuations) {
  // Deleting r2 and s1 from the database kills both derivations of the
  // projected tuple; keeping r1, s1 keeps one.
  RelalgFixture fx;
  auto projected =
      relalg::Project(relalg::NaturalJoin(fx.r, fx.s).MoveValue(),
                      {"a", "c"})
          .MoveValue();
  const Polynomial& p = projected.tuples()[0].provenance;
  auto truth_without = [&](std::vector<AnnotationId> dead) {
    return p.EvaluateBool([&dead](Polynomial::Var v) {
      return std::find(dead.begin(), dead.end(), v) == dead.end();
    });
  };
  EXPECT_EQ(truth_without({}), 2u);              // both derivations
  EXPECT_EQ(truth_without({fx.r2}), 1u);         // one left
  EXPECT_EQ(truth_without({fx.r2, fx.s1}), 0u);  // gone
}

TEST(RelalgTest, ComposedQueryMatchesHandDerivation) {
  // σ_{c=7}(R ⋈ S) then project to {b}: tuple (2)@r1·s1, (3)@r2·s2.
  RelalgFixture fx;
  auto joined = relalg::NaturalJoin(fx.r, fx.s).MoveValue();
  auto filtered = relalg::SelectEq(joined, "c", "7").MoveValue();
  auto projected = relalg::Project(filtered, {"b"}).MoveValue();
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_EQ(projected.tuples()[0].values,
            (std::vector<std::string>{"2"}));
  EXPECT_EQ(projected.tuples()[0].provenance,
            Polynomial::FromVar(fx.r1) * Polynomial::FromVar(fx.s1));
}

TEST(RelalgTest, ToStringShowsProvenance) {
  RelalgFixture fx;
  std::string text = fx.r.ToString(fx.registry);
  EXPECT_NE(text.find("R(a, b)"), std::string::npos);
  EXPECT_NE(text.find("@ r1"), std::string::npos);
}

}  // namespace
}  // namespace prox
