#include "workflow/movie_review_workflow.h"

#include <gtest/gtest.h>

namespace prox {
namespace {

/// The Example 2.2.1 setting: three audience users reviewing "MatchPoint"
/// through one platform; U2 also reviews "BlueJasmine".
struct WorkflowFixture {
  AnnotationRegistry registry;
  MovieReviewWorkflowBuilder builder{&registry};

  WorkflowFixture() {
    builder.AddUser("1", "F", "audience");
    builder.AddUser("2", "F", "audience");
    builder.AddUser("3", "M", "audience");
  }
};

TEST(MovieReviewWorkflowTest, ProducesGuardedProvenance) {
  WorkflowFixture fx;
  // Each user has several reviews so the activity guard (> 2 reviews)
  // differs between users: U1 has 3 reviews, U2 has 2, U3 has 5.
  std::vector<RawReview> reviews = {
      {"1", "MatchPoint", 3}, {"1", "Scoop", 2},      {"1", "Zelig", 4},
      {"2", "MatchPoint", 5}, {"2", "BlueJasmine", 4},
      {"3", "MatchPoint", 3}, {"3", "Scoop", 1},      {"3", "Zelig", 2},
      {"3", "Manhattan", 4},  {"3", "Sleeper", 5}};
  fx.builder.AddPlatform("imdb", "audience", reviews);
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok()) << run.status();
  const AggregateExpression& p = *run.value().provenance;

  // One tensor per review, each guarded.
  EXPECT_EQ(p.num_terms(), reviews.size());
  for (const TensorTerm& term : p.terms()) {
    ASSERT_TRUE(term.guard.has_value());
    EXPECT_EQ(term.guard->op(), CompareOp::kGt);
    EXPECT_EQ(term.guard->threshold(), 2.0);
    EXPECT_EQ(term.monomial.Size(), 2);  // U_uid · Movie
  }
}

TEST(MovieReviewWorkflowTest, StatsTableAccumulates) {
  WorkflowFixture fx;
  fx.builder.AddPlatform("imdb", "audience",
                         {{"1", "MatchPoint", 3},
                          {"1", "Scoop", 5},
                          {"2", "MatchPoint", 4}});
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok());
  const AnnotatedTable* stats = run.value().db.Table("Stats").value();
  auto u1 = stats->Find("UID", "1");
  ASSERT_EQ(u1.size(), 1u);
  EXPECT_EQ(stats->Value(u1[0], "NumRate"), "2");
  EXPECT_EQ(stats->Value(u1[0], "MaxRate"), "5.0");
}

TEST(MovieReviewWorkflowTest, GuardEnforcesActivityThreshold) {
  // Example 2.3.1's semantics: users below the review threshold contribute
  // nothing under all-true evaluation because their guard body compares
  // NumRate ≤ 2.
  WorkflowFixture fx;
  fx.builder.AddPlatform("imdb", "audience",
                         {{"1", "MatchPoint", 5},        // U1: 1 review
                          {"2", "MatchPoint", 3},        // U2: 3 reviews
                          {"2", "Scoop", 2},
                          {"2", "Zelig", 1}});
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok());
  const AggregateExpression& p = *run.value().provenance;
  MaterializedValuation all_true(fx.registry.size());
  EvalResult r = p.Evaluate(all_true);
  AnnotationId match_point = fx.registry.Find("MatchPoint").MoveValue();
  // U1's 5 is guarded out (1 review ≤ 2); U2's 3 survives (3 > 2).
  EXPECT_EQ(r.CoordValue(match_point), 3.0);
}

TEST(MovieReviewWorkflowTest, CancellingStatsTupleKillsReview) {
  // Example 2.3.1: mapping S_i to 0 cancels the user's reviews through
  // the guard even when U_i itself is kept true.
  WorkflowFixture fx;
  fx.builder.AddPlatform("imdb", "audience",
                         {{"1", "MatchPoint", 3},
                          {"1", "Scoop", 4},
                          {"1", "Zelig", 5}});
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok());
  const AggregateExpression& p = *run.value().provenance;
  AnnotationId s1 = fx.registry.Find("S_1").MoveValue();
  AnnotationId match_point = fx.registry.Find("MatchPoint").MoveValue();

  EvalResult with_stats =
      p.Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_EQ(with_stats.CoordValue(match_point), 3.0);

  EvalResult without_stats = p.Evaluate(
      MaterializedValuation(Valuation({s1}), fx.registry.size()));
  EXPECT_EQ(without_stats.CoordValue(match_point), 0.0);
}

TEST(MovieReviewWorkflowTest, RoleFilterDropsOtherRoles) {
  WorkflowFixture fx;
  fx.builder.AddUser("9", "M", "critic");
  fx.builder.AddPlatform("imdb", "audience",
                         {{"1", "MatchPoint", 3},
                          {"1", "Scoop", 4},
                          {"1", "Zelig", 5},
                          {"9", "MatchPoint", 1}});
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok());
  // The critic's review is filtered by the audience sanitizer.
  for (const TensorTerm& term : run.value().provenance->terms()) {
    AnnotationId u9 = fx.registry.Find("U_9").MoveValue();
    EXPECT_FALSE(term.monomial.Contains(u9));
  }
}

TEST(MovieReviewWorkflowTest, MultiplePlatformsFeedOneAggregator) {
  WorkflowFixture fx;
  fx.builder.AddUser("9", "M", "critic");
  fx.builder.AddPlatform("imdb", "audience",
                         {{"1", "MatchPoint", 3},
                          {"1", "Scoop", 4},
                          {"1", "Zelig", 5}});
  fx.builder.AddPlatform("times", "critic",
                         {{"9", "MatchPoint", 5},
                          {"9", "Scoop", 4},
                          {"9", "Zelig", 2}});
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok());
  AnnotationId match_point = fx.registry.Find("MatchPoint").MoveValue();
  EvalResult r = run.value().provenance->Evaluate(
      MaterializedValuation(fx.registry.size()));
  EXPECT_EQ(r.CoordValue(match_point), 5.0);  // the critic's 5 wins

  // Movies result table materialized by the aggregator.
  const AnnotatedTable* movies = run.value().db.Table("Movies").value();
  EXPECT_EQ(movies->num_rows(), 3u);
}

TEST(MovieReviewWorkflowTest, UnknownUsersAreDropped) {
  WorkflowFixture fx;
  fx.builder.AddPlatform("imdb", "audience", {{"404", "MatchPoint", 5}});
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().provenance->num_terms(), 0u);
}

TEST(MovieReviewWorkflowTest, WorkflowProvenanceIsSummarizable) {
  // The workflow output plugs straight into the provenance machinery:
  // mapping the two female users to one annotation merges their tensors.
  WorkflowFixture fx;
  fx.builder.AddPlatform("imdb", "audience",
                         {{"1", "MatchPoint", 3}, {"1", "Scoop", 4},
                          {"1", "Zelig", 5},      {"2", "MatchPoint", 5},
                          {"2", "Scoop", 2},      {"2", "Zelig", 1}});
  auto run = fx.builder.Run(AggKind::kMax);
  ASSERT_TRUE(run.ok());
  AnnotationId u1 = fx.registry.Find("U_1").MoveValue();
  AnnotationId u2 = fx.registry.Find("U_2").MoveValue();
  AnnotationId female =
      fx.registry.AddSummary(fx.registry.domain(u1), "Female");
  Homomorphism h;
  h.Set(u1, female);
  h.Set(u2, female);
  auto mapped = run.value().provenance->Apply(h);
  EXPECT_LE(mapped->Size(), run.value().provenance->Size());
  std::vector<AnnotationId> anns;
  mapped->CollectAnnotations(&anns);
  EXPECT_TRUE(std::find(anns.begin(), anns.end(), female) != anns.end());
}

}  // namespace
}  // namespace prox
