#include "ddp/machine.h"

#include <gtest/gtest.h>

#include "datasets/ddp.h"

namespace prox {
namespace {

/// A hand-built machine realizing Example 5.2.2's two executions:
///   0 --⟨c1,1⟩--> 1 --⟨0,[d1·d2]≠0⟩--> 2 (accepting)
///   0 --⟨0,[d2·d3]=0⟩--> 1' --⟨c2,1⟩--> 2
/// modeled with a diamond over 4 states.
struct MachineFixture {
  AnnotationRegistry registry;
  AnnotationId c1, c2, d1, d2, d3;
  DdpMachine machine{4};

  MachineFixture() {
    DomainId cost = registry.AddDomain("cost_var");
    DomainId db = registry.AddDomain("db_var");
    c1 = registry.Add(cost, "c1").MoveValue();
    c2 = registry.Add(cost, "c2").MoveValue();
    d1 = registry.Add(db, "d1").MoveValue();
    d2 = registry.Add(db, "d2").MoveValue();
    d3 = registry.Add(db, "d3").MoveValue();
    machine.SetCost(c1, 4.0);
    machine.SetCost(c2, 6.0);
    machine.AddUserEdge(0, 1, c1);
    machine.AddDbEdge(1, 3, Monomial({d1, d2}), /*nonzero=*/true);
    machine.AddDbEdge(0, 2, Monomial({d2, d3}), /*nonzero=*/false);
    machine.AddUserEdge(2, 3, c2);
    machine.SetAccepting(3);
  }
};

TEST(DdpMachineTest, CompilesExample522Provenance) {
  MachineFixture fx;
  auto compiled = fx.machine.CompileProvenance(/*max_transitions=*/5);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  const DdpExpression& expr = *compiled.value();
  EXPECT_EQ(expr.executions().size(), 2u);
  EXPECT_EQ(expr.Size(), 6);
  EXPECT_EQ(expr.CostOf(fx.c1), 4.0);
  EXPECT_EQ(expr.CostOf(fx.c2), 6.0);

  // Evaluation semantics match the hand-built expression of the
  // provenance tests: all DB vars present -> first execution feasible at
  // cost 4.
  EvalResult r = expr.Evaluate(MaterializedValuation(fx.registry.size()));
  EXPECT_TRUE(r.feasible());
  EXPECT_EQ(r.cost(), 4.0);

  // Cancel d1 only: neither guard holds.
  r = expr.Evaluate(
      MaterializedValuation(Valuation({fx.d1}), fx.registry.size()));
  EXPECT_FALSE(r.feasible());
}

TEST(DdpMachineTest, TransitionBoundTruncatesLongPaths) {
  MachineFixture fx;
  auto compiled = fx.machine.CompileProvenance(/*max_transitions=*/1);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled.value()->executions().empty());  // both paths are 2
}

TEST(DdpMachineTest, CyclicMachinesEnumerateBoundedPaths) {
  AnnotationRegistry registry;
  DomainId cost = registry.AddDomain("cost_var");
  AnnotationId c1 = registry.Add(cost, "c1").MoveValue();
  DdpMachine machine(2);
  machine.SetCost(c1, 1.0);
  machine.AddUserEdge(0, 1, c1);
  machine.AddUserEdge(1, 0, c1);
  machine.SetAccepting(1);
  auto compiled = machine.CompileProvenance(/*max_transitions=*/5);
  ASSERT_TRUE(compiled.ok());
  // Paths of length 1, 3 and 5 reach the accepting state.
  EXPECT_EQ(compiled.value()->executions().size(), 3u);
}

TEST(DdpMachineTest, ExplosionGuardFails) {
  // A machine with many parallel edges explodes combinatorially; the
  // enumeration cap turns that into an error instead of an OOM.
  AnnotationRegistry registry;
  DomainId cost = registry.AddDomain("cost_var");
  DdpMachine machine(6);
  std::vector<AnnotationId> vars;
  for (int i = 0; i < 10; ++i) {
    vars.push_back(
        registry.Add(cost, "c" + std::to_string(i)).MoveValue());
  }
  for (int s = 0; s < 5; ++s) {
    for (AnnotationId v : vars) machine.AddUserEdge(s, s + 1, v);
  }
  machine.SetAccepting(5);
  auto compiled =
      machine.CompileProvenance(/*max_transitions=*/5, /*max_executions=*/100);
  EXPECT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kOutOfRange);
}

TEST(DdpMachineTest, InvalidEdgesRejected) {
  AnnotationRegistry registry;
  DomainId cost = registry.AddDomain("cost_var");
  AnnotationId c1 = registry.Add(cost, "c1").MoveValue();
  DdpMachine machine(2);
  machine.AddUserEdge(0, 7, c1);  // out of range
  machine.SetAccepting(1);
  EXPECT_FALSE(machine.CompileProvenance(3).ok());
}

TEST(RandomDdpMachineTest, GeneratesCompilableMachines) {
  AnnotationRegistry registry;
  EntityTable costs("CostVars");
  costs.AddAttribute("Cost");
  EntityTable db("DbVars");
  db.AddAttribute("Table");
  Rng rng(7);
  RandomMachineConfig config;
  auto output = RandomDdpMachine::Generate(config, &registry, &costs, &db,
                                           &rng);
  EXPECT_EQ(output.cost_vars.size(), 8u);
  EXPECT_EQ(output.db_vars.size(), 10u);
  auto compiled = output.machine.CompileProvenance(5);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_GE(compiled.value()->executions().size(), 1u);
}

TEST(RandomDdpMachineTest, DeterministicForFixedSeed) {
  auto build = [] {
    AnnotationRegistry registry;
    EntityTable costs("CostVars");
    costs.AddAttribute("Cost");
    EntityTable db("DbVars");
    db.AddAttribute("Table");
    Rng rng(42);
    auto output = RandomDdpMachine::Generate(RandomMachineConfig{},
                                             &registry, &costs, &db, &rng);
    return output.machine.CompileProvenance(5)
        .MoveValue()
        ->ToString(registry);
  };
  EXPECT_EQ(build(), build());
}

TEST(DdpGeneratorMachineModeTest, ProducesSummarizableDataset) {
  DdpConfig config;
  config.from_machine = true;
  config.num_executions = 12;
  Dataset ds = DdpGenerator::Generate(config);
  EXPECT_GT(ds.provenance->Size(), 0);
  // The dataset is fully wired: constraints, valuations, VAL-FUNC.
  auto valuations = ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EXPECT_FALSE(valuations.empty());
  EvalResult r =
      ds.provenance->Evaluate(MaterializedValuation(ds.registry->size()));
  EXPECT_EQ(r.kind(), EvalResult::Kind::kCostBool);
}

}  // namespace
}  // namespace prox
