// Golden byte-identity: the flat prox::ir hot path must produce the exact
// bytes the legacy pointer-tree path produces — summary expression text,
// group names, distances, and the /v1/summarize JSON body — on all three
// dataset families, at thread counts 1 and 8. Every run regenerates its
// dataset from the same seed/config (summarization registers summary
// annotations, so a dataset cannot be reused across runs).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "engine/codec.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

namespace prox {
namespace {

struct GoldenRun {
  std::string expression;  // summary->ToString
  std::string json;        // /v1/summarize body (groups, steps, distances)
  double final_distance = 0.0;
  int64_t final_size = 0;
};

template <typename Generator, typename Config>
GoldenRun RunFamily(const Config& config, bool use_ir, int threads) {
  Dataset ds = Generator::Generate(config);
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations, threads);
  SummarizerOptions options;
  options.w_dist = 0.5;
  options.w_size = 0.5;
  options.max_steps = 6;
  options.phi = ds.phi;
  options.threads = threads;
  options.use_ir = use_ir;
  Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, &oracle, &valuations, options);
  SummaryOutcome outcome = summarizer.Run().MoveValue();

  GoldenRun run;
  run.expression = outcome.summary->ToString(*ds.registry);
  run.json = WriteJson(engine::SummaryOutcomeToJson(outcome, *ds.registry));
  run.final_distance = outcome.final_distance;
  run.final_size = outcome.final_size;
  return run;
}

template <typename Generator, typename Config>
void ExpectByteIdentical(const Config& config) {
  const GoldenRun reference = RunFamily<Generator>(config, /*use_ir=*/false,
                                                   /*threads=*/1);
  EXPECT_FALSE(reference.expression.empty());
  EXPECT_FALSE(reference.json.empty());

  struct Variant {
    bool use_ir;
    int threads;
  };
  const Variant variants[] = {{true, 1}, {true, 8}, {false, 8}};
  for (const Variant& v : variants) {
    const GoldenRun run = RunFamily<Generator>(config, v.use_ir, v.threads);
    SCOPED_TRACE(std::string(v.use_ir ? "ir" : "legacy") + " threads=" +
                 std::to_string(v.threads));
    EXPECT_EQ(run.expression, reference.expression);
    EXPECT_EQ(run.json, reference.json);
    EXPECT_EQ(run.final_distance, reference.final_distance);  // bit-exact
    EXPECT_EQ(run.final_size, reference.final_size);
  }
}

TEST(GoldenIdentityTest, MovieLens) {
  MovieLensConfig config;
  config.num_users = 20;
  config.num_movies = 6;
  config.ratings_per_user = 3;
  ExpectByteIdentical<MovieLensGenerator>(config);
}

TEST(GoldenIdentityTest, Wikipedia) {
  WikipediaConfig config;
  config.num_users = 10;
  config.num_pages = 8;
  ExpectByteIdentical<WikipediaGenerator>(config);
}

TEST(GoldenIdentityTest, Ddp) {
  DdpConfig config;
  config.num_executions = 8;
  ExpectByteIdentical<DdpGenerator>(config);
}

TEST(GoldenIdentityTest, DdpFromMachine) {
  DdpConfig config;
  config.from_machine = true;
  config.num_executions = 10;
  config.seed = 21;
  ExpectByteIdentical<DdpGenerator>(config);
}

TEST(GoldenIdentityTest, MovieLensWithIncrementalScoring) {
  // The incremental scorer snapshots the current expression through the
  // facade; it must stay bit-identical on the IR representation too.
  MovieLensConfig config;
  config.num_users = 16;
  config.num_movies = 5;
  config.ratings_per_user = 3;

  auto run = [&](bool use_ir) {
    Dataset ds = MovieLensGenerator::Generate(config);
    std::vector<Valuation> valuations =
        ds.valuation_class->Generate(*ds.provenance, ds.ctx);
    EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                              ds.val_func.get(), valuations, 1);
    SummarizerOptions options;
    options.max_steps = 5;
    options.phi = ds.phi;
    options.incremental = SummarizerOptions::Incremental::kEuclidean;
    options.use_ir = use_ir;
    Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                          &ds.constraints, &oracle, &valuations, options);
    SummaryOutcome outcome = summarizer.Run().MoveValue();
    return WriteJson(engine::SummaryOutcomeToJson(outcome, *ds.registry));
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace prox
