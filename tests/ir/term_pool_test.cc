// Unit coverage for the TermPool arena: hash-consing, overlay append, and
// the PoolView comparators that replicate the legacy Monomial/Guard order.

#include "ir/term_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "provenance/guard.h"
#include "provenance/monomial.h"

namespace prox {
namespace ir {
namespace {

MonomialId Intern(TermPool* pool, std::vector<AnnotationId> factors) {
  return pool->InternMonomial(factors.data(), factors.size());
}

TEST(TermPoolTest, InternMonomialHashConses) {
  TermPool pool;
  MonomialId a = Intern(&pool, {1, 2, 3});
  MonomialId b = Intern(&pool, {1, 2, 3});
  MonomialId c = Intern(&pool, {1, 2, 4});
  EXPECT_EQ(a, b);  // id equality == content equality
  EXPECT_NE(a, c);
  EXPECT_EQ(pool.num_monomials(), 2u);

  ASSERT_EQ(pool.mono_len(a), 3u);
  const AnnotationId* data = pool.mono_data(a);
  EXPECT_EQ(data[0], 1u);
  EXPECT_EQ(data[1], 2u);
  EXPECT_EQ(data[2], 3u);
}

TEST(TermPoolTest, EmptyMonomialInternsOnce) {
  TermPool pool;
  MonomialId a = Intern(&pool, {});
  MonomialId b = Intern(&pool, {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.mono_len(a), 0u);
}

TEST(TermPoolTest, PrefixesAndPermColumnsAreDistinct) {
  // Spans that share a prefix (or content at different lengths) must not
  // collide: length participates in identity.
  TermPool pool;
  MonomialId ab = Intern(&pool, {1, 2});
  MonomialId abc = Intern(&pool, {1, 2, 3});
  MonomialId a = Intern(&pool, {1});
  EXPECT_NE(ab, abc);
  EXPECT_NE(ab, a);
  EXPECT_NE(abc, a);
}

TEST(TermPoolTest, AppendMonomialDoesNotDedupe) {
  // Overlay pools skip the hash index — two appends of the same content
  // are two rows. (The owning expression tags these with kOverlayBit.)
  TermPool overlay;
  std::vector<AnnotationId> factors = {7, 9};
  MonomialId a = overlay.AppendMonomial(factors.data(), factors.size());
  MonomialId b = overlay.AppendMonomial(factors.data(), factors.size());
  EXPECT_NE(a, b);
  EXPECT_EQ(overlay.num_monomials(), 2u);
}

TEST(TermPoolTest, InternGuardHashConses) {
  TermPool pool;
  MonomialId m = Intern(&pool, {4});
  MonomialId m2 = Intern(&pool, {5});
  GuardId g1 = pool.InternGuard(m, 2.0, CompareOp::kGt, 3.0);
  GuardId g2 = pool.InternGuard(m, 2.0, CompareOp::kGt, 3.0);
  GuardId g3 = pool.InternGuard(m, 2.0, CompareOp::kGe, 3.0);
  GuardId g4 = pool.InternGuard(m2, 2.0, CompareOp::kGt, 3.0);
  EXPECT_EQ(g1, g2);
  EXPECT_NE(g1, g3);  // op participates
  EXPECT_NE(g1, g4);  // body participates
  EXPECT_EQ(pool.num_guards(), 3u);

  const GuardRow& row = pool.guard(g1);
  EXPECT_EQ(row.mono, m);
  EXPECT_EQ(row.scalar, 2.0);
  EXPECT_EQ(row.op, CompareOp::kGt);
  EXPECT_EQ(row.threshold, 3.0);
}

int Sign(int v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

int LegacyMonomialSign(const Monomial& a, const Monomial& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

TEST(PoolViewTest, CompareMonomialsMatchesLegacyOrder) {
  TermPool pool;
  PoolView view(&pool, nullptr);
  const std::vector<std::vector<AnnotationId>> spans = {
      {}, {1}, {2}, {1, 2}, {1, 3}, {1, 2, 3}, {2, 3}};
  std::vector<MonomialId> ids;
  for (const auto& s : spans) {
    std::vector<AnnotationId> copy = s;
    ids.push_back(pool.InternMonomial(copy.data(), copy.size()));
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = 0; j < spans.size(); ++j) {
      Monomial ma((std::vector<AnnotationId>(spans[i])));
      Monomial mb((std::vector<AnnotationId>(spans[j])));
      EXPECT_EQ(Sign(view.CompareMonomials(ids[i], ids[j])),
                LegacyMonomialSign(ma, mb))
          << "spans " << i << " vs " << j;
      EXPECT_EQ(view.MonomialsEqual(ids[i], ids[j]), i == j);
    }
  }
}

TEST(PoolViewTest, CompareGuardsMatchesLegacyOrder) {
  TermPool pool;
  PoolView view(&pool, nullptr);
  struct Spec {
    std::vector<AnnotationId> body;
    double scalar;
    CompareOp op;
    double threshold;
  };
  const std::vector<Spec> specs = {
      {{1}, 1.0, CompareOp::kGt, 2.0}, {{1}, 1.0, CompareOp::kGt, 3.0},
      {{1}, 1.0, CompareOp::kLe, 2.0}, {{1}, 2.0, CompareOp::kGt, 2.0},
      {{2}, 1.0, CompareOp::kGt, 2.0},
  };
  std::vector<GuardId> ids;
  std::vector<Guard> legacy;
  for (const Spec& s : specs) {
    std::vector<AnnotationId> copy = s.body;
    MonomialId m = pool.InternMonomial(copy.data(), copy.size());
    ids.push_back(pool.InternGuard(m, s.scalar, s.op, s.threshold));
    legacy.emplace_back(Monomial(std::vector<AnnotationId>(s.body)), s.scalar,
                        s.op, s.threshold);
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    for (size_t j = 0; j < specs.size(); ++j) {
      int expected =
          legacy[i] < legacy[j] ? -1 : (legacy[j] < legacy[i] ? 1 : 0);
      EXPECT_EQ(Sign(view.CompareGuards(ids[i], ids[j])), expected)
          << "guards " << i << " vs " << j;
      EXPECT_EQ(view.GuardsEqual(ids[i], ids[j]), i == j);
    }
  }
}

TEST(PoolViewTest, OverlayBitResolvesAgainstOverlayPool) {
  TermPool shared;
  TermPool overlay;
  MonomialId s = Intern(&shared, {1, 2});
  std::vector<AnnotationId> same = {1, 2};
  std::vector<AnnotationId> other = {1, 5};
  MonomialId o_same =
      overlay.AppendMonomial(same.data(), same.size()) | kOverlayBit;
  MonomialId o_other =
      overlay.AppendMonomial(other.data(), other.size()) | kOverlayBit;

  PoolView view(&shared, &overlay);
  EXPECT_EQ(view.mono_len(o_same), 2u);
  EXPECT_EQ(view.mono_data(o_other)[1], 5u);
  // Cross-pool comparison is by content, not id.
  EXPECT_TRUE(view.MonomialsEqual(s, o_same));
  EXPECT_FALSE(view.MonomialsEqual(s, o_other));
  EXPECT_LT(view.CompareMonomials(o_same, o_other), 0);
}

}  // namespace
}  // namespace ir
}  // namespace prox
