// Representation-equivalence tests for the prox::ir flat expressions:
// adopting a legacy tree must preserve ToString/Size/Evaluate byte for
// byte, Apply must match the legacy result on both the main thread and
// exec workers (copy-on-write + overlay paths), and the Size cache must
// actually serve hits.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "exec/thread_pool.h"
#include "ir/adopt.h"
#include "ir/agg_expr.h"
#include "ir/ddp_expr.h"
#include "ir/poly_expr.h"
#include "ir/term_pool.h"
#include "obs/metrics.h"
#include "provenance/aggregate_expr.h"
#include "provenance/ddp_expr.h"
#include "provenance/polynomial_expr.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using testing_fixtures::MovieFixture;

std::shared_ptr<ir::TermPool> NewPool() {
  return std::make_shared<ir::TermPool>();
}

TEST(IrAdoptTest, AggregateMatchesLegacyByteForByte) {
  MovieFixture f;
  auto adopted = ir::Adopt(*f.p0, NewPool());
  ASSERT_TRUE(ir::IsIr(*adopted));

  EXPECT_EQ(adopted->ToString(f.registry), f.p0->ToString(f.registry));
  EXPECT_EQ(adopted->Size(), f.p0->Size());

  std::vector<AnnotationId> legacy_anns, ir_anns;
  f.p0->CollectAnnotations(&legacy_anns);
  adopted->CollectAnnotations(&ir_anns);
  EXPECT_EQ(ir_anns, legacy_anns);

  // Facade parity, term by term.
  const AggregateFacade* legacy = f.p0->AsAggregate();
  const AggregateFacade* flat = adopted->AsAggregate();
  ASSERT_NE(flat, nullptr);
  ASSERT_EQ(flat->agg_num_terms(), legacy->agg_num_terms());
  EXPECT_EQ(flat->agg_kind(), legacy->agg_kind());
  for (size_t i = 0; i < legacy->agg_num_terms(); ++i) {
    const AggTermView a = legacy->agg_term(i);
    const AggTermView b = flat->agg_term(i);
    EXPECT_EQ(MonomialFromSpan(b.mono, b.mono_len),
              MonomialFromSpan(a.mono, a.mono_len));
    EXPECT_EQ(b.group, a.group);
    EXPECT_EQ(b.value.value, a.value.value);
    EXPECT_EQ(b.value.count, a.value.count);
    EXPECT_EQ(b.has_guard, a.has_guard);
  }

  // Evaluation parity under all-true and under cancellations.
  const size_t n = f.registry.size();
  std::vector<Valuation> valuations = {Valuation({}, "all true"),
                                       Valuation({f.u2}, "cancel U2"),
                                       Valuation({f.u1, f.u3}, "cancel F")};
  for (const Valuation& v : valuations) {
    MaterializedValuation mat(v, n);
    EXPECT_EQ(adopted->Evaluate(mat).ToString(f.registry),
              f.p0->Evaluate(mat).ToString(f.registry))
        << v.label();
  }
}

TEST(IrAdoptTest, AdoptingAnIrExpressionClones) {
  MovieFixture f;
  auto adopted = ir::Adopt(*f.p0, NewPool());
  auto again = ir::Adopt(*adopted, NewPool());
  ASSERT_TRUE(ir::IsIr(*again));
  EXPECT_EQ(again->ToString(f.registry), f.p0->ToString(f.registry));
}

TEST(IrApplyTest, MainThreadApplyMatchesLegacyAndSharesUntouchedRows) {
  MovieFixture f;
  auto pool = NewPool();
  auto adopted = ir::Adopt(*f.p0, pool);

  AnnotationId audience =
      f.registry.AddSummary(f.user_domain, "Audience");
  Homomorphism h;
  h.Set(f.u1, audience);
  h.Set(f.u3, audience);

  auto legacy_applied = f.p0->Apply(h);
  auto ir_applied = adopted->Apply(h);
  EXPECT_EQ(ir_applied->ToString(f.registry),
            legacy_applied->ToString(f.registry));
  EXPECT_EQ(ir_applied->Size(), legacy_applied->Size());

  // Main-thread Apply interns into the shared pool: no overlay.
  const auto* flat =
      dynamic_cast<const ir::IrAggregateExpression*>(ir_applied.get());
  ASSERT_NE(flat, nullptr);
  EXPECT_FALSE(flat->has_overlay());

  // An identity homomorphism shares every interned id: the pool must not
  // grow at all (the copy-on-write fast path).
  const size_t monos_before = pool->num_monomials();
  auto identity_applied = adopted->Apply(Homomorphism::Identity());
  EXPECT_EQ(pool->num_monomials(), monos_before);
  EXPECT_EQ(identity_applied->ToString(f.registry),
            adopted->ToString(f.registry));
}

TEST(IrApplyTest, WorkerApplyUsesOverlayAndMatchesLegacy) {
  MovieFixture f;
  auto adopted = ir::Adopt(*f.p0, NewPool());

  AnnotationId fem = f.registry.AddSummary(f.user_domain, "F");
  Homomorphism h;
  h.Set(f.u1, fem);
  h.Set(f.u2, fem);
  auto legacy_applied = f.p0->Apply(h);

  // Run the same Apply on an exec worker; the result must resolve its
  // rewritten monomials through an expression-local overlay (workers never
  // intern into the shared pool) yet print/evaluate identically.
  std::unique_ptr<ProvenanceExpression> worker_result;
  bool ran_on_worker = false;
  exec::PoolRef pool_ref(2);
  exec::ParallelFor(pool_ref.pool(), 0, 1, 1, [&](int64_t) {
    ran_on_worker = exec::InParallelWorker();
    worker_result = adopted->Apply(h);
  });
  ASSERT_NE(worker_result, nullptr);
  EXPECT_EQ(worker_result->ToString(f.registry),
            legacy_applied->ToString(f.registry));

  const auto* flat =
      dynamic_cast<const ir::IrAggregateExpression*>(worker_result.get());
  ASSERT_NE(flat, nullptr);
  if (ran_on_worker) {
    EXPECT_TRUE(flat->has_overlay());
  }

  // The overlay result keeps evaluating correctly after further merges on
  // the main thread, and a re-Apply of it matches the legacy re-Apply.
  AnnotationId crowd = f.registry.AddSummary(f.user_domain, "Crowd");
  Homomorphism h2;
  h2.Set(fem, crowd);
  h2.Set(f.u3, crowd);
  EXPECT_EQ(worker_result->Apply(h2)->ToString(f.registry),
            legacy_applied->Apply(h2)->ToString(f.registry));

  MaterializedValuation all_true(f.registry.size());
  EXPECT_EQ(worker_result->Evaluate(all_true).ToString(f.registry),
            legacy_applied->Evaluate(all_true).ToString(f.registry));
}

TEST(IrDdpTest, AdoptApplyEvaluateMatchLegacy) {
  AnnotationRegistry registry;
  DomainId cost_domain = registry.AddDomain("cost_var");
  DomainId db_domain = registry.AddDomain("db_var");
  AnnotationId c1 = registry.Add(cost_domain, "c1").MoveValue();
  AnnotationId c2 = registry.Add(cost_domain, "c2").MoveValue();
  AnnotationId d1 = registry.Add(db_domain, "d1").MoveValue();
  AnnotationId d2 = registry.Add(db_domain, "d2").MoveValue();

  DdpExpression legacy;
  legacy.SetCost(c1, 2.0);
  legacy.SetCost(c2, 5.0);
  {
    DdpExecution e;
    e.transitions.push_back(DdpTransition::User(c1));
    e.transitions.push_back(DdpTransition::Db(Monomial({d1}), true));
    legacy.AddExecution(std::move(e));
  }
  {
    DdpExecution e;
    e.transitions.push_back(DdpTransition::User(c2));
    e.transitions.push_back(DdpTransition::Db(Monomial({d2}), false));
    legacy.AddExecution(std::move(e));
  }
  legacy.Simplify();

  auto adopted = ir::Adopt(legacy, NewPool());
  ASSERT_TRUE(ir::IsIr(*adopted));
  EXPECT_EQ(adopted->ToString(registry), legacy.ToString(registry));
  EXPECT_EQ(adopted->Size(), legacy.Size());
  ASSERT_NE(adopted->AsDdp(), nullptr);
  EXPECT_EQ(adopted->AsDdp()->ddp_costs(), legacy.ddp_costs());

  const size_t n = registry.size();
  std::vector<Valuation> valuations = {
      Valuation({}, "all"), Valuation({d1}, "drop d1"),
      Valuation({d1, d2}, "drop both"), Valuation({c1}, "waive c1")};
  for (const Valuation& v : valuations) {
    MaterializedValuation mat(v, n);
    EXPECT_EQ(adopted->Evaluate(mat).ToString(registry),
              legacy.Evaluate(mat).ToString(registry))
        << v.label();
  }

  // Merging the two db vars exercises the cost max-merge + dedupe path.
  AnnotationId db_all = registry.AddSummary(db_domain, "db");
  Homomorphism h;
  h.Set(d1, db_all);
  h.Set(d2, db_all);
  auto legacy_applied = legacy.Apply(h);
  auto ir_applied = adopted->Apply(h);
  EXPECT_EQ(ir_applied->ToString(registry),
            legacy_applied->ToString(registry));
  EXPECT_EQ(ir_applied->Size(), legacy_applied->Size());

  AnnotationId cost_all = registry.AddSummary(cost_domain, "c");
  Homomorphism hc;
  hc.Set(c1, cost_all);
  hc.Set(c2, cost_all);
  EXPECT_EQ(adopted->Apply(hc)->ToString(registry),
            legacy.Apply(hc)->ToString(registry));
}

TEST(IrPolynomialTest, AdoptAndApplyMatchLegacy) {
  AnnotationRegistry registry;
  DomainId d = registry.AddDomain("tuple");
  AnnotationId x = registry.Add(d, "x").MoveValue();
  AnnotationId y = registry.Add(d, "y").MoveValue();
  AnnotationId z = registry.Add(d, "z").MoveValue();

  Polynomial poly;
  poly.AddTerm({x, y}, 2);
  poly.AddTerm({z}, 1);
  poly.AddTerm({x, y}, 1);  // merges: coefficient 3
  PolynomialExpression legacy(std::move(poly));

  auto adopted = ir::Adopt(legacy, NewPool());
  ASSERT_TRUE(ir::IsIr(*adopted));
  EXPECT_EQ(adopted->ToString(registry), legacy.ToString(registry));
  EXPECT_EQ(adopted->Size(), legacy.Size());

  MaterializedValuation all_true(registry.size());
  EXPECT_EQ(adopted->Evaluate(all_true).ToString(registry),
            legacy.Evaluate(all_true).ToString(registry));
  MaterializedValuation no_y(Valuation({y}), registry.size());
  EXPECT_EQ(adopted->Evaluate(no_y).ToString(registry),
            legacy.Evaluate(no_y).ToString(registry));

  AnnotationId s = registry.AddSummary(d, "s");
  Homomorphism h;
  h.Set(x, s);
  h.Set(z, s);
  EXPECT_EQ(adopted->Apply(h)->ToString(registry),
            legacy.Apply(h)->ToString(registry));
}

TEST(SizeCacheTest, RepeatedSizeCallsCountCacheHits) {
  MovieFixture f;
  obs::Counter* hits = obs::MetricsRegistry::Default().GetCounter(
      "prox_ir_size_cache_hits_total", "");

  // Legacy memo: the first Size() after Simplify computes, later calls hit.
  (void)f.p0->Size();
  const uint64_t before = hits->value();
  (void)f.p0->Size();
  (void)f.p0->Size();
  EXPECT_EQ(hits->value(), before + 2);

  // Mutation invalidates the memo; the next call recomputes (no new hit)
  // but still returns the right size.
  TensorTerm t;
  t.monomial = Monomial({f.u1, f.blue_jasmine});
  t.group = f.blue_jasmine;
  t.value = AggValue{2.0, 1.0};
  const int64_t old_size = f.p0->Size();
  f.p0->AddTerm(std::move(t));
  f.p0->Simplify();
  EXPECT_GT(f.p0->Size(), old_size);

  // IR expressions serve Size() from the canonical header field — every
  // call counts as a hit.
  auto adopted = ir::Adopt(*f.p0, NewPool());
  const uint64_t before_ir = hits->value();
  (void)adopted->Size();
  (void)adopted->Size();
  EXPECT_EQ(hits->value(), before_ir + 2);
  EXPECT_EQ(adopted->Size(), f.p0->Size());
}

}  // namespace
}  // namespace prox
