/// End-to-end tracing tests over a real loopback socket: X-Prox-Trace-Id
/// issuance and uniqueness, inbound W3C traceparent propagation, the
/// flight-recorder debug endpoint, and per-route histogram accounting.
/// Carries the `tsan` CTest label (tests/CMakeLists.txt).

#include <cctype>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "obs/metrics.h"
#include "engine/engine.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

namespace prox {
namespace serve {
namespace {

constexpr char kSummarizeBody[] = "{\"w_dist\":0.7,\"max_steps\":5}";
constexpr char kInboundTraceId[] = "0123456789abcdef0123456789abcdef";

bool IsLowerHex32(std::string_view text) {
  if (text.size() != 32) return false;
  for (char c : text) {
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

/// One running server with debug endpoints on; ephemeral port.
class TracingServer {
 public:
  explicit TracingServer(bool debug_endpoints = true)
      : engine_(engine::Engine::FromDataset(MakeDataset(), EngineOptions())),
        router_(engine_.get(), RouterOptions(debug_endpoints)) {
    HttpServer::Options options;
    options.port = 0;
    options.threads = 4;
    options.read_timeout_ms = 2000;
    server_ = std::make_unique<HttpServer>(
        std::move(options),
        [this](const HttpRequest& request) { return router_.Handle(request); });
    Status status = server_->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  int port() const { return server_->port(); }
  Router& router() { return router_; }

  Result<ClientResponse> Post(const std::string& target,
                              const std::string& body) {
    return Fetch("127.0.0.1", port(), "POST", target, body);
  }
  Result<ClientResponse> Get(const std::string& target) {
    return Fetch("127.0.0.1", port(), "GET", target);
  }

  /// One exchange with an explicit traceparent header (SendRequest cannot
  /// attach custom headers, so the request is written raw).
  Result<ClientResponse> PostWithTraceparent(const std::string& target,
                                             const std::string& body,
                                             const std::string& traceparent) {
    auto connection = ClientConnection::Connect("127.0.0.1", port());
    if (!connection.ok()) return connection.status();
    ClientConnection client = std::move(connection).value();
    std::string request = "POST " + target + " HTTP/1.1\r\n";
    request += "traceparent: " + traceparent + "\r\n";
    request += "content-type: application/json\r\n";
    request += "content-length: " + std::to_string(body.size()) + "\r\n";
    request += "connection: close\r\n\r\n";
    request += body;
    Status sent = client.SendRaw(request);
    if (!sent.ok()) return sent;
    return client.ReadResponse();
  }

 private:
  static Dataset MakeDataset() {
    MovieLensConfig config;
    config.num_users = 12;
    config.num_movies = 5;
    config.seed = 7;
    return MovieLensGenerator::Generate(config);
  }
  static engine::Engine::Options EngineOptions() {
    engine::Engine::Options options;
    options.cache.max_bytes = 4 * 1024 * 1024;
    return options;
  }
  static Router::Options RouterOptions(bool debug_endpoints) {
    Router::Options options;
    options.debug_endpoints = debug_endpoints;
    return options;
  }

  std::unique_ptr<engine::Engine> engine_;
  Router router_;
  std::unique_ptr<HttpServer> server_;
};

TEST(TracingLoopbackTest, EveryResponseCarriesAFreshTraceId) {
  TracingServer fixture;
  constexpr int kClients = 8;
  std::vector<std::string> trace_ids(kClients);
  std::vector<int> statuses(kClients, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&fixture, &trace_ids, &statuses, i] {
      auto response = Fetch("127.0.0.1", fixture.port(), "POST",
                            "/v1/summarize", kSummarizeBody,
                            /*timeout_ms=*/30000);
      if (response.ok()) {
        statuses[i] = response.value().status;
        trace_ids[i] = std::string(response.value().Header("x-prox-trace-id"));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::set<std::string> distinct;
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(statuses[i], 200) << "client " << i;
    EXPECT_TRUE(IsLowerHex32(trace_ids[i]))
        << "client " << i << ": '" << trace_ids[i] << "'";
    distinct.insert(trace_ids[i]);
  }
  // Ids are minted per request, never shared across concurrent clients.
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kClients));
}

TEST(TracingLoopbackTest, InboundTraceparentIsHonored) {
  TracingServer fixture;
  const std::string header =
      std::string("00-") + kInboundTraceId + "-00f067aa0ba902b7-01";
  auto response =
      fixture.PostWithTraceparent("/v1/summarize", kSummarizeBody, header);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response.value().status, 200) << response.value().body;
  EXPECT_EQ(response.value().Header("x-prox-trace-id"), kInboundTraceId);
}

TEST(TracingLoopbackTest, MalformedTraceparentMintsAFreshId) {
  TracingServer fixture;
  auto response = fixture.PostWithTraceparent("/v1/summarize", kSummarizeBody,
                                              "not-a-w3c-header");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response.value().status, 200);
  std::string_view trace_id = response.value().Header("x-prox-trace-id");
  EXPECT_TRUE(IsLowerHex32(trace_id)) << "'" << trace_id << "'";
  EXPECT_NE(trace_id, kInboundTraceId);
}

TEST(TracingLoopbackTest, DebugEndpointServesTheSlowestRequestWithSpans) {
  TracingServer fixture;
  auto summarize = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(summarize.ok());
  ASSERT_EQ(summarize.value().status, 200);
  const std::string summarize_trace(
      summarize.value().Header("x-prox-trace-id"));

  auto debug = fixture.Get("/v1/debug/requests");
  ASSERT_TRUE(debug.ok()) << debug.status().ToString();
  ASSERT_EQ(debug.value().status, 200) << debug.value().body;
  auto parsed = ParseJson(debug.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();
  ASSERT_NE(doc.Find("recorded_total"), nullptr);
  EXPECT_GE(doc.Find("recorded_total")->int_value(), 1);

  const JsonValue* slowest = doc.Find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_FALSE(slowest->items().empty());
  // The summarize request dominates every other route by orders of
  // magnitude, so it is the slowest retained request.
  const JsonValue& top = slowest->items()[0];
  EXPECT_EQ(top.Find("path")->string_value(), "/v1/summarize");
  EXPECT_EQ(top.Find("trace_id")->string_value(), summarize_trace);
  EXPECT_EQ(top.Find("status")->int_value(), 200);
  EXPECT_GT(top.Find("latency_nanos")->int_value(), 0);
  const JsonValue* spans = top.Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_FALSE(spans->items().empty());
  // Every span in the tree names its operation and belongs to the trace.
  for (const JsonValue& span : spans->items()) {
    EXPECT_FALSE(span.Find("name")->string_value().empty());
    EXPECT_GE(span.Find("duration_nanos")->int_value(), 0);
  }
  const JsonValue* errors = doc.Find("errors");
  ASSERT_NE(errors, nullptr);

  // A 400 lands in the error ring.
  ASSERT_EQ(fixture.Post("/v1/summarize", "{nope").value().status, 400);
  auto after = fixture.Get("/v1/debug/requests");
  ASSERT_TRUE(after.ok());
  auto after_doc = ParseJson(after.value().body);
  ASSERT_TRUE(after_doc.ok());
  ASSERT_FALSE(after_doc.value().Find("errors")->items().empty());
  EXPECT_EQ(after_doc.value().Find("errors")->items()[0].Find("status")
                ->int_value(),
            400);
}

TEST(TracingLoopbackTest, DebugEndpointIs404WhenNotEnabled) {
  TracingServer fixture(/*debug_endpoints=*/false);
  auto debug = fixture.Get("/v1/debug/requests");
  ASSERT_TRUE(debug.ok());
  EXPECT_EQ(debug.value().status, 404);
}

TEST(TracingLoopbackTest, RouteHistogramCountsEveryServedRequest) {
  TracingServer fixture;
  const char kRouteLabels[] = "route=\"/v1/summarize\"";
  obs::MetricsSnapshot before = obs::MetricsRegistry::Default().Snapshot();
  const obs::HistogramSample* sample_before =
      before.FindHistogram("prox_serve_route_duration_nanos", kRouteLabels);
  const uint64_t count_before = sample_before ? sample_before->count : 0;

  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_EQ(fixture.Post("/v1/summarize", kSummarizeBody).value().status,
              200);
  }

  obs::MetricsSnapshot after = obs::MetricsRegistry::Default().Snapshot();
  const obs::HistogramSample* sample =
      after.FindHistogram("prox_serve_route_duration_nanos", kRouteLabels);
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, count_before + kRequests);
  // The request histogram carries trace-id exemplars: at least one bucket
  // links back to a concrete request.
  bool has_exemplar = false;
  for (const std::string& trace_id : sample->exemplar_trace_ids) {
    if (!trace_id.empty()) {
      EXPECT_TRUE(IsLowerHex32(trace_id));
      has_exemplar = true;
    }
  }
  EXPECT_TRUE(has_exemplar);

  // /metrics exports the p50/p99/burn gauges for the route.
  auto metrics = fixture.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  const std::string& text = metrics.value().body;
  EXPECT_NE(text.find("prox_serve_route_latency_p50_nanos"),
            std::string::npos);
  EXPECT_NE(text.find("prox_serve_route_latency_p99_nanos"),
            std::string::npos);
  EXPECT_NE(text.find("prox_serve_route_slo_burn_rate"), std::string::npos);
  EXPECT_NE(text.find("prox_build_info"), std::string::npos);
  EXPECT_NE(text.find("prox_uptime_seconds"), std::string::npos);
}

TEST(TracingLoopbackTest, DisabledObsSkipsTracingEntirely) {
  TracingServer fixture;
  obs::SetEnabled(false);
  auto response = fixture.Get("/healthz");
  obs::SetEnabled(true);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 200);
  // The kill switch drops the whole tracing path, header included.
  EXPECT_EQ(response.value().Header("x-prox-trace-id"), "");
}

}  // namespace
}  // namespace serve
}  // namespace prox
