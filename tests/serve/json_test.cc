#include "common/json.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace prox {
namespace {

// Parse `text`, expect success, and return the value.
JsonValue MustParse(const std::string& text) {
  auto parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
  return parsed.ok() ? parsed.value() : JsonValue::Null();
}

TEST(JsonTest, ScalarKinds) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_EQ(MustParse("true").bool_value(), true);
  EXPECT_EQ(MustParse("false").bool_value(), false);
  EXPECT_EQ(MustParse("42").int_value(), 42);
  EXPECT_EQ(MustParse("-7").int_value(), -7);
  EXPECT_DOUBLE_EQ(MustParse("0.25").double_value(), 0.25);
  EXPECT_DOUBLE_EQ(MustParse("1e3").double_value(), 1000.0);
  EXPECT_EQ(MustParse("\"hi\"").string_value(), "hi");
}

TEST(JsonTest, IntegersStayExact) {
  JsonValue value = MustParse("9007199254740993");  // 2^53 + 1
  ASSERT_TRUE(value.is_int());
  EXPECT_EQ(value.int_value(), INT64_C(9007199254740993));
  EXPECT_EQ(WriteJson(value), "9007199254740993");
}

TEST(JsonTest, WriterIsCompactAndOrdered) {
  JsonValue object = JsonValue::Object();
  object.Set("b", JsonValue::Int(1));
  object.Set("a", JsonValue::Int(2));
  JsonValue array = JsonValue::Array();
  array.Append(JsonValue::Null());
  array.Append(JsonValue::Bool(true));
  object.Set("list", array);
  EXPECT_EQ(WriteJson(object), "{\"b\":1,\"a\":2,\"list\":[null,true]}");

  // Overwriting keeps the original position.
  object.Set("b", JsonValue::Int(9));
  EXPECT_EQ(WriteJson(object), "{\"b\":9,\"a\":2,\"list\":[null,true]}");
}

TEST(JsonTest, RoundTripsEscapes) {
  const std::string text =
      "{\"s\":\"line\\nquote\\\"back\\\\slash\\ttab\\u0001\"}";
  JsonValue value = MustParse(text);
  const JsonValue* member = value.Find("s");
  ASSERT_NE(member, nullptr);
  EXPECT_EQ(member->string_value(),
            std::string("line\nquote\"back\\slash\ttab\x01"));
  // Write → parse → write is a fixed point.
  EXPECT_EQ(WriteJson(MustParse(WriteJson(value))), WriteJson(value));
}

TEST(JsonTest, UnicodeEscapesAndSurrogatePairs) {
  // U+00E9 (é), U+20AC (€), U+1F600 (😀, surrogate pair).
  JsonValue value = MustParse("\"\\u00e9 \\u20ac \\ud83d\\ude00\"");
  EXPECT_EQ(value.string_value(), "\xC3\xA9 \xE2\x82\xAC \xF0\x9F\x98\x80");
  // Lone surrogates are malformed.
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ude00\"").ok());
  EXPECT_FALSE(ParseJson("\"\\ud83dx\"").ok());
}

TEST(JsonTest, DoublesRoundTripShortest) {
  for (double value : {0.1, 1.0 / 3.0, 1e-300, 1.5, -2.25, 6.02e23}) {
    std::string text = ShortestDouble(value);
    JsonValue parsed = MustParse(text);
    EXPECT_DOUBLE_EQ(parsed.double_value(), value) << text;
  }
  EXPECT_EQ(ShortestDouble(1.5), "1.5");
}

TEST(JsonTest, MalformedInputsReturnErrorsNotCrashes) {
  const char* bad[] = {
      "",        "{",         "}",          "[1,]",      "{\"a\":}",
      "tru",     "01",        "+1",         "1.",        ".5",
      "\"",      "\"\\x\"",   "\"\\u12\"",  "nan",       "Infinity",
      "[1 2]",   "{\"a\" 1}", "{1: 2}",     "[1],",      "[1] x",
      "'one'",   "{,}",       "[\"\\\"]",   "--1",       "\x01",
  };
  for (const char* text : bad) {
    auto parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(JsonTest, RawControlCharacterInStringRejected) {
  std::string text = "\"a\nb\"";  // unescaped newline inside a string
  EXPECT_FALSE(ParseJson(text).ok());
}

TEST(JsonTest, DepthLimitStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(ParseJson(deep, /*max_depth=*/96).ok());
  EXPECT_TRUE(ParseJson(deep, /*max_depth=*/300).ok());

  std::string shallow = "[[[[1]]]]";
  EXPECT_TRUE(ParseJson(shallow, /*max_depth=*/4).ok());
  EXPECT_FALSE(ParseJson(shallow, /*max_depth=*/3).ok());
}

TEST(JsonTest, TrailingGarbageRejectedButWhitespaceOk) {
  EXPECT_TRUE(ParseJson("  {\"a\": [1, 2]}  \n").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} {\"b\":2}").ok());
}

TEST(JsonTest, FindOnNonObjectIsNull) {
  EXPECT_EQ(MustParse("[1]").Find("a"), nullptr);
  EXPECT_EQ(MustParse("{\"a\":1}").Find("b"), nullptr);
  ASSERT_NE(MustParse("{\"a\":1}").Find("a"), nullptr);
}

TEST(JsonTest, EqualityIsStructural) {
  EXPECT_EQ(MustParse("{\"a\":[1,2.5,\"x\"]}"),
            MustParse("{\"a\": [1, 2.5, \"x\"]}"));
  EXPECT_NE(MustParse("{\"a\":1}"), MustParse("{\"a\":2}"));
}

TEST(JsonTest, FuzzishRoundTripCorpus) {
  // Write(Parse(x)) must parse back equal for a pile of awkward documents.
  const char* corpus[] = {
      "{}",
      "[]",
      "[[],{},[{}],{\"\":[]}]",
      "{\"\":\"\"}",
      "[0,-0.0,1e-5,123456789012345678,0.5]",
      "\"\\u0000\\u001f\\\\\\\"\"",
      "{\"nested\":{\"a\":{\"b\":{\"c\":[null,false]}}}}",
      "[\"\\ud83d\\ude00\",\"plain\",\"\\u00e9\"]",
  };
  for (const char* text : corpus) {
    JsonValue first = MustParse(text);
    std::string written = WriteJson(first);
    JsonValue second = MustParse(written);
    EXPECT_EQ(first, second) << text;
    EXPECT_EQ(WriteJson(second), written) << text;
  }
}

}  // namespace
}  // namespace prox
