#include "serve/http.h"

#include <string>

#include <gtest/gtest.h>

namespace prox {
namespace serve {
namespace {

constexpr char kSimpleGet[] = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  parser.Feed(kSimpleGet);
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(request.Header("host"), "x");
  EXPECT_TRUE(request.body.empty());
  EXPECT_FALSE(request.WantsClose());
  EXPECT_EQ(parser.Next(&request), ParseResult::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, ByteAtATimeSplitReads) {
  const std::string message =
      "POST /v1/summarize HTTP/1.1\r\nHost: a\r\nContent-Length: 4\r\n"
      "Content-Type: application/json\r\n\r\n{\"\":1}";
  // Body is 6 bytes but Content-Length says 4: the request carries the
  // first 4 and the rest stays buffered (start of the next message —
  // which will then fail to parse, but that is the peer's bug).
  HttpParser parser;
  HttpRequest request;
  ParseResult result = ParseResult::kNeedMore;
  size_t completed_at = message.size();
  for (size_t i = 0; i < message.size(); ++i) {
    parser.Feed(std::string_view(&message[i], 1));
    if (result == ParseResult::kRequest) continue;
    result = parser.Next(&request);
    if (result == ParseResult::kRequest) {
      completed_at = i;
    } else {
      ASSERT_EQ(result, ParseResult::kNeedMore) << "byte " << i;
    }
  }
  ASSERT_EQ(result, ParseResult::kRequest);
  // Complete exactly when headers + the 4 declared body bytes are in.
  EXPECT_EQ(completed_at, message.size() - 3);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "{\"\":");
  EXPECT_EQ(parser.buffered_bytes(), 2u);
}

TEST(HttpParserTest, PipelinedRequestsParseInOrder) {
  HttpParser parser;
  parser.Feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
      "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kRequest);
  EXPECT_EQ(request.target, "/a");
  ASSERT_EQ(parser.Next(&request), ParseResult::kRequest);
  EXPECT_EQ(request.target, "/b");
  EXPECT_EQ(request.body, "hi");
  ASSERT_EQ(parser.Next(&request), ParseResult::kRequest);
  EXPECT_EQ(request.target, "/c");
  EXPECT_TRUE(request.WantsClose());
  EXPECT_EQ(parser.Next(&request), ParseResult::kNeedMore);
}

TEST(HttpParserTest, OversizedHeadersAre431) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nx-pad: " + std::string(200, 'a'));
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedHeadersWithTerminatorAre431) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 64;
  HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nx-pad: " + std::string(100, 'a') +
              "\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 8;
  HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, ChunkedTransferIs501) {
  HttpParser parser;
  parser.Feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kError);
  EXPECT_EQ(parser.error_status(), 501);
}

TEST(HttpParserTest, MalformedInputsAre400) {
  const char* bad[] = {
      "GET\r\n\r\n",                                      // no target
      "GET / HTTP/2.0\r\n\r\n",                           // bad version
      "GET nopath HTTP/1.1\r\n\r\n",                      // not origin-form
      "GET / HTTP/1.1\r\nBroken Header: x\r\n\r\n",       // space in name
      "GET / HTTP/1.1\r\nnocolon\r\n\r\n",                // no colon
      "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n",   // NaN length
      "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",    // negative
      "POST / HTTP/1.1\r\nContent-Length: 1\r\n"
      "Content-Length: 2\r\n\r\nab",                      // conflicting dup
  };
  for (const char* text : bad) {
    HttpParser parser;
    parser.Feed(text);
    HttpRequest request;
    ASSERT_EQ(parser.Next(&request), ParseResult::kError) << text;
    EXPECT_EQ(parser.error_status(), 400) << text;
  }
}

TEST(HttpParserTest, HeaderNamesLowercasedValuesTrimmed) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.1\r\nX-PROX-Thing:   spaced value  \r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kRequest);
  EXPECT_EQ(request.Header("x-prox-thing"), "spaced value");
  EXPECT_EQ(request.Header("absent"), "");
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  HttpParser parser;
  parser.Feed("GET / HTTP/1.0\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), ParseResult::kRequest);
  EXPECT_TRUE(request.WantsClose());
}

TEST(HttpResponseTest, RenderIsDeterministic) {
  HttpResponse response;
  response.status = 200;
  response.body = "{\"ok\":true}\n";
  response.headers.push_back({"X-Prox-Cache", "hit"});
  std::string first = RenderResponse(response);
  std::string second = RenderResponse(response);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(first.find("Content-Length: 12\r\n"), std::string::npos);
  EXPECT_NE(first.find("X-Prox-Cache: hit\r\n"), std::string::npos);
  // Deterministic responses must not carry a Date header.
  EXPECT_EQ(first.find("Date:"), std::string::npos);
}

TEST(HttpResponseTest, CloseConnectionHeaderRendered) {
  HttpResponse response;
  response.status = 503;
  response.close_connection = true;
  std::string text = RenderResponse(response);
  EXPECT_NE(text.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(text.find("Connection: close\r\n"), std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace prox
