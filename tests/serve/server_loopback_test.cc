/// End-to-end tests over a real loopback socket: a MovieLens session behind
/// Router + SummaryCache + HttpServer, driven by serve::ClientConnection.
/// This suite carries the `tsan` CTest label (tests/CMakeLists.txt) — run
/// it under ThreadSanitizer via scripts/tsan_exec_tests.sh builds.

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "engine/engine.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/serve_metrics.h"
#include "serve/server.h"

namespace prox {
namespace serve {
namespace {

using engine::SummaryCache;

constexpr char kSummarizeBody[] = "{\"w_dist\":0.7,\"max_steps\":5}";

/// One running server over a fresh small dataset; ephemeral port.
class LoopbackServer {
 public:
  explicit LoopbackServer(int max_inflight = 32, int threads = 4,
                          int idle_timeout_ms = 15000)
      : engine_(engine::Engine::FromDataset(MakeDataset(), EngineOptions())),
        router_(engine_.get()) {
    HttpServer::Options options;
    options.port = 0;
    options.threads = threads;
    options.max_inflight = max_inflight;
    options.read_timeout_ms = 2000;
    options.idle_timeout_ms = idle_timeout_ms;
    server_ = std::make_unique<HttpServer>(
        std::move(options),
        [this](const HttpRequest& request) { return router_.Handle(request); });
    Status status = server_->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  int port() const { return server_->port(); }
  SummaryCache& cache() { return engine_->cache(); }
  HttpServer& server() { return *server_; }

  Result<ClientResponse> Post(const std::string& target,
                              const std::string& body) {
    return Fetch("127.0.0.1", port(), "POST", target, body);
  }
  Result<ClientResponse> Get(const std::string& target) {
    return Fetch("127.0.0.1", port(), "GET", target);
  }

 private:
  static Dataset MakeDataset() {
    MovieLensConfig config;
    config.num_users = 12;
    config.num_movies = 5;
    config.seed = 7;
    return MovieLensGenerator::Generate(config);
  }
  static engine::Engine::Options EngineOptions() {
    engine::Engine::Options options;
    options.cache.max_bytes = 4 * 1024 * 1024;
    return options;
  }

  std::unique_ptr<engine::Engine> engine_;
  Router router_;
  std::unique_ptr<HttpServer> server_;
};

TEST(ServerLoopbackTest, HealthzAndUnknownRoutes) {
  LoopbackServer fixture;
  auto health = fixture.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 200);
  EXPECT_NE(health.value().body.find("\"ok\""), std::string::npos);
  EXPECT_NE(health.value().body.find("dataset_fingerprint"),
            std::string::npos);

  auto missing = fixture.Get("/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);

  auto wrong_method = fixture.Get("/v1/summarize");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method.value().status, 405);
}

TEST(ServerLoopbackTest, ColdAndCachedBodiesAreByteIdentical) {
  LoopbackServer fixture;
  auto cold = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold.value().status, 200) << cold.value().body;
  EXPECT_EQ(cold.value().Header("x-prox-cache"), "miss");

  SummaryCache::Stats before = fixture.cache().stats();
  auto cached = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(cached.value().status, 200);
  EXPECT_EQ(cached.value().Header("x-prox-cache"), "hit");
  EXPECT_EQ(cached.value().body, cold.value().body);
  SummaryCache::Stats after = fixture.cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1);

  // The body is the canonical JSON document.
  auto parsed = ParseJson(cold.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed.value().Find("final_size"), nullptr);
  EXPECT_NE(parsed.value().Find("groups"), nullptr);
}

TEST(ServerLoopbackTest, EightConcurrentIdenticalPostsGetOneBody) {
  LoopbackServer fixture;
  constexpr int kClients = 8;
  std::vector<std::string> bodies(kClients);
  std::vector<int> statuses(kClients, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&fixture, &bodies, &statuses, i] {
      auto response = Fetch("127.0.0.1", fixture.port(), "POST",
                            "/v1/summarize", kSummarizeBody,
                            /*timeout_ms=*/30000);
      if (response.ok()) {
        statuses[i] = response.value().status;
        bodies[i] = response.value().body;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::set<std::string> distinct;
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(statuses[i], 200) << "client " << i;
    distinct.insert(bodies[i]);
  }
  // The router single-flights identical cold requests: everyone gets the
  // same bytes (reruns would mint "#k"-suffixed summary names, so one
  // distinct body means Algorithm 1 ran exactly once) and every client
  // but the computing one ends on a cache hit. Racing fast-path lookups
  // may each record a miss, so only the lower bounds are deterministic.
  EXPECT_EQ(distinct.size(), 1u);
  SummaryCache::Stats stats = fixture.cache().stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GE(stats.misses, 1u);
  EXPECT_GE(stats.hits, static_cast<uint64_t>(kClients - 1));
}

TEST(ServerLoopbackTest, SelectChangesCacheKeyAndGroupsServe) {
  LoopbackServer fixture;
  auto first = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().status, 200);

  // Re-select by criteria: every generated title carries its "(year)"
  // suffix, so "(" matches all of them — same provenance, but a different
  // selection key, so the same knobs must now miss the cache.
  auto select = fixture.Post("/v1/select", "{\"title_substring\":\"(\"}");
  ASSERT_TRUE(select.ok());
  ASSERT_EQ(select.value().status, 200) << select.value().body;
  EXPECT_NE(select.value().body.find("selected_size"), std::string::npos);

  auto second = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second.value().status, 200);
  EXPECT_EQ(second.value().Header("x-prox-cache"), "miss");

  auto groups = fixture.Get("/v1/summary/groups");
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value().status, 200);
  EXPECT_NE(groups.value().body.find("groups"), std::string::npos);

  auto evaluate = fixture.Post(
      "/v1/evaluate",
      "{\"assignment\":{\"false_attributes\":"
      "[{\"attribute\":\"Gender\",\"value\":\"M\"}]}}");
  ASSERT_TRUE(evaluate.ok());
  EXPECT_EQ(evaluate.value().status, 200) << evaluate.value().body;
  EXPECT_NE(evaluate.value().body.find("rows"), std::string::npos);
}

TEST(ServerLoopbackTest, ValidationAndParseErrorsAre400) {
  LoopbackServer fixture;
  // Range violation: negative weight → SummarizationRequest::Validate.
  auto invalid = fixture.Post("/v1/summarize", "{\"w_dist\":-1}");
  ASSERT_TRUE(invalid.ok());
  EXPECT_EQ(invalid.value().status, 400);
  EXPECT_NE(invalid.value().body.find("error"), std::string::npos);

  // Malformed JSON body.
  auto garbage = fixture.Post("/v1/summarize", "{nope");
  ASSERT_TRUE(garbage.ok());
  EXPECT_EQ(garbage.value().status, 400);

  // Groups before any summary exists → 409.
  LoopbackServer fresh;
  auto groups = fresh.Get("/v1/summary/groups");
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups.value().status, 409);
}

TEST(ServerLoopbackTest, MetricsEndpointServesPrometheusText) {
  LoopbackServer fixture;
  ASSERT_EQ(fixture.Post("/v1/summarize", kSummarizeBody).value().status,
            200);
  auto metrics = fixture.Get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);
  EXPECT_NE(metrics.value().Header("content-type").find("text/plain"),
            std::string::npos);
  const std::string& text = metrics.value().body;
  EXPECT_NE(text.find("prox_serve_requests_total"), std::string::npos);
  EXPECT_NE(text.find("prox_serve_cache_hit_total"), std::string::npos);
  EXPECT_NE(text.find("prox_serve_connections_total"), std::string::npos);
  // The service-layer series from PR 1 flow through the same registry.
  EXPECT_NE(text.find("prox_service_requests_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prox_serve_requests_total counter"),
            std::string::npos);
}

TEST(ServerLoopbackTest, ParserErrorsSurfaceOverTheWire) {
  LoopbackServer fixture;
  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok()) << connection.status().ToString();
  ClientConnection client = std::move(connection).value();
  // Oversized header block (server default limit is 16 KiB).
  ASSERT_TRUE(client
                  .SendRaw("GET / HTTP/1.1\r\nx-pad: " +
                           std::string(64 * 1024, 'a') + "\r\n\r\n")
                  .ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 431);
}

TEST(ServerLoopbackTest, SplitSendsAndPipeliningWork) {
  LoopbackServer fixture;
  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok());
  ClientConnection client = std::move(connection).value();

  // One request dribbled across three sends.
  ASSERT_TRUE(client.SendRaw("GET /heal").ok());
  ASSERT_TRUE(client.SendRaw("thz HTT").ok());
  ASSERT_TRUE(client.SendRaw("P/1.1\r\nHost: a\r\n\r\n").ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status, 200);

  // Two pipelined requests in one send; responses come back in order.
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /nope HTTP/1.1\r\n\r\n")
                  .ok());
  auto second = client.ReadResponse();
  auto third = client.ReadResponse();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(second.value().status, 200);
  EXPECT_EQ(third.value().status, 404);
  client.Close();
}

TEST(ServerLoopbackTest, OverloadShedsWith503) {
  // One worker, one admitted connection: the second connection is shed
  // with a canned 503 while the first sits on the worker.
  LoopbackServer fixture(/*max_inflight=*/1, /*threads=*/1);
  auto holder = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(holder.ok());
  ClientConnection held = std::move(holder).value();
  // Complete one exchange so the holder is definitely admitted (not just
  // sitting in the kernel backlog) and keeps its worker.
  ASSERT_TRUE(held.SendRequest("GET", "/healthz").ok());
  auto ok = held.ReadResponse();
  ASSERT_TRUE(ok.ok());
  ASSERT_EQ(ok.value().status, 200);

  auto shed = Fetch("127.0.0.1", fixture.port(), "GET", "/healthz");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().status, 503);

  held.Close();
}

TEST(ServerLoopbackTest, IdleKeepAliveConnectionsAreReapedAndCounted) {
  // A short idle budget (and a distinct, longer read budget): a served
  // connection that then sits idle is closed from the server side and
  // counted in prox_serve_idle_reaped_total. Before the idle budget
  // existed, an idle connection pinned its worker for read_timeout_ms
  // per wait with no accounting.
  LoopbackServer fixture(/*max_inflight=*/32, /*threads=*/4,
                         /*idle_timeout_ms=*/150);
  const uint64_t reaped_before = ServeIdleReaped()->value();

  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok());
  ClientConnection client = std::move(connection).value();
  ASSERT_TRUE(client.SendRequest("GET", "/healthz").ok());
  ASSERT_EQ(client.ReadResponse().value().status, 200);

  // No further request: the next read on this connection observes the
  // server-side close, not a 408 (no request was in flight).
  auto after = client.ReadResponse();
  EXPECT_FALSE(after.ok());
  EXPECT_GE(ServeIdleReaped()->value(), reaped_before + 1);
}

TEST(ServerLoopbackTest, StopDrainsAndRefusesNewWork) {
  LoopbackServer fixture;
  ASSERT_EQ(fixture.Get("/healthz").value().status, 200);
  fixture.server().Stop();
  EXPECT_FALSE(fixture.server().running());
  // The listener is gone: new connections fail outright.
  auto after = ClientConnection::Connect("127.0.0.1", fixture.port(),
                                         /*timeout_ms=*/500);
  EXPECT_FALSE(after.ok());
  // Idempotent.
  fixture.server().Stop();
}

}  // namespace
}  // namespace serve
}  // namespace prox
