/// The DatasetFingerprint slow path is memoized on ProxSession: the
/// re-serializing fallback (counted by
/// `prox_serve_fingerprint_fallback_total`) runs at most once per session,
/// and ingest advances the memo by digest chaining without ever paying the
/// fallback again.

#include <string>

#include <gtest/gtest.h>

#include "datasets/movielens.h"
#include "ingest/delta.h"
#include "ingest/synthetic.h"
#include "serve/router.h"
#include "serve/serve_metrics.h"
#include "serve/summary_cache.h"
#include "service/fingerprint.h"
#include "service/session.h"

namespace prox {
namespace serve {
namespace {

Dataset MakeDataset() {
  MovieLensConfig config;
  config.num_users = 8;
  config.num_movies = 4;
  config.seed = 13;
  return MovieLensGenerator::Generate(config);
}

TEST(FingerprintMemoTest, FallbackRunsOncePerSessionAndStopsGrowing) {
  // Generated datasets carry no snapshot checksum, so the first
  // fingerprint() call takes the re-serializing fallback — exactly once.
  ProxSession session(MakeDataset());
  const uint64_t baseline = FingerprintFallbacks()->value();
  const std::string first = session.fingerprint();
  EXPECT_EQ(first.size(), 16u);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);

  // Memoized: repeated reads, the router constructor, and its accessor
  // all reuse the memo.
  EXPECT_EQ(session.fingerprint(), first);
  SummaryCache cache{SummaryCache::Options{}};
  Router router(&session, &cache);
  EXPECT_EQ(router.dataset_fingerprint(), first);
  EXPECT_EQ(session.fingerprint(), first);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);

  // Ingest chains the memo instead of recomputing: the value changes,
  // the fallback counter does not.
  Result<ingest::DeltaBatch> delta =
      ingest::SyntheticMovieLensDelta(session.dataset(), 1, 1, 1);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  const std::string digest = ingest::BatchDigest(delta.value());
  ASSERT_TRUE(session.Ingest(delta.value()).ok());
  EXPECT_EQ(session.fingerprint(),
            ingest::ChainFingerprint(first, digest));
  EXPECT_NE(session.fingerprint(), first);
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline + 1);
}

TEST(FingerprintMemoTest, SnapshotHintSkipsTheFallbackEntirely) {
  Dataset dataset = MakeDataset();
  dataset.fingerprint_hint = "feedfacefeedface";
  const uint64_t baseline = FingerprintFallbacks()->value();
  ProxSession session(std::move(dataset));
  EXPECT_EQ(session.fingerprint(), "feedfacefeedface");
  EXPECT_EQ(FingerprintFallbacks()->value(), baseline);
}

TEST(FingerprintMemoTest, TwinSessionsAgreeOnTheFallbackValue) {
  ProxSession a(MakeDataset());
  ProxSession b(MakeDataset());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), ComputeDatasetFingerprint(a.dataset()));
}

}  // namespace
}  // namespace serve
}  // namespace prox
