#include "service/summarization_service.h"

#include <gtest/gtest.h>

#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"

namespace prox {
namespace {

TEST(SummarizationServiceTest, UsesDatasetDefaults) {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  Dataset ds = MovieLensGenerator::Generate(config);
  SummarizationService svc(&ds);
  SummarizationRequest request;
  request.max_steps = 4;
  auto outcome = svc.Summarize(*ds.provenance, request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().final_size, ds.provenance->Size());
}

TEST(SummarizationServiceTest, OverridingValuationClassWorks) {
  MovieLensConfig config;
  config.num_users = 10;
  config.num_movies = 4;
  Dataset ds = MovieLensGenerator::Generate(config);
  SummarizationService svc(&ds);
  SummarizationRequest request;
  request.max_steps = 3;
  request.valuation_class =
      SummarizationRequest::ValuationClassKind::kCancelSingleAnnotation;
  request.val_func = SummarizationRequest::ValFuncKind::kAbsoluteDifference;
  auto outcome = svc.Summarize(*ds.provenance, request);
  ASSERT_TRUE(outcome.ok());
}

TEST(SummarizationServiceTest, TargetSizeIsHonored) {
  MovieLensConfig config;
  config.num_users = 10;
  config.num_movies = 4;
  Dataset ds = MovieLensGenerator::Generate(config);
  SummarizationService svc(&ds);
  SummarizationRequest request;
  request.w_dist = 0.0;
  request.w_size = 1.0;
  request.target_size = ds.provenance->Size() / 2;
  request.max_steps = 1000;
  auto outcome = svc.Summarize(*ds.provenance, request);
  ASSERT_TRUE(outcome.ok());
  // Either the bound was reached or no more candidates existed.
  EXPECT_LE(outcome.value().final_size, ds.provenance->Size());
}

TEST(SummarizationServiceTest, WorksOnWikipediaDataset) {
  WikipediaConfig config;
  config.num_users = 10;
  config.num_pages = 8;
  Dataset ds = WikipediaGenerator::Generate(config);
  SummarizationService svc(&ds);
  SummarizationRequest request;
  request.w_dist = 1.0;
  request.w_size = 0.0;
  request.max_steps = 5;
  auto outcome = svc.Summarize(*ds.provenance, request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().final_size, ds.provenance->Size());
}

TEST(SummarizationServiceTest, WorksOnDdpDataset) {
  DdpConfig config;
  config.num_executions = 5;
  Dataset ds = DdpGenerator::Generate(config);
  SummarizationService svc(&ds);
  SummarizationRequest request;
  request.w_dist = 0.5;
  request.w_size = 0.5;
  request.max_steps = 4;
  auto outcome = svc.Summarize(*ds.provenance, request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_LE(outcome.value().final_size, ds.provenance->Size());
}

TEST(SummarizationServiceTest, SummaryAnnotationsVisibleInGroups) {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  Dataset ds = MovieLensGenerator::Generate(config);
  SummarizationService svc(&ds);
  SummarizationRequest request;
  request.max_steps = 3;
  auto outcome = svc.Summarize(*ds.provenance, request);
  ASSERT_TRUE(outcome.ok());
  for (const auto& [summary, members] : outcome.value().state.summaries()) {
    EXPECT_TRUE(ds.registry->is_summary(summary));
    EXPECT_GE(members.size(), 2u);
  }
}

}  // namespace
}  // namespace prox
