#include "service/evaluator_service.h"

#include <gtest/gtest.h>

#include "datasets/movielens.h"
#include "provenance/aggregate_expr.h"
#include "service/summarization_service.h"

namespace prox {
namespace {

Dataset SmallMovies() {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  return MovieLensGenerator::Generate(config);
}

TEST(EvaluatorServiceTest, EmptyAssignmentIsAllTrue) {
  Dataset ds = SmallMovies();
  EvaluatorService svc(&ds);
  auto report = svc.Evaluate(*ds.provenance, nullptr, Assignment{});
  ASSERT_TRUE(report.ok());
  EvalResult all_true =
      ds.provenance->Evaluate(MaterializedValuation(ds.registry->size()));
  EXPECT_EQ(report.value().result, all_true);
  EXPECT_EQ(report.value().rows.size(), all_true.coords().size());
  EXPECT_GT(report.value().eval_nanos, 0);
}

TEST(EvaluatorServiceTest, FalseAnnotationByName) {
  Dataset ds = SmallMovies();
  EvaluatorService svc(&ds);
  AnnotationId u = ds.registry->AnnotationsInDomain(ds.domain("user"))[0];
  Assignment assignment;
  assignment.false_annotations = {ds.registry->name(u)};
  auto report = svc.Evaluate(*ds.provenance, nullptr, assignment);
  ASSERT_TRUE(report.ok());
  EvalResult expected = ds.provenance->Evaluate(
      MaterializedValuation(Valuation({u}), ds.registry->size()));
  EXPECT_EQ(report.value().result, expected);
}

TEST(EvaluatorServiceTest, UnknownAnnotationIsError) {
  Dataset ds = SmallMovies();
  EvaluatorService svc(&ds);
  Assignment assignment;
  assignment.false_annotations = {"UID99999"};
  EXPECT_EQ(svc.Evaluate(*ds.provenance, nullptr, assignment)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(EvaluatorServiceTest, FalseAttributeCancelsAllCarriers) {
  // "All Male users were not asked to rate" (Section 7.1's scenario).
  Dataset ds = SmallMovies();
  EvaluatorService svc(&ds);
  Assignment assignment;
  assignment.false_attributes = {{"Gender", "M"}};
  auto valuation = svc.ResolveAssignment(assignment);
  ASSERT_TRUE(valuation.ok());
  const EntityTable* users = ds.ctx.TableFor(ds.domain("user"));
  AttrId gender = users->FindAttribute("Gender").MoveValue();
  for (AnnotationId u :
       ds.registry->AnnotationsInDomain(ds.domain("user"))) {
    bool male = users->ValueNameOf(ds.registry->entity_row(u), gender) == "M";
    EXPECT_EQ(valuation.value().IsFalse(u), male);
  }
}

TEST(EvaluatorServiceTest, UnknownAttributeIsError) {
  Dataset ds = SmallMovies();
  EvaluatorService svc(&ds);
  Assignment assignment;
  assignment.false_attributes = {{"ShoeSize", "44"}};
  EXPECT_EQ(svc.Evaluate(*ds.provenance, nullptr, assignment)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(EvaluatorServiceTest, SummaryEvaluationUsesTransformedValuation) {
  // Evaluate the same assignment on original and summary: the summary uses
  // v^{h,φ} so a partially-cancelled group stays alive (approximate
  // provisioning).
  Dataset ds = SmallMovies();
  SummarizationService summarize(&ds);
  SummarizationRequest request;
  request.w_dist = 1.0;
  request.w_size = 0.0;
  request.max_steps = 5;
  auto outcome = summarize.Summarize(*ds.provenance, request);
  ASSERT_TRUE(outcome.ok());
  ASSERT_GT(outcome.value().state.num_merges(), 0);

  EvaluatorService svc(&ds);
  // Cancel one member of the first summary group.
  const auto& [summary, members] = outcome.value().state.summaries().front();
  (void)summary;
  Assignment assignment;
  assignment.false_annotations = {ds.registry->name(members.front())};

  auto exact = svc.Evaluate(*ds.provenance, nullptr, assignment);
  auto approx =
      svc.Evaluate(*outcome.value().summary, &outcome.value().state,
                   assignment);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  // Both report one row per (possibly merged) movie.
  EXPECT_FALSE(exact.value().rows.empty());
  EXPECT_FALSE(approx.value().rows.empty());
}

TEST(EvaluatorServiceTest, RowsCarryGroupNames) {
  Dataset ds = SmallMovies();
  EvaluatorService svc(&ds);
  auto report = svc.Evaluate(*ds.provenance, nullptr, Assignment{});
  ASSERT_TRUE(report.ok());
  for (const auto& [label, value] : report.value().rows) {
    EXPECT_TRUE(ds.registry->Find(label).ok()) << label;
    EXPECT_GE(value, 0.0);
  }
}

}  // namespace
}  // namespace prox
