#include "service/selection_service.h"

#include <gtest/gtest.h>

#include "datasets/movielens.h"
#include "provenance/aggregate_expr.h"

namespace prox {
namespace {

Dataset SmallMovies() {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 6;
  return MovieLensGenerator::Generate(config);
}

TEST(SelectionServiceTest, ListTitlesSortedAndComplete) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  auto titles = svc.ListTitles();
  EXPECT_EQ(titles.size(), 6u);
  EXPECT_TRUE(std::is_sorted(titles.begin(), titles.end()));
}

TEST(SelectionServiceTest, SearchIsCaseInsensitiveSubstring) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  auto all = svc.ListTitles();
  ASSERT_FALSE(all.empty());
  // Search for a lowercase fragment of the first title.
  std::string fragment = all[0].substr(0, 4);
  for (auto& c : fragment) c = std::tolower(c);
  auto hits = svc.SearchTitles(fragment);
  EXPECT_FALSE(hits.empty());
  EXPECT_NE(std::find(hits.begin(), hits.end(), all[0]), hits.end());
}

TEST(SelectionServiceTest, SelectByTitleKeepsOnlyThatMovie) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  auto titles = svc.ListTitles();
  SelectionCriteria criteria;
  criteria.titles = {titles[0]};
  auto selected = svc.Select(criteria);
  ASSERT_TRUE(selected.ok());
  const auto* agg =
      dynamic_cast<const AggregateExpression*>(selected.value().get());
  ASSERT_NE(agg, nullptr);
  ASSERT_EQ(agg->Groups().size(), 1u);
  EXPECT_EQ(ds.registry->name(agg->Groups()[0]), titles[0]);
  EXPECT_LT(selected.value()->Size(), ds.provenance->Size());
}

TEST(SelectionServiceTest, SelectByGenre) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  const EntityTable* movies = ds.ctx.TableFor(ds.domain("movie"));
  AttrId genre_attr = movies->FindAttribute("Genre").MoveValue();
  // Pick the first movie's genre and expect all returned groups to match.
  AnnotationId first =
      ds.registry->AnnotationsInDomain(ds.domain("movie"))[0];
  std::string genre =
      movies->ValueNameOf(ds.registry->entity_row(first), genre_attr);
  SelectionCriteria criteria;
  criteria.genres = {genre};
  auto selected = svc.Select(criteria);
  ASSERT_TRUE(selected.ok());
  const auto* agg =
      dynamic_cast<const AggregateExpression*>(selected.value().get());
  for (AnnotationId g : agg->Groups()) {
    EXPECT_EQ(movies->ValueNameOf(ds.registry->entity_row(g), genre_attr),
              genre);
  }
}

TEST(SelectionServiceTest, SelectByYear) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  const EntityTable* movies = ds.ctx.TableFor(ds.domain("movie"));
  AttrId year_attr = movies->FindAttribute("Year").MoveValue();
  AnnotationId first =
      ds.registry->AnnotationsInDomain(ds.domain("movie"))[0];
  int year = std::stoi(
      movies->ValueNameOf(ds.registry->entity_row(first), year_attr));
  SelectionCriteria criteria;
  criteria.year = year;
  auto selected = svc.Select(criteria);
  ASSERT_TRUE(selected.ok());
  const auto* agg =
      dynamic_cast<const AggregateExpression*>(selected.value().get());
  for (AnnotationId g : agg->Groups()) {
    EXPECT_EQ(movies->ValueNameOf(ds.registry->entity_row(g), year_attr),
              std::to_string(year));
  }
}

TEST(SelectionServiceTest, UnknownTitleIsError) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  SelectionCriteria criteria;
  criteria.titles = {"No Such Movie (1900)"};
  EXPECT_EQ(svc.Select(criteria).status().code(), StatusCode::kNotFound);
}

TEST(SelectionServiceTest, EmptyMatchIsError) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  SelectionCriteria criteria;
  criteria.year = 1800;
  EXPECT_EQ(svc.Select(criteria).status().code(), StatusCode::kNotFound);
}

TEST(SelectionServiceTest, EmptyCriteriaSelectsEverything) {
  Dataset ds = SmallMovies();
  SelectionService svc(&ds);
  auto selected = svc.Select(SelectionCriteria{});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value()->Size(), ds.provenance->Size());
}

}  // namespace
}  // namespace prox
