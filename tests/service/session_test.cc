#include "service/session.h"

#include <gtest/gtest.h>

#include "datasets/movielens.h"

namespace prox {
namespace {

ProxSession MakeSession() {
  MovieLensConfig config;
  config.num_users = 15;
  config.num_movies = 6;
  return ProxSession(MovieLensGenerator::Generate(config));
}

TEST(ProxSessionTest, SummarizeBeforeSelectFails) {
  ProxSession session = MakeSession();
  EXPECT_EQ(session.Summarize(SummarizationRequest{}).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.SummaryExpression().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProxSessionTest, FullWorkflowSelectSummarizeEvaluate) {
  ProxSession session = MakeSession();
  int64_t selected_size = session.SelectAll();
  EXPECT_GT(selected_size, 0);

  SummarizationRequest request;
  request.w_dist = 0.5;
  request.w_size = 0.5;
  request.max_steps = 5;
  auto summary_size = session.Summarize(request);
  ASSERT_TRUE(summary_size.ok());
  EXPECT_LE(summary_size.value(), selected_size);

  auto expr = session.SummaryExpression();
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(expr.value().empty());

  auto groups = session.DescribeGroups();
  EXPECT_FALSE(groups.empty());

  Assignment assignment;  // all-true
  auto on_summary = session.EvaluateOnSummary(assignment);
  auto on_selection = session.EvaluateOnSelection(assignment);
  ASSERT_TRUE(on_summary.ok());
  ASSERT_TRUE(on_selection.ok());
  EXPECT_FALSE(on_summary.value().rows.empty());
}

TEST(ProxSessionTest, SelectByCriteriaNarrowsInput) {
  ProxSession session = MakeSession();
  int64_t all = session.SelectAll();
  SelectionCriteria criteria;
  criteria.titles = {session.dataset().registry->name(
      session.dataset().registry->AnnotationsInDomain(
          session.dataset().domain("movie"))[0])};
  auto size = session.Select(criteria);
  ASSERT_TRUE(size.ok());
  EXPECT_LT(size.value(), all);
}

TEST(ProxSessionTest, GroupsViewSkipsScratchAnnotations) {
  ProxSession session = MakeSession();
  session.SelectAll();
  SummarizationRequest request;
  request.max_steps = 3;
  ASSERT_TRUE(session.Summarize(request).ok());
  for (const std::string& line : session.DescribeGroups()) {
    EXPECT_EQ(line.find("~scratch"), std::string::npos) << line;
  }
}

TEST(ProxSessionTest, ReselectingClearsSummary) {
  ProxSession session = MakeSession();
  session.SelectAll();
  SummarizationRequest request;
  request.max_steps = 2;
  ASSERT_TRUE(session.Summarize(request).ok());
  session.SelectAll();
  EXPECT_EQ(session.SummaryExpression().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProxSessionTest, SummaryDistanceWithinBounds) {
  ProxSession session = MakeSession();
  session.SelectAll();
  SummarizationRequest request;
  request.w_dist = 1.0;
  request.w_size = 0.0;
  request.max_steps = 8;
  ASSERT_TRUE(session.Summarize(request).ok());
  ProxSession::LockedView view = session.Lock();
  ASSERT_NE(view.outcome(), nullptr);
  EXPECT_GE(view.outcome()->final_distance, 0.0);
  EXPECT_LE(view.outcome()->final_distance, 1.0);
}

}  // namespace
}  // namespace prox
