#include "semiring/polynomial.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace prox {
namespace {

using Var = Polynomial::Var;

Polynomial RandomPolynomial(Rng* rng, int num_vars, int max_terms) {
  Polynomial p;
  int terms = 1 + static_cast<int>(rng->PickIndex(max_terms));
  for (int t = 0; t < terms; ++t) {
    Polynomial::Mono m;
    int degree = static_cast<int>(rng->PickIndex(4));
    for (int d = 0; d < degree; ++d) {
      m.push_back(static_cast<Var>(rng->PickIndex(num_vars)));
    }
    p.AddTerm(std::move(m), 1 + rng->PickIndex(3));
  }
  return p;
}

TEST(PolynomialTest, ZeroAndOne) {
  EXPECT_TRUE(Polynomial::Zero().IsZero());
  EXPECT_FALSE(Polynomial::One().IsZero());
  EXPECT_EQ(Polynomial::One().EvaluateBool([](Var) { return false; }), 1u);
  EXPECT_EQ(Polynomial::Zero().EvaluateBool([](Var) { return true; }), 0u);
}

TEST(PolynomialTest, ConstantZeroCollapsesToZero) {
  EXPECT_TRUE(Polynomial::Constant(0).IsZero());
  EXPECT_EQ(Polynomial::Constant(5).EvaluateBool([](Var) { return false; }),
            5u);
}

TEST(PolynomialTest, AdditionMergesMonomials) {
  Polynomial x = Polynomial::FromVar(0);
  Polynomial sum = x + x;
  EXPECT_EQ(sum.NumMonomials(), 1u);
  EXPECT_EQ(sum.EvaluateBool([](Var) { return true; }), 2u);
}

TEST(PolynomialTest, MultiplicationBuildsProducts) {
  Polynomial x = Polynomial::FromVar(0);
  Polynomial y = Polynomial::FromVar(1);
  Polynomial p = (x + y) * (x + y);
  // x^2 + 2xy + y^2
  EXPECT_EQ(p.NumMonomials(), 3u);
  EXPECT_EQ(p.Degree(), 2);
  EXPECT_EQ(p.EvaluateNat([](Var v) -> uint64_t { return v == 0 ? 2 : 3; }),
            25u);
}

TEST(PolynomialTest, SizeCountsVariableOccurrences) {
  Polynomial x = Polynomial::FromVar(0);
  Polynomial y = Polynomial::FromVar(1);
  Polynomial p = x * x * y + y + Polynomial::Constant(4);
  // monomials: x^2·y (3 occurrences), y (1), constant (0)
  EXPECT_EQ(p.Size(), 4);
}

TEST(PolynomialTest, VariablesReturnsSortedDistinct) {
  Polynomial p = Polynomial::FromVar(3) * Polynomial::FromVar(1) +
                 Polynomial::FromVar(3);
  EXPECT_EQ(p.Variables(), (std::vector<Var>{1, 3}));
}

TEST(PolynomialTest, MapVarsActsHomomorphically) {
  // h(x0)=a, h(x1)=a merges monomials: x0 + x1 -> 2a.
  Polynomial p = Polynomial::FromVar(0) + Polynomial::FromVar(1);
  Polynomial mapped = p.MapVars([](Var) { return Var{9}; });
  EXPECT_EQ(mapped.NumMonomials(), 1u);
  EXPECT_EQ(mapped.EvaluateBool([](Var) { return true; }), 2u);
}

TEST(PolynomialTest, ToStringRendersPowersAndCoefficients) {
  Polynomial p = Polynomial::FromVar(0) * Polynomial::FromVar(0) +
                 Polynomial::Constant(2) * Polynomial::FromVar(1);
  auto name = [](Var v) { return "x" + std::to_string(v); };
  EXPECT_EQ(p.ToString(name), "x0^2 + 2·x1");
  EXPECT_EQ(Polynomial::Zero().ToString(name), "0");
}

// --- Semiring axioms, checked on random polynomials (ℕ[X] is a commutative
// semiring; Section 2.2). ---------------------------------------------------

class PolynomialAxiomTest : public ::testing::TestWithParam<int> {};

TEST_P(PolynomialAxiomTest, AdditionCommutesAndAssociates) {
  Rng rng(GetParam());
  Polynomial a = RandomPolynomial(&rng, 4, 4);
  Polynomial b = RandomPolynomial(&rng, 4, 4);
  Polynomial c = RandomPolynomial(&rng, 4, 4);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST_P(PolynomialAxiomTest, MultiplicationCommutesAndAssociates) {
  Rng rng(GetParam() + 1000);
  Polynomial a = RandomPolynomial(&rng, 4, 3);
  Polynomial b = RandomPolynomial(&rng, 4, 3);
  Polynomial c = RandomPolynomial(&rng, 4, 3);
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST_P(PolynomialAxiomTest, DistributivityHolds) {
  Rng rng(GetParam() + 2000);
  Polynomial a = RandomPolynomial(&rng, 4, 3);
  Polynomial b = RandomPolynomial(&rng, 4, 3);
  Polynomial c = RandomPolynomial(&rng, 4, 3);
  EXPECT_EQ(a * (b + c), a * b + a * c);
}

TEST_P(PolynomialAxiomTest, IdentitiesAndAnnihilation) {
  Rng rng(GetParam() + 3000);
  Polynomial a = RandomPolynomial(&rng, 4, 4);
  EXPECT_EQ(a + Polynomial::Zero(), a);
  EXPECT_EQ(a * Polynomial::One(), a);
  EXPECT_EQ(a * Polynomial::Zero(), Polynomial::Zero());
}

TEST_P(PolynomialAxiomTest, EvaluationIsSemiringHomomorphism) {
  Rng rng(GetParam() + 4000);
  Polynomial a = RandomPolynomial(&rng, 4, 4);
  Polynomial b = RandomPolynomial(&rng, 4, 4);
  auto value = [](Var v) -> uint64_t { return (v * 7 + 3) % 5; };
  EXPECT_EQ((a + b).EvaluateNat(value),
            a.EvaluateNat(value) + b.EvaluateNat(value));
  EXPECT_EQ((a * b).EvaluateNat(value),
            a.EvaluateNat(value) * b.EvaluateNat(value));
}

TEST_P(PolynomialAxiomTest, MapVarsCommutesWithOperations) {
  Rng rng(GetParam() + 5000);
  Polynomial a = RandomPolynomial(&rng, 4, 4);
  Polynomial b = RandomPolynomial(&rng, 4, 4);
  auto h = [](Var v) { return static_cast<Var>(v / 2); };
  EXPECT_EQ((a + b).MapVars(h), a.MapVars(h) + b.MapVars(h));
  EXPECT_EQ((a * b).MapVars(h), a.MapVars(h) * b.MapVars(h));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PolynomialAxiomTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace prox
