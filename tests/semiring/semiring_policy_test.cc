// Runtime checks of the semiring-policy laws (the static_asserts in
// semiring.h only check the interface shape).

#include "semiring/semiring.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace prox {
namespace {

template <typename S>
void CheckLaws(typename S::Value a, typename S::Value b,
               typename S::Value c) {
  using V = typename S::Value;
  const V zero = S::Zero();
  const V one = S::One();
  // Commutative monoids.
  EXPECT_EQ(S::Plus(a, b), S::Plus(b, a));
  EXPECT_EQ(S::Plus(S::Plus(a, b), c), S::Plus(a, S::Plus(b, c)));
  EXPECT_EQ(S::Plus(a, zero), a);
  EXPECT_EQ(S::Times(a, b), S::Times(b, a));
  EXPECT_EQ(S::Times(S::Times(a, b), c), S::Times(a, S::Times(b, c)));
  EXPECT_EQ(S::Times(a, one), a);
  // Distributivity and annihilation.
  EXPECT_EQ(S::Times(a, S::Plus(b, c)),
            S::Plus(S::Times(a, b), S::Times(a, c)));
  EXPECT_EQ(S::Times(a, zero), zero);
}

TEST(SemiringPolicyTest, BooleanLaws) {
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      for (bool c : {false, true}) {
        CheckLaws<BoolSemiring>(a, b, c);
      }
    }
  }
}

class CountingLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(CountingLawsTest, RandomTriples) {
  Rng rng(GetParam());
  CheckLaws<CountingSemiring>(rng.UniformInt(100), rng.UniformInt(100),
                              rng.UniformInt(100));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingLawsTest, ::testing::Range(0, 6));

class TropicalLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(TropicalLawsTest, RandomTriples) {
  Rng rng(GetParam() + 100);
  // Integer-valued doubles keep + exact, so EXPECT_EQ is safe.
  CheckLaws<TropicalSemiring>(static_cast<double>(rng.UniformInt(50)),
                              static_cast<double>(rng.UniformInt(50)),
                              static_cast<double>(rng.UniformInt(50)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TropicalLawsTest, ::testing::Range(0, 6));

TEST(SemiringPolicyTest, TropicalIdentities) {
  EXPECT_TRUE(std::isinf(TropicalSemiring::Zero()));
  EXPECT_EQ(TropicalSemiring::One(), 0.0);
  // min(x, ∞) = x and x + 0 = x.
  EXPECT_EQ(TropicalSemiring::Plus(7.0, TropicalSemiring::Zero()), 7.0);
  EXPECT_EQ(TropicalSemiring::Times(7.0, TropicalSemiring::One()), 7.0);
  // ∞ annihilates under ⊗ (= +).
  EXPECT_TRUE(
      std::isinf(TropicalSemiring::Times(7.0, TropicalSemiring::Zero())));
}

TEST(SemiringPolicyTest, TropicalSelectsCheapestAlternative) {
  // The DDP reading: + picks the cheaper execution, · accumulates costs.
  double e1 = TropicalSemiring::Times(4.0, 2.0);  // execution cost 6
  double e2 = TropicalSemiring::Times(1.0, 3.0);  // execution cost 4
  EXPECT_EQ(TropicalSemiring::Plus(e1, e2), 4.0);
}

}  // namespace
}  // namespace prox
