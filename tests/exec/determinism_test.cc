#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/clustering_summarizer.h"
#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "summarize/distance.h"
#include "summarize/summarizer.h"

namespace prox {
namespace {

/// The determinism contract of the parallel engine: for any thread count,
/// Summarizer::Run, both distance oracles and the HAC baseline produce
/// *byte-identical* outcomes — same merges, same distances to the last
/// bit, same summary expression. Each run builds a fresh dataset from the
/// same seed so registries evolve identically; fingerprints render every
/// double with %a (exact bits) and timings are excluded (wall time is the
/// only thing allowed to differ).

enum class Kind { kMovieLens, kWikipedia, kDdp };
enum class Oracle { kEnumerated, kSampled };

Dataset MakeDataset(Kind kind) {
  switch (kind) {
    case Kind::kMovieLens: {
      MovieLensConfig config;
      config.num_users = 12;
      config.num_movies = 5;
      config.ratings_per_user = 4;
      config.seed = 71;
      return MovieLensGenerator::Generate(config);
    }
    case Kind::kWikipedia: {
      WikipediaConfig config;
      config.num_users = 10;
      config.num_pages = 6;
      config.edits_per_user = 3;
      config.seed = 72;
      return WikipediaGenerator::Generate(config);
    }
    case Kind::kDdp: {
      DdpConfig config;
      config.num_executions = 5;
      config.num_db_vars = 6;
      config.num_cost_vars = 5;
      config.seed = 73;
      return DdpGenerator::Generate(config);
    }
  }
  return MovieLensGenerator::Generate(MovieLensConfig{});
}

std::string Hex(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

/// Every non-timing field of the outcome, bit-exact.
std::string Fingerprint(const SummaryOutcome& o,
                        const AnnotationRegistry& registry) {
  std::string fp;
  fp += "final_distance=" + Hex(o.final_distance) + "\n";
  fp += "final_size=" + std::to_string(o.final_size) + "\n";
  fp += "rolled_back=" + std::to_string(o.rolled_back) + "\n";
  fp += "equivalence_merges=" + std::to_string(o.equivalence_merges) + "\n";
  fp += "incremental_hits=" + std::to_string(o.incremental_hits) + "\n";
  fp +=
      "incremental_fallbacks=" + std::to_string(o.incremental_fallbacks) + "\n";
  for (const StepRecord& s : o.steps) {
    fp += "step " + std::to_string(s.step) + ": roots=[";
    for (AnnotationId root : s.merged_roots) {
      fp += std::to_string(root) + ",";
    }
    fp += "] summary=" + std::to_string(s.summary) + " name=" + s.summary_name;
    fp += " dist=" + Hex(s.distance) + " size=" + std::to_string(s.size);
    fp += " score=" + Hex(s.score);
    fp += " candidates=" + std::to_string(s.num_candidates) + "\n";
  }
  fp += "summary_expr=" + o.summary->ToString(registry) + "\n";
  return fp;
}

std::string RunProvApprox(Kind kind, Oracle oracle_kind, int threads) {
  Dataset ds = MakeDataset(kind);
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);

  std::unique_ptr<DistanceOracle> oracle;
  if (oracle_kind == Oracle::kEnumerated) {
    oracle = std::make_unique<EnumeratedDistance>(
        ds.provenance.get(), ds.registry.get(), ds.val_func.get(), valuations,
        threads);
  } else {
    SampledDistance::Options options;
    options.num_samples = 200;
    options.threads = threads;
    oracle = std::make_unique<SampledDistance>(
        ds.provenance.get(), ds.registry.get(), ds.val_func.get(), options);
  }

  SummarizerOptions options;
  options.w_dist = 0.6;
  options.w_size = 0.4;
  options.max_steps = 6;
  options.phi = ds.phi;
  options.threads = threads;
  Summarizer summarizer(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                        &ds.constraints, oracle.get(), &valuations, options);
  Result<SummaryOutcome> outcome = summarizer.Run();
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (!outcome.ok()) return "<failed>";
  return Fingerprint(outcome.value(), *ds.registry);
}

std::string RunHac(Kind kind, int threads) {
  Dataset ds = MakeDataset(kind);
  std::vector<Valuation> valuations =
      ds.valuation_class->Generate(*ds.provenance, ds.ctx);
  EnumeratedDistance oracle(ds.provenance.get(), ds.registry.get(),
                            ds.val_func.get(), valuations, threads);
  ClusteringOptions options;
  options.max_steps = 6;
  options.phi = ds.phi;
  options.threads = threads;
  ClusteringSummarizer cs(ds.provenance.get(), ds.registry.get(), &ds.ctx,
                          &ds.constraints, &oracle, options);
  for (const auto& [domain, features] : ds.features) {
    cs.SetFeatures(domain, features);
  }
  Result<SummaryOutcome> outcome = cs.Run();
  EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
  if (!outcome.ok()) return "<failed>";
  return Fingerprint(outcome.value(), *ds.registry);
}

std::string KindName(Kind kind) {
  switch (kind) {
    case Kind::kMovieLens: return "MovieLens";
    case Kind::kWikipedia: return "Wikipedia";
    case Kind::kDdp: return "Ddp";
  }
  return "Unknown";
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<Kind, Oracle>>& info) {
  return KindName(std::get<0>(info.param)) +
         (std::get<1>(info.param) == Oracle::kEnumerated ? "Enumerated"
                                                         : "Sampled");
}

std::string HacParamName(const ::testing::TestParamInfo<Kind>& info) {
  return KindName(info.param);
}

class DeterminismTest
    : public ::testing::TestWithParam<std::tuple<Kind, Oracle>> {};

TEST_P(DeterminismTest, ByteIdenticalOutcomeAcrossThreadCounts) {
  const Kind kind = std::get<0>(GetParam());
  const Oracle oracle = std::get<1>(GetParam());
  const std::string serial = RunProvApprox(kind, oracle, 1);
  ASSERT_NE(serial, "<failed>");
  EXPECT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    EXPECT_EQ(serial, RunProvApprox(kind, oracle, threads))
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasetsAndOracles, DeterminismTest,
    ::testing::Combine(::testing::Values(Kind::kMovieLens, Kind::kWikipedia,
                                         Kind::kDdp),
                       ::testing::Values(Oracle::kEnumerated,
                                         Oracle::kSampled)),
    ParamName);

class HacDeterminismTest : public ::testing::TestWithParam<Kind> {};

TEST_P(HacDeterminismTest, ByteIdenticalOutcomeAcrossThreadCounts) {
  const Kind kind = GetParam();
  const std::string serial = RunHac(kind, 1);
  ASSERT_NE(serial, "<failed>");
  EXPECT_FALSE(serial.empty());
  for (int threads : {2, 8}) {
    EXPECT_EQ(serial, RunHac(kind, threads)) << "threads=" << threads;
  }
}

// DDP ships no feature vectors, so HAC covers the two rating datasets.
INSTANTIATE_TEST_SUITE_P(FeatureDatasets, HacDeterminismTest,
                         ::testing::Values(Kind::kMovieLens, Kind::kWikipedia),
                         HacParamName);

// threads = 0 resolves to the machine default; the outcome must still be
// identical to the serial run regardless of what that default is.
TEST(DeterminismTest, AutoThreadsMatchesSerial) {
  EXPECT_EQ(RunProvApprox(Kind::kMovieLens, Oracle::kEnumerated, 1),
            RunProvApprox(Kind::kMovieLens, Oracle::kEnumerated, 0));
}

}  // namespace
}  // namespace prox
