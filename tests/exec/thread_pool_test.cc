#include "exec/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace prox {
namespace exec {
namespace {

TEST(ThreadsResolutionTest, HardwareThreadsIsPositive) {
  EXPECT_GE(HardwareThreads(), 1);
}

TEST(ThreadsResolutionTest, ResolveThreadsClampsAndDefaults) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
  EXPECT_EQ(ResolveThreads(-3), 1);
  EXPECT_EQ(ResolveThreads(100000), 256);
  EXPECT_EQ(ResolveThreads(0), DefaultThreads());
  EXPECT_GE(DefaultThreads(), 1);
}

TEST(ThreadPoolTest, StartupAndShutdownAreClean) {
  for (int size : {1, 2, 4}) {
    ThreadPool pool(size);
    EXPECT_EQ(pool.size(), size);
  }
  // Clamping.
  ThreadPool tiny(0);
  EXPECT_EQ(tiny.size(), 1);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (counter.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return counter.load() == kTasks; }));
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    // ~ThreadPool drains every queued task before joining.
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, 0, kN, 7, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<int64_t> order;
  ParallelFor(nullptr, 3, 10, 2, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{3, 4, 5, 6, 7, 8, 9}));
}

TEST(ParallelForTest, GrainEdgeCases) {
  ThreadPool pool(2);
  // Empty and reversed ranges are no-ops.
  int calls = 0;
  ParallelFor(&pool, 5, 5, 1, [&](int64_t) { ++calls; });
  ParallelFor(&pool, 9, 2, 1, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  // Non-positive grain clamps to 1 and still covers the range.
  std::vector<std::atomic<int>> hits(10);
  ParallelFor(&pool, 0, 10, 0, [&](int64_t i) { hits[i].fetch_add(1); });
  ParallelFor(&pool, 0, 10, -5, [&](int64_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 2);

  // Grain larger than the range runs inline.
  std::vector<int64_t> order;
  ParallelFor(&pool, 0, 4, 100, [&](int64_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 100, 1,
                  [&](int64_t i) {
                    if (i == 37) throw std::runtime_error("boom 37");
                  }),
      std::runtime_error);
  // The pool survives a throwing job and keeps running new work.
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, 0, 10, 1, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ParallelForTest, NestedCallFromWorkerRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  // Outer ParallelFor saturates the pool; each worker issues an inner
  // ParallelFor on the same pool, which must degrade to the inline loop
  // (InParallelWorker()) instead of deadlocking on its own queue.
  ParallelFor(&pool, 0, 8, 1, [&](int64_t) {
    EXPECT_TRUE(InParallelWorker());
    ParallelFor(&pool, 0, 100, 4, [&](int64_t i) { total.fetch_add(i); });
  });
  EXPECT_EQ(total.load(), 8 * 4950);
  EXPECT_FALSE(InParallelWorker());
}

TEST(DeterministicSumTest, MatchesAtEveryThreadCountBitwise) {
  // Terms chosen so naive reassociation visibly changes the result in the
  // low bits: scale alternates over ten orders of magnitude.
  auto term = [](int64_t i) {
    double sign = (i % 2 == 0) ? 1.0 : -1.0;
    return sign * (1.0 + static_cast<double>(i % 97)) *
           ((i % 3 == 0) ? 1e-10 : 1e3);
  };
  constexpr int64_t kN = 1237;
  constexpr int64_t kGrain = 8;
  const double serial = DeterministicSum(nullptr, kN, kGrain, term);
  for (int threads : {2, 3, 8}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 3; ++round) {
      const double parallel = DeterministicSum(&pool, kN, kGrain, term);
      // Bitwise, not approximate: the summation tree is scheduling-free.
      EXPECT_EQ(serial, parallel)
          << "threads=" << threads << " round=" << round;
    }
  }
}

TEST(DeterministicSumTest, EdgeCases) {
  ThreadPool pool(2);
  EXPECT_EQ(DeterministicSum(&pool, 0, 8, [](int64_t) { return 1.0; }), 0.0);
  EXPECT_EQ(DeterministicSum(&pool, -5, 8, [](int64_t) { return 1.0; }), 0.0);
  EXPECT_EQ(DeterministicSum(&pool, 5, 0, [](int64_t) { return 1.0; }), 5.0);
  EXPECT_EQ(DeterministicSum(nullptr, 1, 8, [](int64_t i) {
              return static_cast<double>(i) + 2.5;
            }),
            2.5);
}

TEST(ExecMetricsTest, TasksAreCounted) {
  auto snapshot_tasks = [] {
    return obs::MetricsRegistry::Default().Snapshot().CounterValue(
        "prox_exec_tasks_total");
  };
  ThreadPool pool(2);
  const double before = snapshot_tasks();
  // 100 indices at grain 10 → 10 chunk tasks.
  std::atomic<int> hits{0};
  ParallelFor(&pool, 0, 100, 10, [&](int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 100);
  if (obs::Enabled()) {
    EXPECT_EQ(snapshot_tasks() - before, 10.0);
  }
}

TEST(PoolRefTest, SerialAndParallelResolution) {
  PoolRef serial(1);
  EXPECT_EQ(serial.pool(), nullptr);
  EXPECT_EQ(serial.threads(), 1);

  PoolRef two(2);
  EXPECT_EQ(two.threads(), 2);
  if (DefaultThreads() == 2) {
    EXPECT_EQ(two.pool(), &ThreadPool::Default());
  } else {
    ASSERT_NE(two.pool(), nullptr);
    EXPECT_EQ(two.pool()->size(), 2);
  }

  PoolRef automatic(0);
  EXPECT_EQ(automatic.threads(), DefaultThreads());
  if (DefaultThreads() > 1) {
    EXPECT_EQ(automatic.pool(), &ThreadPool::Default());
  } else {
    EXPECT_EQ(automatic.pool(), nullptr);
  }
}

}  // namespace
}  // namespace exec
}  // namespace prox
