#ifndef PROX_TESTS_TESTING_FIXTURES_H_
#define PROX_TESTS_TESTING_FIXTURES_H_

#include <memory>
#include <vector>

#include "provenance/aggregate_expr.h"
#include "provenance/annotation.h"
#include "semantics/constraints.h"
#include "semantics/context.h"

namespace prox {
namespace testing_fixtures {

/// The running example of Chapters 3-4: users U1 (F, Audience),
/// U2 (F, Critic), U3 (M, Audience) rating "Match Point" (3, 5, 3) and U2
/// rating "Blue Jasmine" (4), MAX aggregation, users groupable when they
/// share Gender or Role.
struct MovieFixture {
  AnnotationRegistry registry;
  DomainId user_domain;
  DomainId movie_domain;
  AnnotationId u1, u2, u3;
  AnnotationId match_point, blue_jasmine;
  SemanticContext ctx;
  ConstraintSet constraints;
  std::unique_ptr<AggregateExpression> p0;

  MovieFixture() {
    user_domain = registry.AddDomain("user");
    movie_domain = registry.AddDomain("movie");

    EntityTable users("Users");
    AttrId gender = users.AddAttribute("Gender");
    AttrId role = users.AddAttribute("Role");
    u1 = registry.Add(user_domain, "U1",
                      users.AddRow({"F", "Audience"}).MoveValue())
             .MoveValue();
    u2 = registry.Add(user_domain, "U2",
                      users.AddRow({"F", "Critic"}).MoveValue())
             .MoveValue();
    u3 = registry.Add(user_domain, "U3",
                      users.AddRow({"M", "Audience"}).MoveValue())
             .MoveValue();
    match_point = registry.Add(movie_domain, "MatchPoint", kNoEntity)
                      .MoveValue();
    blue_jasmine = registry.Add(movie_domain, "BlueJasmine", kNoEntity)
                       .MoveValue();

    p0 = std::make_unique<AggregateExpression>(AggKind::kMax);
    AddRating(u1, match_point, 3);
    AddRating(u2, match_point, 5);
    AddRating(u3, match_point, 3);
    AddRating(u2, blue_jasmine, 4);
    p0->Simplify();

    ctx.registry = &registry;
    ctx.tables.emplace(user_domain, std::move(users));
    constraints.SetRule(user_domain, std::make_unique<SharedAttributeRule>(
                                         std::vector<AttrId>{gender, role}));
  }

  void AddRating(AnnotationId user, AnnotationId movie, double score) {
    TensorTerm t;
    t.monomial = Monomial({user, movie});
    t.group = movie;
    t.value = AggValue{score, 1.0};
    p0->AddTerm(std::move(t));
  }
};

}  // namespace testing_fixtures
}  // namespace prox

#endif  // PROX_TESTS_TESTING_FIXTURES_H_
