/// Balancer tests over in-process epoll replicas: consistent-hash
/// fan-out with cache affinity, passive failure detection, the
/// retry-once-on-next-replica contract for idempotent GETs, 502 for
/// non-idempotent forwards, and 503 when no replica is left. Probing is
/// disabled (health_interval_ms = 0), so every health transition in here
/// is deterministic passive detection.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "engine/engine.h"
#include "net/balancer.h"
#include "net/epoll_server.h"
#include "net/net_metrics.h"
#include "net/ring.h"
#include "serve/client.h"
#include "serve/router.h"

namespace prox {
namespace net {
namespace {

constexpr int kVnodes = 64;

/// One in-process replica: its own engine over the shared dataset shape
/// (same generator config → same fingerprint, as snapshot-booted fleet
/// members would have) behind Router + EpollServer.
struct Replica {
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<serve::Router> router;
  std::unique_ptr<EpollServer> server;

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }
};

Dataset MakeDataset() {
  MovieLensConfig config;
  config.num_users = 12;
  config.num_movies = 5;
  config.seed = 7;
  return MovieLensGenerator::Generate(config);
}

std::unique_ptr<Replica> BootReplica() {
  auto replica = std::make_unique<Replica>();
  engine::Engine::Options engine_options;
  engine_options.cache.max_bytes = 4 * 1024 * 1024;
  replica->engine =
      engine::Engine::FromDataset(MakeDataset(), engine_options);
  replica->router = std::make_unique<serve::Router>(replica->engine.get());
  EpollServer::Options options;
  options.port = 0;
  options.shards = 1;
  replica->server = std::make_unique<EpollServer>(
      options, [router = replica->router.get()](
                   const serve::HttpRequest& request) {
        return router->Handle(request);
      });
  EXPECT_TRUE(replica->server->Start().ok());
  return replica;
}

serve::HttpRequest MakeRequest(const std::string& method,
                               const std::string& target,
                               const std::string& body = "") {
  serve::HttpRequest request;
  request.method = method;
  request.target = target;
  request.version = "HTTP/1.1";
  request.body = body;
  return request;
}

std::string HeaderValue(const serve::HttpResponse& response,
                        const std::string& name) {
  for (const auto& [header, value] : response.headers) {
    if (header == name) return value;
  }
  return "";
}

class BalancerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) replicas_.push_back(BootReplica());
    for (const auto& replica : replicas_) {
      endpoints_.push_back(replica->endpoint());
    }
    fingerprint_ = replicas_[0]->router->dataset_fingerprint();
  }

  Balancer::Options BalancerOptions() const {
    Balancer::Options options;
    options.replicas = endpoints_;
    options.vnodes = kVnodes;
    options.health_interval_ms = 0;  // passive detection only
    options.connect_timeout_ms = 1000;
    options.request_timeout_ms = 10000;
    return options;
  }

  /// The balancer's routing key, reconstructed — the tests use it with
  /// their own HashRing to predict which replica owns a request.
  std::string RouteKey(const std::string& target,
                       const std::string& body = "") const {
    return fingerprint_ + "\n" + target + "\n" + body;
  }

  /// A target of the given prefix whose ring owner is `endpoint`.
  std::string TargetOwnedBy(const HashRing& ring,
                            const std::string& endpoint) const {
    for (int i = 0; i < 1000; ++i) {
      std::string target = "/probe-" + std::to_string(i);
      if (ring.Pick(RouteKey(target)) == endpoint) return target;
    }
    ADD_FAILURE() << "no target mapped to " << endpoint;
    return "/probe-0";
  }

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::string> endpoints_;
  std::string fingerprint_;
};

TEST_F(BalancerFixture, StartValidatesReplicaList) {
  Balancer empty(Balancer::Options{});
  EXPECT_FALSE(empty.Start().ok());

  Balancer::Options bad = BalancerOptions();
  bad.replicas.push_back("no-port-here");
  Balancer malformed(bad);
  EXPECT_FALSE(malformed.Start().ok());
}

TEST_F(BalancerFixture, HealthzAndMetricsAreAnsweredLocally) {
  Balancer balancer(BalancerOptions());
  ASSERT_TRUE(balancer.Start().ok());

  serve::HttpResponse health = balancer.Handle(MakeRequest("GET", "/healthz"));
  EXPECT_EQ(health.status, 200);
  auto doc = ParseJson(health.body);
  ASSERT_TRUE(doc.ok()) << health.body;
  EXPECT_EQ(doc.value().Find("role")->string_value(), "router");
  EXPECT_EQ(doc.value().Find("healthy_replicas")->int_value(), 3);
  EXPECT_EQ(doc.value().Find("replicas")->items().size(), 3u);

  serve::HttpResponse metrics = balancer.Handle(MakeRequest("GET", "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.content_type.find("text/plain"), std::string::npos);
}

TEST_F(BalancerFixture, FansOutWithReplicaAffinityAndWarmCaches) {
  Balancer balancer(BalancerOptions());
  ASSERT_TRUE(balancer.Start().ok());

  // Distinct summarize bodies spread across replicas; repeating a body
  // must land on the same replica — and prove it by hitting that
  // replica's now-warm cache.
  std::set<std::string> replicas_seen;
  for (int i = 0; i < 12; ++i) {
    const std::string body = "{\"w_dist\":0." + std::to_string(i % 9 + 1) +
                             ",\"max_steps\":" + std::to_string(3 + i) + "}";
    serve::HttpResponse cold =
        balancer.Handle(MakeRequest("POST", "/v1/summarize", body));
    ASSERT_EQ(cold.status, 200) << cold.body;
    const std::string replica = HeaderValue(cold, "X-Prox-Replica");
    ASSERT_FALSE(replica.empty());
    replicas_seen.insert(replica);
    EXPECT_EQ(HeaderValue(cold, "x-prox-cache"), "miss") << body;

    serve::HttpResponse warm =
        balancer.Handle(MakeRequest("POST", "/v1/summarize", body));
    ASSERT_EQ(warm.status, 200);
    EXPECT_EQ(HeaderValue(warm, "X-Prox-Replica"), replica) << body;
    EXPECT_EQ(HeaderValue(warm, "x-prox-cache"), "hit") << body;
    EXPECT_EQ(warm.body, cold.body);
  }
  // 12 distinct bodies over 3 replicas with 64 vnodes: all replicas see
  // traffic with overwhelming probability (and deterministically so for
  // this fixed fingerprint + body set).
  EXPECT_GE(replicas_seen.size(), 2u);
}

TEST_F(BalancerFixture, IdempotentGetRetriesOnceOnRingSuccessor) {
  HashRing ring(endpoints_, kVnodes);
  Balancer balancer(BalancerOptions());
  ASSERT_TRUE(balancer.Start().ok());
  // Prime the fingerprint while every replica is still up.
  ASSERT_EQ(balancer.Handle(MakeRequest("GET", "/healthz")).status, 200);

  const std::string dead = endpoints_[1];
  const std::string target = TargetOwnedBy(ring, dead);
  const std::vector<std::string> successors =
      ring.PickN(RouteKey(target), 2);
  ASSERT_EQ(successors[0], dead);
  replicas_[1]->server->Stop();

  const uint64_t retries_before = BalancerRetry()->value();
  serve::HttpResponse response = balancer.Handle(MakeRequest("GET", target));
  // The dead owner fails at the transport level; the retry lands on the
  // ring successor, which answers (404 — an unrouted probe target, but
  // an HTTP answer, which is the point: zero 5xx for the client).
  EXPECT_EQ(response.status, 404) << response.body;
  EXPECT_EQ(HeaderValue(response, "X-Prox-Replica"), successors[1]);
  EXPECT_EQ(BalancerRetry()->value(), retries_before + 1);
  EXPECT_EQ(balancer.healthy_count(), 2);  // passive detection marked it

  // Once marked down, the dead replica is filtered before forwarding:
  // the same GET now goes straight to the successor, no retry burned.
  const uint64_t retries_after_first = BalancerRetry()->value();
  serve::HttpResponse again = balancer.Handle(MakeRequest("GET", target));
  EXPECT_EQ(again.status, 404);
  EXPECT_EQ(HeaderValue(again, "X-Prox-Replica"), successors[1]);
  EXPECT_EQ(BalancerRetry()->value(), retries_after_first);
}

TEST_F(BalancerFixture, NonIdempotentForwardFailureIs502NotReplay) {
  HashRing ring(endpoints_, kVnodes);
  Balancer balancer(BalancerOptions());
  ASSERT_TRUE(balancer.Start().ok());
  ASSERT_EQ(balancer.Handle(MakeRequest("GET", "/healthz")).status, 200);

  // A summarize body owned by the replica we are about to kill.
  const std::string dead = endpoints_[2];
  std::string body;
  for (int i = 0; i < 1000 && body.empty(); ++i) {
    std::string candidate = "{\"w_dist\":0.5,\"max_steps\":" +
                            std::to_string(3 + i % 7) + ",\"pad\":" +
                            std::to_string(i) + "}";
    if (ring.Pick(RouteKey("/v1/summarize", candidate)) == dead) {
      body = candidate;
    }
  }
  ASSERT_FALSE(body.empty());
  replicas_[2]->server->Stop();

  serve::HttpResponse response =
      balancer.Handle(MakeRequest("POST", "/v1/summarize", body));
  // A POST may have side effects on the replica; the balancer must not
  // guess — it reports the broken hop instead.
  EXPECT_EQ(response.status, 502);
  EXPECT_EQ(balancer.healthy_count(), 2);
}

TEST_F(BalancerFixture, AllReplicasDownSheds503) {
  Balancer balancer(BalancerOptions());
  ASSERT_TRUE(balancer.Start().ok());
  for (auto& replica : replicas_) replica->server->Stop();

  const uint64_t shed_before = BalancerNoBackend()->value();
  // Each failed GET burns at most two healthy flags (owner + the one
  // retry), so a few passes of passive detection are needed before every
  // replica is known-dead and the shed is immediate.
  for (int i = 0; i < 3 && balancer.healthy_count() > 0; ++i) {
    balancer.Handle(MakeRequest("GET", "/v1/summary/groups"));
  }
  serve::HttpResponse response =
      balancer.Handle(MakeRequest("GET", "/v1/summary/groups"));
  EXPECT_EQ(response.status, 503);
  EXPECT_EQ(balancer.healthy_count(), 0);
  EXPECT_GE(BalancerNoBackend()->value(), shed_before + 1);
}

}  // namespace
}  // namespace net
}  // namespace prox
