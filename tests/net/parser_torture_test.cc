/// HttpParser torture: every route's request bytes pushed through the
/// parser whole, one byte at a time, and at seeded randomized split
/// points, asserting the parse is identical in all three feedings. This
/// is the property both transports lean on — the epoll loops feed the
/// parser whatever recv() produced, so any split of the byte stream must
/// parse the same. Covers /v1/ingest too, which the wire-level torture
/// (transport_identity_test.cc) skips for being non-idempotent.

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/http.h"

namespace prox {
namespace serve {
namespace {

std::string RenderRequest(const std::string& method, const std::string& target,
                          const std::string& body) {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  out += "Host: t\r\n";
  if (!body.empty()) {
    out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n" + body;
  return out;
}

/// One request per served route (docs/SERVING.md), plus a 404 target and
/// a wrong-method probe — the wire shapes the transports actually see.
std::vector<std::string> RouteRequests() {
  return {
      RenderRequest("POST", "/v1/select", "{\"title_substring\":\"(\"}"),
      RenderRequest("POST", "/v1/summarize",
                    "{\"w_dist\":0.7,\"max_steps\":5}"),
      RenderRequest("POST", "/v1/ingest",
                    "{\"sequence\":1,\"new_users\":[],\"new_ratings\":[]}"),
      RenderRequest("POST", "/v1/evaluate",
                    "{\"assignment\":{\"false_attributes\":[{\"attribute\":"
                    "\"Gender\",\"value\":\"M\"}]}}"),
      RenderRequest("GET", "/v1/summary/groups", ""),
      RenderRequest("GET", "/v1/debug/requests", ""),
      RenderRequest("GET", "/healthz", ""),
      RenderRequest("GET", "/metrics", ""),
      RenderRequest("GET", "/nope", ""),
      RenderRequest("PUT", "/v1/summarize", "{\"w_dist\":0.7}"),
  };
}

struct Parsed {
  std::string method, target, version, body;
  std::vector<std::pair<std::string, std::string>> headers;

  bool operator==(const Parsed& other) const = default;
};

/// Feeds `bytes` at the given split points and requires exactly one
/// complete request with nothing left over.
Parsed ParseWithSplits(const std::string& bytes,
                       const std::vector<size_t>& chunk_sizes) {
  HttpParser parser;
  size_t offset = 0;
  for (size_t chunk : chunk_sizes) {
    parser.Feed(std::string_view(bytes).substr(offset, chunk));
    offset += chunk;
    // Mid-stream the parser must never error or fabricate a request out
    // of a partial message.
    if (offset < bytes.size()) {
      HttpRequest probe;
      ParseResult mid = parser.Next(&probe);
      if (mid == ParseResult::kRequest) {
        // Complete early only if the remaining bytes are a later chunk's
        // problem — can't happen for a single well-formed request.
        ADD_FAILURE() << "request completed before all bytes were fed";
      }
      EXPECT_NE(mid, ParseResult::kError);
      if (mid != ParseResult::kNeedMore) break;
    }
  }
  HttpRequest request;
  EXPECT_EQ(parser.Next(&request), ParseResult::kRequest);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  return Parsed{request.method, request.target, request.version, request.body,
                request.headers};
}

TEST(ParserTortureTest, OneByteAtATimeMatchesWholeBuffer) {
  for (const std::string& bytes : RouteRequests()) {
    SCOPED_TRACE(bytes.substr(0, bytes.find('\r')));
    Parsed whole = ParseWithSplits(bytes, {bytes.size()});
    Parsed dribbled =
        ParseWithSplits(bytes, std::vector<size_t>(bytes.size(), 1));
    EXPECT_EQ(whole, dribbled);
  }
}

TEST(ParserTortureTest, SeededRandomSplitsMatchWholeBuffer) {
  std::mt19937_64 rng(20260807);  // seeded: failures replay exactly
  for (const std::string& bytes : RouteRequests()) {
    SCOPED_TRACE(bytes.substr(0, bytes.find('\r')));
    Parsed whole = ParseWithSplits(bytes, {bytes.size()});
    for (int round = 0; round < 200; ++round) {
      std::vector<size_t> chunks;
      size_t remaining = bytes.size();
      std::uniform_int_distribution<size_t> chunk_size(1, 11);
      while (remaining > 0) {
        size_t take = std::min(remaining, chunk_size(rng));
        chunks.push_back(take);
        remaining -= take;
      }
      Parsed split = ParseWithSplits(bytes, chunks);
      ASSERT_EQ(whole, split) << "round " << round;
    }
  }
}

TEST(ParserTortureTest, PipelinedConcatenationParsesInOrderAtAnySplit) {
  std::vector<std::string> requests = RouteRequests();
  std::string stream;
  for (const std::string& bytes : requests) stream += bytes;

  std::mt19937_64 rng(7);
  for (int round = 0; round < 50; ++round) {
    HttpParser parser;
    std::vector<Parsed> seen;
    size_t offset = 0;
    std::uniform_int_distribution<size_t> chunk_size(1, 23);
    while (offset < stream.size() || true) {
      HttpRequest request;
      ParseResult result = parser.Next(&request);
      if (result == ParseResult::kRequest) {
        seen.push_back(Parsed{request.method, request.target, request.version,
                              request.body, request.headers});
        continue;
      }
      ASSERT_EQ(result, ParseResult::kNeedMore);
      if (offset >= stream.size()) break;
      size_t take = std::min(stream.size() - offset, chunk_size(rng));
      parser.Feed(std::string_view(stream).substr(offset, take));
      offset += take;
    }
    ASSERT_EQ(seen.size(), requests.size()) << "round " << round;
    for (size_t i = 0; i < requests.size(); ++i) {
      Parsed expected = ParseWithSplits(requests[i], {requests[i].size()});
      EXPECT_EQ(seen[i], expected) << "request " << i;
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace prox
