/// HashRing unit tests: determinism, spread across endpoints, the
/// minimal-remapping property under membership change, and PickN's
/// successor ordering (what the balancer's retry walks).

#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/ring.h"

namespace prox {
namespace net {
namespace {

std::vector<std::string> Endpoints(int n) {
  std::vector<std::string> endpoints;
  for (int i = 0; i < n; ++i) {
    endpoints.push_back("10.0.0." + std::to_string(i + 1) + ":8080");
  }
  return endpoints;
}

std::vector<std::string> Keys(int n) {
  std::vector<std::string> keys;
  for (int i = 0; i < n; ++i) {
    keys.push_back("fp\n/v1/summarize\n{\"w_dist\":0." + std::to_string(i) +
                   ",\"seq\":" + std::to_string(i) + "}");
  }
  return keys;
}

TEST(HashRingTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a 64 test vectors; determinism across platforms is
  // what lets every router instance agree on the mapping.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashRingTest, DeterministicAcrossInstances) {
  HashRing first(Endpoints(5), 64);
  HashRing second(Endpoints(5), 64);
  for (const std::string& key : Keys(200)) {
    EXPECT_EQ(first.Pick(key), second.Pick(key));
    EXPECT_EQ(first.PickN(key, 3), second.PickN(key, 3));
  }
}

TEST(HashRingTest, EmptyRingAndEdgeArities) {
  HashRing empty({}, 64);
  EXPECT_EQ(empty.Pick("k"), "");
  EXPECT_TRUE(empty.PickN("k", 3).empty());

  HashRing one(Endpoints(1), 64);
  EXPECT_EQ(one.Pick("k"), "10.0.0.1:8080");
  // n beyond the endpoint count clamps; 0 asks for nothing.
  EXPECT_EQ(one.PickN("k", 5).size(), 1u);
  EXPECT_TRUE(one.PickN("k", 0).empty());
}

TEST(HashRingTest, PickNReturnsDistinctEndpointsOwnerFirst) {
  HashRing ring(Endpoints(5), 64);
  for (const std::string& key : Keys(100)) {
    std::vector<std::string> picked = ring.PickN(key, 5);
    ASSERT_EQ(picked.size(), 5u);
    EXPECT_EQ(picked.front(), ring.Pick(key));
    std::set<std::string> distinct(picked.begin(), picked.end());
    EXPECT_EQ(distinct.size(), 5u);
  }
}

TEST(HashRingTest, SpreadIsRoughlyUniform) {
  const int kEndpoints = 4;
  const int kKeys = 4000;
  HashRing ring(Endpoints(kEndpoints), 64);
  std::map<std::string, int> counts;
  for (const std::string& key : Keys(kKeys)) ++counts[ring.Pick(key)];
  ASSERT_EQ(counts.size(), static_cast<size_t>(kEndpoints));
  // 64 vnodes keep each share within a loose factor-2 band of uniform —
  // tight enough that no replica idles while another holds half the keys.
  for (const auto& [endpoint, count] : counts) {
    EXPECT_GT(count, kKeys / (2 * kEndpoints)) << endpoint;
    EXPECT_LT(count, kKeys / kEndpoints * 2) << endpoint;
  }
}

TEST(HashRingTest, RemovingOneEndpointRemapsOnlyItsShare) {
  std::vector<std::string> all = Endpoints(4);
  std::vector<std::string> without_last(all.begin(), all.end() - 1);
  HashRing full(all, 64);
  HashRing reduced(without_last, 64);

  const std::string& removed = all.back();
  int moved = 0;
  int owned_by_removed = 0;
  const int kKeys = 4000;
  for (const std::string& key : Keys(kKeys)) {
    const std::string before = full.Pick(key);
    const std::string after = reduced.Pick(key);
    if (before == removed) {
      ++owned_by_removed;
      // The dead endpoint's keys land on its ring successor — exactly
      // what PickN listed second, so the balancer's retry target and the
      // post-failure owner agree and caches stay warm.
      EXPECT_EQ(after, full.PickN(key, 2)[1]) << key;
    } else {
      EXPECT_EQ(after, before) << key;  // everyone else's keys stay put
    }
    if (before != after) ++moved;
  }
  EXPECT_EQ(moved, owned_by_removed);
  EXPECT_GT(owned_by_removed, 0);
  EXPECT_LT(owned_by_removed, kKeys / 2);  // ~1/4 of the keyspace, not more
}

}  // namespace
}  // namespace net
}  // namespace prox
