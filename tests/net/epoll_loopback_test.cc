/// End-to-end tests of the epoll transport over a real loopback socket:
/// the same MovieLens session behind Router + EpollServer, driven by
/// serve::ClientConnection. Mirrors tests/serve/server_loopback_test.cc
/// so the two transports are held to the same observable contract, and
/// adds what only an event loop must prove: idle reaping without a
/// thread parked per connection, 408 on mid-request stalls, and many
/// concurrent keep-alive clients on a handful of threads. Carries the
/// `tsan` CTest label (tests/CMakeLists.txt).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "datasets/movielens.h"
#include "engine/engine.h"
#include "net/epoll_server.h"
#include "net/net_metrics.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/serve_metrics.h"

namespace prox {
namespace net {
namespace {

using serve::ClientConnection;
using serve::ClientResponse;
using serve::Fetch;

constexpr char kSummarizeBody[] = "{\"w_dist\":0.7,\"max_steps\":5}";

/// One running epoll server over a fresh small dataset; ephemeral port.
class EpollLoopback {
 public:
  explicit EpollLoopback(EpollServer::Options options = {})
      : engine_(engine::Engine::FromDataset(MakeDataset(), EngineOptions())),
        router_(engine_.get()) {
    options.port = 0;
    if (options.shards == 0) options.shards = 2;
    server_ = std::make_unique<EpollServer>(
        std::move(options), [this](const serve::HttpRequest& request) {
          return router_.Handle(request);
        });
    Status status = server_->Start();
    EXPECT_TRUE(status.ok()) << status.ToString();
  }

  int port() const { return server_->port(); }
  EpollServer& server() { return *server_; }

  Result<ClientResponse> Post(const std::string& target,
                              const std::string& body) {
    return Fetch("127.0.0.1", port(), "POST", target, body,
                 /*timeout_ms=*/30000);
  }
  Result<ClientResponse> Get(const std::string& target) {
    return Fetch("127.0.0.1", port(), "GET", target);
  }

 private:
  static Dataset MakeDataset() {
    MovieLensConfig config;
    config.num_users = 12;
    config.num_movies = 5;
    config.seed = 7;
    return MovieLensGenerator::Generate(config);
  }
  static engine::Engine::Options EngineOptions() {
    engine::Engine::Options options;
    options.cache.max_bytes = 4 * 1024 * 1024;
    return options;
  }

  std::unique_ptr<engine::Engine> engine_;
  serve::Router router_;
  std::unique_ptr<EpollServer> server_;
};

TEST(EpollLoopbackTest, HealthzRoutesAndErrors) {
  EpollLoopback fixture;
  auto health = fixture.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health.value().status, 200);
  EXPECT_NE(health.value().body.find("dataset_fingerprint"),
            std::string::npos);

  EXPECT_EQ(fixture.Get("/nope").value().status, 404);
  EXPECT_EQ(fixture.Get("/v1/summarize").value().status, 405);
  EXPECT_EQ(fixture.Post("/v1/summarize", "{nope").value().status, 400);
}

TEST(EpollLoopbackTest, ColdAndCachedBodiesAreByteIdentical) {
  EpollLoopback fixture;
  auto cold = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_EQ(cold.value().status, 200) << cold.value().body;
  EXPECT_EQ(cold.value().Header("x-prox-cache"), "miss");

  auto cached = fixture.Post("/v1/summarize", kSummarizeBody);
  ASSERT_TRUE(cached.ok());
  ASSERT_EQ(cached.value().status, 200);
  EXPECT_EQ(cached.value().Header("x-prox-cache"), "hit");
  EXPECT_EQ(cached.value().body, cold.value().body);

  auto parsed = ParseJson(cold.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed.value().Find("final_size"), nullptr);
}

TEST(EpollLoopbackTest, KeepAliveServesManyExchangesOnOneConnection) {
  EpollLoopback fixture;
  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok());
  ClientConnection client = std::move(connection).value();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.SendRequest("GET", "/healthz").ok()) << i;
    auto response = client.ReadResponse();
    ASSERT_TRUE(response.ok()) << i << ": " << response.status().ToString();
    EXPECT_EQ(response.value().status, 200);
  }
  client.Close();
}

TEST(EpollLoopbackTest, SplitSendsAndPipeliningWork) {
  EpollLoopback fixture;
  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok());
  ClientConnection client = std::move(connection).value();

  // One request dribbled across three sends — the loop feeds the parser
  // whatever each recv produced.
  ASSERT_TRUE(client.SendRaw("GET /heal").ok());
  ASSERT_TRUE(client.SendRaw("thz HTT").ok());
  ASSERT_TRUE(client.SendRaw("P/1.1\r\nHost: a\r\n\r\n").ok());
  auto first = client.ReadResponse();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value().status, 200);

  // Three pipelined requests in one send; answered strictly in order.
  ASSERT_TRUE(client
                  .SendRaw("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /nope HTTP/1.1\r\n\r\n"
                           "GET /healthz HTTP/1.1\r\n\r\n")
                  .ok());
  auto second = client.ReadResponse();
  auto third = client.ReadResponse();
  auto fourth = client.ReadResponse();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  ASSERT_TRUE(fourth.ok());
  EXPECT_EQ(second.value().status, 200);
  EXPECT_EQ(third.value().status, 404);
  EXPECT_EQ(fourth.value().status, 200);
  client.Close();
}

TEST(EpollLoopbackTest, ParserErrorsSurfaceOverTheWire) {
  EpollLoopback fixture;
  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok());
  ClientConnection client = std::move(connection).value();
  ASSERT_TRUE(client
                  .SendRaw("GET / HTTP/1.1\r\nx-pad: " +
                           std::string(64 * 1024, 'a') + "\r\n\r\n")
                  .ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 431);
}

TEST(EpollLoopbackTest, OverloadShedsWith503) {
  EpollServer::Options options;
  options.max_inflight = 1;
  EpollLoopback fixture(options);
  auto holder = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(holder.ok());
  ClientConnection held = std::move(holder).value();
  // Complete one exchange so the holder definitely occupies the one
  // admission slot before the shed probe connects.
  ASSERT_TRUE(held.SendRequest("GET", "/healthz").ok());
  ASSERT_EQ(held.ReadResponse().value().status, 200);

  auto shed = Fetch("127.0.0.1", fixture.port(), "GET", "/healthz");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().status, 503);
  held.Close();
}

TEST(EpollLoopbackTest, IdleConnectionsAreReapedAndCounted) {
  EpollServer::Options options;
  options.idle_timeout_ms = 150;
  EpollLoopback fixture(options);
  const uint64_t reaped_before = serve::ServeIdleReaped()->value();

  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok());
  ClientConnection client = std::move(connection).value();
  ASSERT_TRUE(client.SendRequest("GET", "/healthz").ok());
  ASSERT_EQ(client.ReadResponse().value().status, 200);

  // Sit idle past the budget: the server must close from its side, with
  // no request in flight, and account the reap.
  auto after = client.ReadResponse();
  EXPECT_FALSE(after.ok());
  EXPECT_GE(serve::ServeIdleReaped()->value(), reaped_before + 1);
}

TEST(EpollLoopbackTest, MidRequestStallGets408) {
  EpollServer::Options options;
  options.read_timeout_ms = 150;
  EpollLoopback fixture(options);
  const uint64_t timeouts_before = NetRequestTimeouts()->value();

  auto connection = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(connection.ok());
  ClientConnection client = std::move(connection).value();
  // Half a request, then silence: the client's fault, said explicitly.
  ASSERT_TRUE(client.SendRaw("POST /v1/summarize HTTP/1.1\r\nConte").ok());
  auto response = client.ReadResponse();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status, 408);
  EXPECT_GE(NetRequestTimeouts()->value(), timeouts_before + 1);
}

TEST(EpollLoopbackTest, ManyConcurrentKeepAliveClients) {
  EpollServer::Options options;
  options.max_inflight = 256;
  EpollLoopback fixture(options);
  // Warm the cache so every client's summarize is a fast hit.
  ASSERT_EQ(fixture.Post("/v1/summarize", kSummarizeBody).value().status, 200);

  constexpr int kClients = 16;
  constexpr int kExchanges = 8;
  std::vector<int> failures(kClients, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&fixture, &failures, i] {
      auto connection =
          ClientConnection::Connect("127.0.0.1", fixture.port(), 30000);
      if (!connection.ok()) {
        failures[i] = kExchanges;
        return;
      }
      ClientConnection client = std::move(connection).value();
      for (int j = 0; j < kExchanges; ++j) {
        const bool post = (i + j) % 2 == 0;
        Status sent = post ? client.SendRequest("POST", "/v1/summarize",
                                                kSummarizeBody)
                           : client.SendRequest("GET", "/healthz");
        if (!sent.ok()) {
          ++failures[i];
          continue;
        }
        auto response = client.ReadResponse();
        if (!response.ok() || response.value().status != 200) ++failures[i];
      }
      client.Close();
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(failures[i], 0) << i;
}

TEST(EpollLoopbackTest, StopDrainsAndRefusesNewWork) {
  EpollLoopback fixture;
  ASSERT_EQ(fixture.Get("/healthz").value().status, 200);

  // An idle keep-alive connection at Stop() time is closed by the drain,
  // not left hanging.
  auto idle = ClientConnection::Connect("127.0.0.1", fixture.port());
  ASSERT_TRUE(idle.ok());
  ClientConnection idle_client = std::move(idle).value();
  ASSERT_TRUE(idle_client.SendRequest("GET", "/healthz").ok());
  ASSERT_EQ(idle_client.ReadResponse().value().status, 200);

  fixture.server().Stop();
  EXPECT_FALSE(fixture.server().running());
  EXPECT_FALSE(idle_client.ReadResponse().ok());  // closed by the drain

  auto after = ClientConnection::Connect("127.0.0.1", fixture.port(),
                                         /*timeout_ms=*/500);
  EXPECT_FALSE(after.ok());
  fixture.server().Stop();  // idempotent
}

TEST(EpollLoopbackTest, PeerAbortMidHandlerKeepsSlotAndStopIsClean) {
  // Regression for a shutdown use-after-free: a peer RST while the
  // handler runs delivers EPOLLERR (always reported, even at interest
  // mask 0), closing the connection while the handler-pool task still
  // holds the Shard pointer. Stop() must join the handler pool before
  // destroying the shards, and the admission slot must stay held until
  // the orphaned completion is dropped — no slot leak, no handler
  // concurrency above max_inflight.
  std::atomic<int> entered{0};
  std::atomic<bool> release{false};
  EpollServer::Options options;
  options.shards = 1;
  options.max_inflight = 1;
  EpollServer server(options, [&](const serve::HttpRequest&) {
    entered.fetch_add(1, std::memory_order_acq_rel);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return serve::HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());

  // Raw socket so close() can send an RST (SO_LINGER, zero timeout).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char request[] = "GET /slow HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(request) - 1));
  while (entered.load(std::memory_order_acquire) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  linger lin{};
  lin.l_onoff = 1;
  lin.l_linger = 0;
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  ::close(fd);  // RST

  // The aborted connection's handler still runs, so its admission slot
  // is still held: a new connection is shed with the canned 503.
  auto shed = Fetch("127.0.0.1", server.port(), "GET", "/healthz");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed.value().status, 503);

  release.store(true, std::memory_order_release);
  // Delivering (and dropping) the orphaned completion releases the slot;
  // a fresh request then succeeds. Delivery is asynchronous — poll.
  int status = 0;
  for (int i = 0; i < 1000 && status != 200; ++i) {
    auto probe =
        Fetch("127.0.0.1", server.port(), "GET", "/healthz", "", 1000);
    if (probe.ok()) status = probe.value().status;
    if (status != 200) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_EQ(status, 200);

  server.Stop();  // must not touch destroyed shards (tsan covers this)
}

TEST(EpollLoopbackTest, DispatchCounterTracksHandledRequests) {
  EpollLoopback fixture;
  const uint64_t dispatched_before = NetDispatch()->value();
  ASSERT_EQ(fixture.Get("/healthz").value().status, 200);
  ASSERT_EQ(fixture.Get("/nope").value().status, 404);
  EXPECT_GE(NetDispatch()->value(), dispatched_before + 2);
}

}  // namespace
}  // namespace net
}  // namespace prox
