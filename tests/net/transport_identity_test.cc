/// Transport byte-identity: the blocking and epoll transports must be
/// indistinguishable on the wire. Each transport gets a fresh engine
/// built from the same deterministically generated dataset, receives the
/// same request sequence in the same order, and every response —
/// status, headers, body — must match byte for byte, modulo the
/// per-request x-prox-trace-id (random by design). Run across all three
/// dataset families (MovieLens, Wikipedia, DDP), so family-specific
/// response shapes (group schemas, valuation classes) are covered.
///
/// Also the wire-level half of the torture suite: warmed idempotent
/// requests are sent whole, one byte at a time, and at seeded random
/// split points against BOTH transports, asserting byte-identical
/// responses regardless of how the request bytes were framed.
/// Carries the `tsan` CTest label (tests/CMakeLists.txt).

#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/ddp.h"
#include "datasets/movielens.h"
#include "datasets/wikipedia.h"
#include "engine/engine.h"
#include "net/epoll_server.h"
#include "serve/client.h"
#include "serve/router.h"
#include "serve/server.h"

namespace prox {
namespace net {
namespace {

using serve::ClientConnection;
using serve::ClientResponse;

constexpr char kSummarizeBody[] = "{\"w_dist\":0.7,\"max_steps\":5}";

enum class Transport { kBlocking, kEpoll };

const char* Name(Transport transport) {
  return transport == Transport::kBlocking ? "blocking" : "epoll";
}

Dataset MakeDataset(const std::string& family) {
  if (family == "movielens") {
    MovieLensConfig config;
    config.num_users = 12;
    config.num_movies = 5;
    config.seed = 7;
    return MovieLensGenerator::Generate(config);
  }
  if (family == "wikipedia") {
    WikipediaConfig config;
    config.num_users = 10;
    config.num_pages = 6;
    config.seed = 11;
    return WikipediaGenerator::Generate(config);
  }
  DdpConfig config;
  config.num_executions = 6;
  config.seed = 13;
  return DdpGenerator::Generate(config);
}

/// A fresh engine + router behind the chosen transport. Fresh per
/// transport so cache hit/miss sequences (X-Prox-Cache) line up exactly.
class TransportFixture {
 public:
  TransportFixture(Transport transport, const std::string& family)
      : engine_(engine::Engine::FromDataset(MakeDataset(family),
                                            EngineOptions())),
        router_(engine_.get()) {
    auto handler = [this](const serve::HttpRequest& request) {
      return router_.Handle(request);
    };
    if (transport == Transport::kEpoll) {
      EpollServer::Options options;
      options.port = 0;
      options.shards = 2;
      epoll_ = std::make_unique<EpollServer>(options, handler);
      Status status = epoll_->Start();
      EXPECT_TRUE(status.ok()) << status.ToString();
      port_ = epoll_->port();
    } else {
      serve::HttpServer::Options options;
      options.port = 0;
      blocking_ = std::make_unique<serve::HttpServer>(options, handler);
      Status status = blocking_->Start();
      EXPECT_TRUE(status.ok()) << status.ToString();
      port_ = blocking_->port();
    }
  }

  int port() const { return port_; }

 private:
  static engine::Engine::Options EngineOptions() {
    engine::Engine::Options options;
    options.cache.max_bytes = 4 * 1024 * 1024;
    return options;
  }

  std::unique_ptr<engine::Engine> engine_;
  serve::Router router_;
  std::unique_ptr<serve::HttpServer> blocking_;
  std::unique_ptr<EpollServer> epoll_;
  int port_ = 0;
};

struct Exchange {
  std::string method;
  std::string target;
  std::string body;
  /// /metrics bodies read the process-global registry, which both
  /// transports mutate — identity there is status + content type only.
  bool identical_body = true;
};

/// Every route, success and failure paths, with cache misses and hits at
/// fixed positions in the sequence.
std::vector<Exchange> Sequence() {
  return {
      {"GET", "/healthz", ""},
      {"POST", "/v1/summarize", kSummarizeBody},        // miss
      {"POST", "/v1/summarize", kSummarizeBody},        // hit, same bytes
      {"GET", "/v1/summary/groups", ""},
      {"POST", "/v1/select", "{\"all\":true}"},
      {"POST", "/v1/summarize", kSummarizeBody},        // new selection: miss
      {"POST", "/v1/evaluate",
       "{\"assignment\":{\"false_attributes\":[{\"attribute\":\"Gender\","
       "\"value\":\"M\"}]}}"},
      {"POST", "/v1/ingest", "{\"sequence\":99}"},      // typed error, stable
      {"GET", "/v1/debug/requests", ""},                // disabled → error
      {"GET", "/nope", ""},
      {"GET", "/v1/summarize", ""},                     // 405
      {"POST", "/v1/summarize", "{nope"},               // 400
      {"GET", "/metrics", "", /*identical_body=*/false},
  };
}

/// The response as compared: trace ids are random per request, so their
/// value is masked; everything else must match byte for byte.
std::string Normalize(const ClientResponse& response, bool with_body) {
  std::string out = "status=" + std::to_string(response.status) + "\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": ";
    if (name == "x-prox-trace-id") {
      out += "<trace>";
    } else if (!with_body && name == "content-length") {
      // Excluded bodies (/metrics) differ in size too — the global
      // registry grows as both transports serve the same sequence.
      out += "<len>";
    } else {
      out += value;
    }
    out += "\n";
  }
  if (with_body) out += "\n" + response.body;
  return out;
}

std::vector<std::string> RunSequence(int port) {
  std::vector<std::string> normalized;
  for (const Exchange& exchange : Sequence()) {
    auto response = serve::Fetch("127.0.0.1", port, exchange.method,
                                 exchange.target, exchange.body,
                                 /*timeout_ms=*/30000);
    EXPECT_TRUE(response.ok())
        << exchange.target << ": " << response.status().ToString();
    if (!response.ok()) {
      normalized.push_back("<transport failure>");
      continue;
    }
    std::string entry = Normalize(response.value(), exchange.identical_body);
    if (!exchange.identical_body) {
      // Still require success and the Prometheus content type.
      EXPECT_EQ(response.value().status, 200) << exchange.target;
    }
    normalized.push_back(std::move(entry));
  }
  return normalized;
}

class TransportIdentityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(TransportIdentityTest, AllRoutesByteIdenticalAcrossTransports) {
  const std::string family = GetParam();
  TransportFixture blocking(Transport::kBlocking, family);
  TransportFixture epoll(Transport::kEpoll, family);

  std::vector<std::string> blocking_wire = RunSequence(blocking.port());
  std::vector<std::string> epoll_wire = RunSequence(epoll.port());

  ASSERT_EQ(blocking_wire.size(), epoll_wire.size());
  const std::vector<Exchange> sequence = Sequence();
  for (size_t i = 0; i < blocking_wire.size(); ++i) {
    EXPECT_EQ(blocking_wire[i], epoll_wire[i])
        << "exchange " << i << " (" << sequence[i].method << " "
        << sequence[i].target << ") diverged between transports";
  }
}

/// Wire-level torture: after warming, each idempotent request is sent
/// whole, then one byte at a time, then at 25 seeded random splits; all
/// feedings must produce byte-identical responses on both transports.
TEST_P(TransportIdentityTest, SplitFedRequestsAnswerIdenticallyOnTheWire) {
  const std::string family = GetParam();
  for (Transport transport : {Transport::kBlocking, Transport::kEpoll}) {
    SCOPED_TRACE(Name(transport));
    TransportFixture fixture(transport, family);
    // Warm: selection + summary exist, so every request below is a pure
    // read (summarize replays as cache hits).
    ASSERT_EQ(serve::Fetch("127.0.0.1", fixture.port(), "POST",
                           "/v1/summarize", kSummarizeBody, 30000)
                  .value()
                  .status,
              200);

    const std::vector<std::pair<std::string, std::string>> targets = {
        {"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n", "/healthz"},
        {"POST /v1/summarize HTTP/1.1\r\nHost: t\r\n"
         "Content-Type: application/json\r\nContent-Length: " +
             std::to_string(sizeof(kSummarizeBody) - 1) + "\r\n\r\n" +
             kSummarizeBody,
         "/v1/summarize"},
        {"GET /v1/summary/groups HTTP/1.1\r\nHost: t\r\n\r\n", "/groups"},
        {"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n", "/nope"},
    };

    std::mt19937_64 rng(20260807);
    for (const auto& [raw, label] : targets) {
      SCOPED_TRACE(label);
      std::string reference;
      // Feeding 0 = whole buffer, 1 = one byte per send, 2.. = random
      // split points.
      for (int feeding = 0; feeding < 27; ++feeding) {
        auto connection =
            ClientConnection::Connect("127.0.0.1", fixture.port(), 30000);
        ASSERT_TRUE(connection.ok()) << connection.status().ToString();
        ClientConnection client = std::move(connection).value();
        if (feeding == 0) {
          ASSERT_TRUE(client.SendRaw(raw).ok());
        } else if (feeding == 1) {
          for (char byte : raw) {
            ASSERT_TRUE(client.SendRaw(std::string_view(&byte, 1)).ok());
          }
        } else {
          size_t offset = 0;
          std::uniform_int_distribution<size_t> chunk_size(1, 13);
          while (offset < raw.size()) {
            size_t take = std::min(raw.size() - offset, chunk_size(rng));
            ASSERT_TRUE(
                client.SendRaw(std::string_view(raw).substr(offset, take))
                    .ok());
            offset += take;
          }
        }
        auto response = client.ReadResponse();
        ASSERT_TRUE(response.ok())
            << "feeding " << feeding << ": " << response.status().ToString();
        std::string normalized = Normalize(response.value(), true);
        if (feeding == 0) {
          reference = std::move(normalized);
        } else {
          ASSERT_EQ(normalized, reference) << "feeding " << feeding;
        }
        client.Close();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, TransportIdentityTest,
                         ::testing::Values("movielens", "wikipedia", "ddp"));

}  // namespace
}  // namespace net
}  // namespace prox
