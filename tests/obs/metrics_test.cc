#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace prox {
namespace obs {
namespace {

// Each TEST runs in its own registry (a local MetricsRegistry) so the
// process-wide Default() stays untouched by these unit tests.

TEST(CounterTest, IncrementsAndDefaults) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("prox_test_events_total", "help");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
}

TEST(CounterTest, SameNameSamePointer) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("prox_test_events_total", "help");
  Counter* b = registry.GetCounter("prox_test_events_total", "help");
  EXPECT_EQ(a, b);
}

TEST(CounterTest, LabelsKeySeparateSeries) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Counter* a =
      registry.GetCounter("prox_test_events_total", "help", "kind=\"a\"");
  Counter* b =
      registry.GetCounter("prox_test_events_total", "help", "kind=\"b\"");
  EXPECT_NE(a, b);
  a->Increment(3);
  b->Increment(5);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("prox_test_events_total", "kind=\"a\""), 3.0);
  EXPECT_EQ(snap.CounterValue("prox_test_events_total", "kind=\"b\""), 5.0);
}

TEST(CounterTest, TypeConflictReturnsDetachedFallback) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
#ifndef NDEBUG
  GTEST_SKIP() << "type conflicts assert() in debug builds";
#else
  MetricsRegistry registry;
  registry.GetGauge("prox_test_mixed", "help");
  // Asking for the same (name, labels) as a different type must not crash
  // and must not corrupt the registered gauge.
  Counter* fallback = registry.GetCounter("prox_test_mixed", "help");
  ASSERT_NE(fallback, nullptr);
  fallback->Increment();
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_NE(snap.FindGauge("prox_test_mixed"), nullptr);
  EXPECT_EQ(snap.FindCounter("prox_test_mixed"), nullptr);
#endif
}

TEST(GaugeTest, SetAndAdd) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("prox_test_size", "help");
  g->Set(10.0);
  g->Add(-2.5);
  EXPECT_DOUBLE_EQ(g->value(), 7.5);
  g->Set(1.0);
  EXPECT_DOUBLE_EQ(g->value(), 1.0);
}

TEST(HistogramTest, LeInclusiveBucketBoundaries) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Histogram* h =
      registry.GetHistogram("prox_test_hist", "help", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // <= 1
  h->Observe(1.0);    // le is inclusive: lands in the 1.0 bucket
  h->Observe(1.001);  // first bucket above: 10
  h->Observe(10.0);   // inclusive again
  h->Observe(99.0);
  h->Observe(1000.0);  // above every bound: +Inf
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSample* s = snap.FindHistogram("prox_test_hist");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->bucket_counts.size(), 4u);  // 3 bounds + +Inf
  EXPECT_EQ(s->bucket_counts[0], 2u);      // 0.5, 1.0
  EXPECT_EQ(s->bucket_counts[1], 2u);      // 1.001, 10.0
  EXPECT_EQ(s->bucket_counts[2], 1u);      // 99.0
  EXPECT_EQ(s->bucket_counts[3], 1u);      // 1000.0
  EXPECT_EQ(s->count, 6u);
  EXPECT_DOUBLE_EQ(s->sum, 0.5 + 1.0 + 1.001 + 10.0 + 99.0 + 1000.0);
}

TEST(HistogramTest, UnsortedBoundsAreSortedAndDeduped) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("prox_test_hist", "help",
                                       {100.0, 1.0, 10.0, 1.0});
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 10.0, 100.0}));
}

TEST(HistogramTest, ConcurrentObservationsSumExactly) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("prox_test_events_total", "help");
  Histogram* h = registry.GetHistogram("prox_test_hist", "help", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(1.0);  // all land in +Inf
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h->sum(), 1.0 * kThreads * kPerThread);
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSample* s = snap.FindHistogram("prox_test_hist");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->bucket_counts.back(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ResetValuesKeepsPointersValid) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("prox_test_events_total", "help");
  Gauge* g = registry.GetGauge("prox_test_size", "help");
  Histogram* h = registry.GetHistogram("prox_test_hist", "help", {1.0});
  c->Increment(7);
  g->Set(3.0);
  h->Observe(0.5);
  registry.ResetValues();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.0);
  c->Increment();  // the same pointer still records
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotFindersReturnNullForUnknown) {
  MetricsRegistry registry;
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("prox_no_such_metric"), nullptr);
  EXPECT_EQ(snap.FindGauge("prox_no_such_metric"), nullptr);
  EXPECT_EQ(snap.FindHistogram("prox_no_such_metric"), nullptr);
  EXPECT_EQ(snap.CounterValue("prox_no_such_metric"), 0.0);
  EXPECT_EQ(snap.HistogramSum("prox_no_such_metric"), 0.0);
  EXPECT_EQ(snap.HistogramCount("prox_no_such_metric"), 0u);
}

TEST(MetricsRegistryTest, RuntimeKillSwitchStopsRecording) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("prox_test_events_total", "help");
  Gauge* g = registry.GetGauge("prox_test_size", "help");
  Histogram* h = registry.GetHistogram("prox_test_hist", "help", {1.0});
  SetEnabled(false);
  c->Increment();
  g->Set(5.0);
  h->Observe(0.5);
  SetEnabled(true);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0u);
}

TEST(MetricsRegistryTest, DefaultIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace obs
}  // namespace prox
