/// Unit tests for obs::RequestContext: W3C traceparent parsing edges, id
/// minting, and the thread-local RequestScope span-collection contract.

#include "obs/request_context.h"

#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prox {
namespace obs {
namespace {

constexpr char kValidTraceparent[] =
    "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01";

TEST(ParseTraceparentTest, WellFormedHeaderParses) {
  TraceId id;
  uint64_t parent = 0;
  bool sampled = false;
  ASSERT_TRUE(ParseTraceparent(kValidTraceparent, &id, &parent, &sampled));
  EXPECT_EQ(id.hi, 0x0123456789abcdefULL);
  EXPECT_EQ(id.lo, 0x0123456789abcdefULL);
  EXPECT_EQ(parent, 0x00f067aa0ba902b7ULL);
  EXPECT_TRUE(sampled);
  EXPECT_EQ(id.ToHex(), "0123456789abcdef0123456789abcdef");
}

TEST(ParseTraceparentTest, FlagsBitZeroIsTheSamplingDecision) {
  TraceId id;
  uint64_t parent = 0;
  bool sampled = true;
  ASSERT_TRUE(ParseTraceparent(
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-00", &id, &parent,
      &sampled));
  EXPECT_FALSE(sampled);
  // Bit 0 of 0x03 is set: sampled even though other bits are too.
  ASSERT_TRUE(ParseTraceparent(
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-03", &id, &parent,
      &sampled));
  EXPECT_TRUE(sampled);
}

TEST(ParseTraceparentTest, MalformedHeadersAreRejected) {
  TraceId id;
  uint64_t parent = 0;
  bool sampled = false;
  const char* malformed[] = {
      "",
      "00",
      // too short by one
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-0",
      // wrong separators
      "00_0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
      "00-0123456789abcdef0123456789abcdef_00f067aa0ba902b7-01",
      // upper-case hex (the spec mandates lower-case)
      "00-0123456789ABCDEF0123456789abcdef-00f067aa0ba902b7-01",
      // non-hex bytes
      "00-0123456789abcdeg0123456789abcdef-00f067aa0ba902b7-01",
      // all-zero trace id / parent id are reserved
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
      "00-0123456789abcdef0123456789abcdef-0000000000000000-01",
      // version ff is reserved
      "ff-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01",
      // version 00 must be exactly 55 chars
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01-extra",
  };
  for (const char* header : malformed) {
    EXPECT_FALSE(ParseTraceparent(header, &id, &parent, &sampled))
        << "accepted: " << header;
  }
}

TEST(ParseTraceparentTest, FutureVersionsParseByTheirPrefix) {
  TraceId id;
  uint64_t parent = 0;
  bool sampled = false;
  // A future version may append '-'-separated fields after the flags.
  EXPECT_TRUE(ParseTraceparent(
      "cc-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01-what-ever",
      &id, &parent, &sampled));
  EXPECT_EQ(id.hi, 0x0123456789abcdefULL);
  // ...but extra bytes without the separator are malformed.
  EXPECT_FALSE(ParseTraceparent(
      "cc-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01extra", &id,
      &parent, &sampled));
}

TEST(ParseTraceparentTest, FormatRoundTrips) {
  TraceId id;
  id.hi = 0xdeadbeefcafef00dULL;
  id.lo = 0x0123456789abcdefULL;
  std::string header = FormatTraceparent(id, 0x00f067aa0ba902b7ULL, true);
  EXPECT_EQ(header,
            "00-deadbeefcafef00d0123456789abcdef-00f067aa0ba902b7-01");
  TraceId parsed;
  uint64_t parent = 0;
  bool sampled = false;
  ASSERT_TRUE(ParseTraceparent(header, &parsed, &parent, &sampled));
  EXPECT_EQ(parsed, id);
  EXPECT_EQ(parent, 0x00f067aa0ba902b7ULL);
  EXPECT_TRUE(sampled);
  EXPECT_EQ(FormatTraceparent(id, 1, false).substr(53), "00");
}

TEST(MintTraceIdTest, MintedIdsAreUniqueAndNonZero) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    TraceId id = MintTraceId();
    EXPECT_FALSE(id.IsZero());
    EXPECT_TRUE(seen.insert(id.ToHex()).second);
  }
}

TEST(RequestContextTest, FromTraceparentHonorsWellFormedHeaders) {
  RequestContext context = RequestContext::FromTraceparent(kValidTraceparent);
  EXPECT_TRUE(context.propagated());
  EXPECT_EQ(context.trace_id().ToHex(),
            "0123456789abcdef0123456789abcdef");
  EXPECT_EQ(context.parent_span_id(), 0x00f067aa0ba902b7ULL);
  EXPECT_TRUE(context.sampled());
}

TEST(RequestContextTest, EmptyOrMalformedHeadersMintFreshSampledIds) {
  RequestContext from_empty = RequestContext::FromTraceparent("");
  EXPECT_FALSE(from_empty.propagated());
  EXPECT_FALSE(from_empty.trace_id().IsZero());
  EXPECT_TRUE(from_empty.sampled());

  RequestContext from_garbage = RequestContext::FromTraceparent("not-a-header");
  EXPECT_FALSE(from_garbage.propagated());
  EXPECT_FALSE(from_garbage.trace_id().IsZero());
  EXPECT_NE(from_garbage.trace_id(), from_empty.trace_id());
}

TEST(RequestScopeTest, SpansClosedInScopeAreStampedAndCollected) {
  SetEnabled(true);
  RequestContext context;
  ASSERT_EQ(CurrentRequestContext(), nullptr);
  {
    RequestScope scope(&context);
    ASSERT_EQ(CurrentRequestContext(), &context);
    TraceSpan outer("test.outer");
    { TraceSpan inner("test.inner"); }
    outer.Close();
  }
  EXPECT_EQ(CurrentRequestContext(), nullptr);
  ASSERT_EQ(context.spans().size(), 2u);  // inner closes first
  EXPECT_STREQ(context.spans()[0].name, "test.inner");
  EXPECT_STREQ(context.spans()[1].name, "test.outer");
  for (const SpanRecord& span : context.spans()) {
    EXPECT_EQ(span.trace_hi, context.trace_id().hi);
    EXPECT_EQ(span.trace_lo, context.trace_id().lo);
  }
}

TEST(RequestScopeTest, NestedScopesRestoreThePreviousContext) {
  RequestContext outer_context;
  RequestContext inner_context;
  RequestScope outer(&outer_context);
  {
    RequestScope inner(&inner_context);
    EXPECT_EQ(CurrentRequestContext(), &inner_context);
  }
  EXPECT_EQ(CurrentRequestContext(), &outer_context);
}

TEST(RequestContextTest, CollectionIsBoundedAndCountsDrops) {
  RequestContext context;
  SpanRecord span;
  span.name = "test.flood";
  for (size_t i = 0; i < RequestContext::kMaxSpans + 7; ++i) {
    context.CollectSpan(span);
  }
  EXPECT_EQ(context.spans().size(), RequestContext::kMaxSpans);
  EXPECT_EQ(context.spans_dropped(), 7u);
  std::vector<SpanRecord> taken = context.TakeSpans();
  EXPECT_EQ(taken.size(), RequestContext::kMaxSpans);
}

TEST(RequestContextTest, UnsampledContextsCollectNothing) {
  // flags 00: the caller decided against sampling; honor it.
  RequestContext context = RequestContext::FromTraceparent(
      "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-00");
  ASSERT_FALSE(context.sampled());
  SpanRecord span;
  context.CollectSpan(span);
  EXPECT_TRUE(context.spans().empty());
  EXPECT_EQ(context.spans_dropped(), 0u);
}

TEST(RequestScopeTest, DisabledRecordingCollectsNothing) {
  SetEnabled(false);
  RequestContext context;
  {
    RequestScope scope(&context);
    TraceSpan span("test.disabled");
  }
  SetEnabled(true);
  EXPECT_TRUE(context.spans().empty());
}

}  // namespace
}  // namespace obs
}  // namespace prox
