/// Unit tests for obs::FlightRecorder: keep-the-slowest eviction and the
/// FIFO error ring.

#include "obs/flight_recorder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace prox {
namespace obs {
namespace {

RequestRecord MakeRecord(int64_t latency_nanos, int status = 200,
                         const std::string& path = "/v1/summarize") {
  RequestRecord record;
  record.trace_id = "0123456789abcdef0123456789abcdef";
  record.method = "POST";
  record.path = path;
  record.status = status;
  record.latency_nanos = latency_nanos;
  return record;
}

std::vector<int64_t> Latencies(const std::vector<RequestRecord>& records) {
  std::vector<int64_t> out;
  for (const RequestRecord& record : records) {
    out.push_back(record.latency_nanos);
  }
  return out;
}

TEST(FlightRecorderTest, KeepsTheSlowestRequestsInOrder) {
  FlightRecorder::Options options;
  options.slowest_capacity = 3;
  FlightRecorder recorder(options);

  for (int64_t latency : {10, 30, 20, 5, 40}) {
    recorder.Record(MakeRecord(latency));
  }
  // 5 never entered (slower requests already filled the set); 10 was
  // evicted when 40 arrived.
  EXPECT_EQ(Latencies(recorder.SlowestSnapshot()),
            (std::vector<int64_t>{40, 30, 20}));
  EXPECT_EQ(recorder.recorded_total(), 5u);
}

TEST(FlightRecorderTest, TiesDoNotEvictAnExistingRecord) {
  FlightRecorder::Options options;
  options.slowest_capacity = 2;
  FlightRecorder recorder(options);
  RequestRecord first = MakeRecord(20, 200, "/first");
  RequestRecord second = MakeRecord(10, 200, "/second");
  RequestRecord tied = MakeRecord(10, 200, "/tied");
  recorder.Record(first);
  recorder.Record(second);
  recorder.Record(tied);  // equal to the fastest retained: skipped
  std::vector<RequestRecord> slowest = recorder.SlowestSnapshot();
  ASSERT_EQ(slowest.size(), 2u);
  EXPECT_EQ(slowest[1].path, "/second");
}

TEST(FlightRecorderTest, ErrorRingIsFifoAndOldestFirst) {
  FlightRecorder::Options options;
  options.error_capacity = 2;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1, 400, "/a"));
  recorder.Record(MakeRecord(1, 500, "/b"));
  recorder.Record(MakeRecord(1, 404, "/c"));  // evicts /a
  std::vector<RequestRecord> errors = recorder.ErrorsSnapshot();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].path, "/b");
  EXPECT_EQ(errors[1].path, "/c");
}

TEST(FlightRecorderTest, ErrorsAreRetainedRegardlessOfLatency) {
  FlightRecorder::Options options;
  options.slowest_capacity = 1;
  FlightRecorder recorder(options);
  recorder.Record(MakeRecord(1000, 200));
  recorder.Record(MakeRecord(1, 500, "/fast-failure"));
  // Too fast for the slowest set, but errors always land in the ring.
  ASSERT_EQ(recorder.SlowestSnapshot().size(), 1u);
  EXPECT_EQ(recorder.SlowestSnapshot()[0].status, 200);
  ASSERT_EQ(recorder.ErrorsSnapshot().size(), 1u);
  EXPECT_EQ(recorder.ErrorsSnapshot()[0].path, "/fast-failure");
}

TEST(FlightRecorderTest, SuccessesBelowTheErrorThresholdStayOut) {
  FlightRecorder recorder;
  recorder.Record(MakeRecord(1, 200));
  recorder.Record(MakeRecord(1, 399));
  EXPECT_TRUE(recorder.ErrorsSnapshot().empty());
  recorder.Record(MakeRecord(1, 400));
  EXPECT_EQ(recorder.ErrorsSnapshot().size(), 1u);
}

TEST(FlightRecorderTest, ClearResetsEverything) {
  FlightRecorder recorder;
  recorder.Record(MakeRecord(10, 200));
  recorder.Record(MakeRecord(20, 500));
  EXPECT_EQ(recorder.recorded_total(), 2u);
  recorder.Clear();
  EXPECT_TRUE(recorder.SlowestSnapshot().empty());
  EXPECT_TRUE(recorder.ErrorsSnapshot().empty());
  EXPECT_EQ(recorder.recorded_total(), 0u);
}

TEST(FlightRecorderTest, SpanTreesRideAlongWithTheRecord) {
  FlightRecorder recorder;
  RequestRecord record = MakeRecord(77);
  SpanRecord span;
  span.name = "serve.request";
  record.spans.push_back(span);
  record.spans_dropped = 3;
  recorder.Record(std::move(record));
  std::vector<RequestRecord> slowest = recorder.SlowestSnapshot();
  ASSERT_EQ(slowest.size(), 1u);
  ASSERT_EQ(slowest[0].spans.size(), 1u);
  EXPECT_STREQ(slowest[0].spans[0].name, "serve.request");
  EXPECT_EQ(slowest[0].spans_dropped, 3u);
}

}  // namespace
}  // namespace obs
}  // namespace prox
