#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace prox {
namespace obs {
namespace {

/// Collects every span it receives, in completion order.
class VectorSink : public TraceSink {
 public:
  void OnSpanEnd(const SpanRecord& span) override { spans.push_back(span); }
  std::vector<SpanRecord> spans;
};

TEST(TraceSpanTest, RecordsNameAndDuration) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  VectorSink sink;
  {
    TraceSpan span("test.outer", &sink);
  }
  ASSERT_EQ(sink.spans.size(), 1u);
  EXPECT_STREQ(sink.spans[0].name, "test.outer");
  EXPECT_GE(sink.spans[0].duration_nanos, 0);
  EXPECT_GT(sink.spans[0].id, 0u);
}

TEST(TraceSpanTest, NestingAssignsParentAndDepth) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  VectorSink sink;
  {
    TraceSpan outer("test.outer", &sink);
    {
      TraceSpan inner("test.inner", &sink);
      { TraceSpan leaf("test.leaf", &sink); }
    }
    { TraceSpan sibling("test.sibling", &sink); }
  }
  // Completion order: leaf, inner, sibling, outer.
  ASSERT_EQ(sink.spans.size(), 4u);
  const SpanRecord& leaf = sink.spans[0];
  const SpanRecord& inner = sink.spans[1];
  const SpanRecord& sibling = sink.spans[2];
  const SpanRecord& outer = sink.spans[3];
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(leaf.parent_id, inner.id);
  EXPECT_EQ(sibling.parent_id, outer.id);
  EXPECT_EQ(inner.depth, outer.depth + 1);
  EXPECT_EQ(leaf.depth, inner.depth + 1);
  EXPECT_EQ(sibling.depth, inner.depth);
}

TEST(TraceSpanTest, CloseIsIdempotentAndReturnsDuration) {
  VectorSink sink;
  TraceSpan span("test.once", &sink);
  int64_t first = span.Close();
  int64_t second = span.Close();
  EXPECT_EQ(first, second);
  EXPECT_EQ(span.ElapsedNanos(), first);
  if (Enabled()) {
    EXPECT_EQ(sink.spans.size(), 1u);  // destructor must not re-record
  }
}

TEST(TraceSpanTest, CancelUnwindsTheStackWithoutRecording) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  VectorSink sink;
  {
    TraceSpan outer("test.outer", &sink);
    {
      TraceSpan abandoned("test.abandoned", &sink);
      abandoned.Cancel();
      EXPECT_GE(abandoned.ElapsedNanos(), 0);
      // A sibling opened after the cancel must parent to `outer`, not to
      // the cancelled span.
      { TraceSpan sibling("test.sibling", &sink); }
    }
  }
  ASSERT_EQ(sink.spans.size(), 2u);
  EXPECT_STREQ(sink.spans[0].name, "test.sibling");
  EXPECT_STREQ(sink.spans[1].name, "test.outer");
  EXPECT_EQ(sink.spans[0].parent_id, sink.spans[1].id);
  EXPECT_EQ(sink.spans[0].depth, sink.spans[1].depth + 1);
}

TEST(TraceSpanTest, MeasuresTimeEvenWhenDisabled) {
  VectorSink sink;
  SetEnabled(false);
  TraceSpan span("test.disabled", &sink);
  int64_t duration = span.Close();
  SetEnabled(true);
  // Nothing recorded, but the caller still gets a real measurement —
  // StepRecord/SummaryOutcome timings work with observability off.
  EXPECT_TRUE(sink.spans.empty());
  EXPECT_GE(duration, 0);
}

TEST(TraceBufferTest, RingBoundEvictsOldestAndCountsDrops) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    SpanRecord span;
    span.id = static_cast<uint64_t>(i + 1);
    span.name = "test.ring";
    buffer.OnSpanEnd(span);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total_recorded(), 10u);
  EXPECT_EQ(buffer.dropped(), 6u);
  std::vector<SpanRecord> spans = buffer.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first snapshot of the newest four records.
  EXPECT_EQ(spans.front().id, 7u);
  EXPECT_EQ(spans.back().id, 10u);
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(TraceBufferTest, DefaultSinkCanBeSwappedAndRestored) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  VectorSink sink;
  SetDefaultTraceSink(&sink);
  { TraceSpan span("test.swapped"); }
  SetDefaultTraceSink(nullptr);  // restore TraceBuffer::Default()
  ASSERT_EQ(sink.spans.size(), 1u);
  EXPECT_STREQ(sink.spans[0].name, "test.swapped");
  { TraceSpan span("test.default"); }
  EXPECT_EQ(sink.spans.size(), 1u);  // no longer routed to the local sink
}

TEST(TraceTest, NowIsMonotonic) {
  int64_t a = TraceNowNanos();
  int64_t b = TraceNowNanos();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace obs
}  // namespace prox
