#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "summarize/summarizer.h"
#include "summarize/val_func.h"
#include "summarize/valuation_class.h"
#include "testing/fixtures.h"

namespace prox {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::SpanRecord;
using obs::TraceBuffer;
using testing_fixtures::MovieFixture;

/// Routes spans into a test-local buffer for the test's lifetime.
class ScopedTraceCapture {
 public:
  ScopedTraceCapture() { obs::SetDefaultTraceSink(&buffer_); }
  ~ScopedTraceCapture() { obs::SetDefaultTraceSink(nullptr); }
  std::vector<SpanRecord> Spans() const { return buffer_.Snapshot(); }

 private:
  TraceBuffer buffer_;
};

std::vector<SpanRecord> SpansNamed(const std::vector<SpanRecord>& spans,
                                   const char* name) {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : spans) {
    if (std::string_view(s.name) == name) out.push_back(s);
  }
  return out;
}

struct Harness {
  MovieFixture fx;
  std::vector<Valuation> valuations;
  EuclideanValFunc vf;
  std::unique_ptr<EnumeratedDistance> oracle;

  Harness() {
    CancelSingleAnnotation cls(std::vector<DomainId>{fx.user_domain});
    valuations = cls.Generate(*fx.p0, fx.ctx);
    oracle = std::make_unique<EnumeratedDistance>(fx.p0.get(), &fx.registry,
                                                  &vf, valuations);
  }

  Result<SummaryOutcome> Run(SummarizerOptions options) {
    Summarizer s(fx.p0.get(), &fx.registry, &fx.ctx, &fx.constraints,
                 oracle.get(), &valuations, options);
    return s.Run();
  }
};

TEST(InstrumentationTest, RunIncrementsRegistryCounters) {
  if (!obs::Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  Harness h;
  SummarizerOptions options;
  options.max_steps = 3;
  options.group_equivalent_first = false;
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  auto outcome = h.Run(options);
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  ASSERT_TRUE(outcome.ok());
  const SummaryOutcome& o = outcome.value();
  EXPECT_EQ(after.CounterValue("prox_summarize_runs_total") -
                before.CounterValue("prox_summarize_runs_total"),
            1.0);
  EXPECT_EQ(after.CounterValue("prox_summarize_steps_total") -
                before.CounterValue("prox_summarize_steps_total"),
            static_cast<double>(o.steps.size()));
  double scored = 0.0;
  for (const StepRecord& s : o.steps) scored += s.num_candidates;
  EXPECT_EQ(after.CounterValue("prox_summarize_candidates_scored_total") -
                before.CounterValue("prox_summarize_candidates_scored_total"),
            scored);
  // Every candidate evaluation consults the enumerated oracle (plus one
  // distance probe per committed step and one for the initial distance).
  EXPECT_GE(after.CounterValue("prox_distance_enumerated_calls_total") -
                before.CounterValue("prox_distance_enumerated_calls_total"),
            scored);
}

TEST(InstrumentationTest, SpanDurationsAreTheStepRecordTimings) {
  if (!obs::Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  ScopedTraceCapture capture;
  Harness h;
  SummarizerOptions options;
  options.max_steps = 3;
  options.group_equivalent_first = false;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  const SummaryOutcome& o = outcome.value();
  const std::vector<SpanRecord> spans = capture.Spans();

  const auto steps = SpansNamed(spans, "summarize.step");
  ASSERT_EQ(steps.size(), o.steps.size());
  for (size_t i = 0; i < steps.size(); ++i) {
    // Not "within 1%": StepRecord timings are views over the spans, so
    // the two numbers are literally the same measurement.
    EXPECT_DOUBLE_EQ(o.steps[i].step_nanos,
                     static_cast<double>(steps[i].duration_nanos));
  }

  const auto runs = SpansNamed(spans, "summarize.run");
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_DOUBLE_EQ(o.total_nanos,
                   static_cast<double>(runs[0].duration_nanos));
  // Steps nest under the run.
  for (const SpanRecord& s : steps) {
    EXPECT_EQ(s.parent_id, runs[0].id);
    EXPECT_EQ(s.depth, runs[0].depth + 1);
  }

  const auto evals = SpansNamed(spans, "summarize.candidate_eval");
  ASSERT_EQ(evals.size(), o.steps.size());
  for (size_t i = 0; i < evals.size(); ++i) {
    EXPECT_EQ(evals[i].parent_id, steps[i].id);
    EXPECT_DOUBLE_EQ(
        o.steps[i].candidate_eval_nanos,
        static_cast<double>(evals[i].duration_nanos) /
            o.steps[i].num_candidates);
  }
}

TEST(InstrumentationTest, IncrementalHitsAndFallbacksAreCounted) {
  if (!obs::Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  Harness h;
  // A movie-domain rule makes group-key merge candidates appear; the
  // incremental scorer cannot price those (CanScore), so they fall back
  // to the general oracle path and must be counted.
  h.fx.constraints.SetRule(h.fx.movie_domain,
                           std::make_unique<AnyMergeRule>("movies"));
  SummarizerOptions options;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  options.incremental = SummarizerOptions::Incremental::kEuclidean;
  const MetricsSnapshot before = MetricsRegistry::Default().Snapshot();
  auto outcome = h.Run(options);
  const MetricsSnapshot after = MetricsRegistry::Default().Snapshot();
  ASSERT_TRUE(outcome.ok());
  const SummaryOutcome& o = outcome.value();
  EXPECT_GT(o.incremental_hits, 0);       // user merges price incrementally
  EXPECT_GT(o.incremental_fallbacks, 0);  // movie merges cannot
  EXPECT_EQ(after.CounterValue("prox_summarize_incremental_hits_total") -
                before.CounterValue("prox_summarize_incremental_hits_total"),
            static_cast<double>(o.incremental_hits));
  EXPECT_EQ(
      after.CounterValue("prox_summarize_incremental_fallbacks_total") -
          before.CounterValue("prox_summarize_incremental_fallbacks_total"),
      static_cast<double>(o.incremental_fallbacks));
}

TEST(InstrumentationTest, OutcomeCountsAreZeroWithoutIncremental) {
  Harness h;
  SummarizerOptions options;
  options.max_steps = 2;
  auto outcome = h.Run(options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().incremental_hits, 0);
  EXPECT_EQ(outcome.value().incremental_fallbacks, 0);
}

TEST(InstrumentationTest, TimingsSurviveDisabledObservability) {
  Harness h;
  SummarizerOptions options;
  options.max_steps = 1;
  options.group_equivalent_first = false;
  obs::SetEnabled(false);
  auto outcome = h.Run(options);
  obs::SetEnabled(true);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().steps.size(), 1u);
  // Spans still measure when recording is off.
  EXPECT_GT(outcome.value().steps[0].step_nanos, 0.0);
  EXPECT_GT(outcome.value().total_nanos, 0.0);
}

}  // namespace
}  // namespace prox
