#include "obs/export.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace prox {
namespace obs {
namespace {

/// A registry with one metric of each kind and deterministic values.
MetricsRegistry* GoldenRegistry() {
  auto* registry = new MetricsRegistry();
  Counter* plain = registry->GetCounter("prox_test_events_total",
                                        "Events observed.");
  Counter* labeled = registry->GetCounter(
      "prox_test_errors_total", "Errors by code.", "code=\"NotFound\"");
  Gauge* gauge = registry->GetGauge("prox_test_size", "Current size.");
  Histogram* hist = registry->GetHistogram(
      "prox_test_latency_nanos", "Latency.", {1000.0, 1000000.0});
  plain->Increment(3);
  labeled->Increment();
  gauge->Set(6.5);
  hist->Observe(500.0);      // le 1000
  hist->Observe(2000.0);     // le 1000000
  hist->Observe(5000000.0);  // +Inf
  return registry;
}

TEST(ExportTest, PrometheusGolden) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  const std::string expected =
      "# HELP prox_test_events_total Events observed.\n"
      "# TYPE prox_test_events_total counter\n"
      "prox_test_events_total 3\n"
      "# HELP prox_test_errors_total Errors by code.\n"
      "# TYPE prox_test_errors_total counter\n"
      "prox_test_errors_total{code=\"NotFound\"} 1\n"
      "# HELP prox_test_size Current size.\n"
      "# TYPE prox_test_size gauge\n"
      "prox_test_size 6.5\n"
      "# HELP prox_test_latency_nanos Latency.\n"
      "# TYPE prox_test_latency_nanos histogram\n"
      "prox_test_latency_nanos_bucket{le=\"1000\"} 1\n"
      "prox_test_latency_nanos_bucket{le=\"1000000\"} 2\n"
      "prox_test_latency_nanos_bucket{le=\"+Inf\"} 3\n"
      "prox_test_latency_nanos_sum 5002500\n"
      "prox_test_latency_nanos_count 3\n";
  EXPECT_EQ(RenderPrometheus(registry->Snapshot()), expected);
}

TEST(ExportTest, MetricsJsonGolden) {
  if (!Enabled()) GTEST_SKIP() << "prox::obs compiled out";
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  const std::string expected =
      "{\n"
      "  \"counters\": [\n"
      "    {\"name\": \"prox_test_events_total\", \"labels\": \"\", "
      "\"value\": 3},\n"
      "    {\"name\": \"prox_test_errors_total\", \"labels\": "
      "\"code=\\\"NotFound\\\"\", \"value\": 1}\n"
      "  ],\n"
      "  \"gauges\": [\n"
      "    {\"name\": \"prox_test_size\", \"labels\": \"\", \"value\": 6.5}\n"
      "  ],\n"
      "  \"histograms\": [\n"
      "    {\"name\": \"prox_test_latency_nanos\", \"labels\": \"\", "
      "\"buckets\": [{\"le\": 1000, \"count\": 1}, {\"le\": 1000000, "
      "\"count\": 1}, {\"le\": \"+Inf\", \"count\": 1}], \"count\": 3, "
      "\"sum\": 5002500}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(RenderMetricsJson(registry->Snapshot()), expected);
}

TEST(ExportTest, EmptySnapshotsRenderValidDocuments) {
  MetricsRegistry registry;
  EXPECT_EQ(RenderPrometheus(registry.Snapshot()), "");
  EXPECT_EQ(RenderMetricsJson(registry.Snapshot()),
            "{\n  \"counters\": [],\n  \"gauges\": [],\n"
            "  \"histograms\": []\n}\n");
  EXPECT_EQ(RenderTraceJson({}),
            "{\n  \"clock\": \"steady_nanos_since_trace_epoch\",\n"
            "  \"spans\": []\n}\n");
}

TEST(ExportTest, TraceJsonGolden) {
  SpanRecord root;
  root.id = 1;
  root.parent_id = 0;
  root.depth = 0;
  root.name = "summarize.run";
  root.start_nanos = 100;
  root.duration_nanos = 900;
  SpanRecord child;
  child.id = 2;
  child.parent_id = 1;
  child.depth = 1;
  child.name = "summarize.step";
  child.start_nanos = 150;
  child.duration_nanos = 300;
  const std::string expected =
      "{\n"
      "  \"clock\": \"steady_nanos_since_trace_epoch\",\n"
      "  \"spans\": [\n"
      "    {\"id\": 2, \"parent\": 1, \"depth\": 1, \"name\": "
      "\"summarize.step\", \"start_nanos\": 150, \"duration_nanos\": 300},\n"
      "    {\"id\": 1, \"parent\": 0, \"depth\": 0, \"name\": "
      "\"summarize.run\", \"start_nanos\": 100, \"duration_nanos\": 900}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(RenderTraceJson({child, root}), expected);
}

}  // namespace
}  // namespace obs
}  // namespace prox
