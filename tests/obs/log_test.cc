/// Unit tests for obs::Logger and the access log: line schema, level
/// filtering, and the per-event warn/error rate limiter.

#include "obs/log.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/metrics.h"

namespace prox {
namespace obs {
namespace {

std::vector<std::string> SortedKeys(const JsonValue& doc) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : doc.members()) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Installs a VectorLogSink for the test's lifetime.
class SinkInstaller {
 public:
  SinkInstaller() { Logger::Default().SetSink(&sink_); }
  ~SinkInstaller() {
    Logger::Default().SetSink(nullptr);
    Logger::Default().SetMinLevel(LogLevel::kInfo);
  }
  VectorLogSink& sink() { return sink_; }

 private:
  VectorLogSink sink_;
};

TEST(AccessLogTest, SchemaKeysAreSortedAndMatchTheRenderedLine) {
  const std::vector<std::string>& schema = AccessLogSchemaKeys();
  ASSERT_TRUE(std::is_sorted(schema.begin(), schema.end()));

  AccessLogRecord record;
  record.method = "POST";
  record.path = "/v1/summarize";
  record.status = 200;
  record.bytes = 4092;
  record.latency_us = 74354;
  record.trace_id = "0123456789abcdef0123456789abcdef";
  record.cache = "miss";
  record.shed = false;
  std::string line = RenderAccessLogLine(record, 1754000000000);

  Result<JsonValue> doc = ParseJson(line);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(SortedKeys(doc.value()), schema);
  EXPECT_EQ(doc.value().Find("event")->string_value(), "access");
  EXPECT_EQ(doc.value().Find("trace_id")->string_value(), record.trace_id);
  EXPECT_EQ(doc.value().Find("status")->int_value(), 200);
}

TEST(AccessLogTest, RenderedLineIsByteStable) {
  AccessLogRecord record;
  record.method = "GET";
  record.path = "/healthz";
  record.status = 200;
  record.bytes = 57;
  record.latency_us = 8;
  record.trace_id = "00000000000000000000000000000001";
  record.cache = "";
  record.shed = false;
  EXPECT_EQ(RenderAccessLogLine(record, 42),
            "{\"ts_unix_ms\":42,\"level\":\"info\",\"event\":\"access\","
            "\"method\":\"GET\",\"path\":\"/healthz\",\"status\":200,"
            "\"bytes\":57,\"latency_us\":8,"
            "\"trace_id\":\"00000000000000000000000000000001\","
            "\"cache\":\"\",\"shed\":false}");
}

TEST(AccessLogTest, DisabledByDefaultAndGatedOnObs) {
  AccessLogRecord record;
  record.status = 503;
  record.shed = true;
  EXPECT_FALSE(AccessLogEnabled());
  WriteAccessLog(record);  // no sink: must be a silent no-op

  VectorLogSink sink;
  SetAccessLogSink(&sink);
  EXPECT_TRUE(AccessLogEnabled());
  WriteAccessLog(record);
  ASSERT_EQ(sink.lines().size(), 1u);
  Result<JsonValue> doc = ParseJson(sink.lines()[0]);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(SortedKeys(doc.value()), AccessLogSchemaKeys());
  EXPECT_TRUE(doc.value().Find("shed")->bool_value());

  SetEnabled(false);
  EXPECT_FALSE(AccessLogEnabled());
  WriteAccessLog(record);
  SetEnabled(true);
  EXPECT_EQ(sink.lines().size(), 1u);  // nothing written while disabled
  SetAccessLogSink(nullptr);
}

TEST(LoggerTest, LinesBelowMinLevelAreDropped) {
  SinkInstaller installer;
  LogInfo("test.info");
  Logger::Default().Log(LogLevel::kDebug, "test.debug");
  ASSERT_EQ(installer.sink().lines().size(), 1u);
  EXPECT_NE(installer.sink().lines()[0].find("\"event\":\"test.info\""),
            std::string::npos);

  Logger::Default().SetMinLevel(LogLevel::kError);
  LogWarn("test.warn");
  EXPECT_EQ(installer.sink().lines().size(), 1u);
  LogError("test.error");
  EXPECT_EQ(installer.sink().lines().size(), 2u);
}

TEST(LoggerTest, StandardPrefixAndFieldsAppearInOrder) {
  SinkInstaller installer;
  JsonValue fields = JsonValue::Object();
  fields.Set("port", JsonValue::Int(8080));
  LogInfo("test.fields", fields);
  ASSERT_EQ(installer.sink().lines().size(), 1u);
  Result<JsonValue> doc = ParseJson(installer.sink().lines()[0]);
  ASSERT_TRUE(doc.ok());
  const auto& members = doc.value().members();
  ASSERT_GE(members.size(), 4u);
  EXPECT_EQ(members[0].first, "ts_unix_ms");
  EXPECT_EQ(members[1].first, "level");
  EXPECT_EQ(members[2].first, "event");
  EXPECT_EQ(members[3].first, "port");
  EXPECT_EQ(members[3].second.int_value(), 8080);
}

TEST(LoggerTest, WarnLinesAreRateLimitedPerEvent) {
  SinkInstaller installer;
  const int emitted = Logger::kRateLimitBurst * 3;
  for (int i = 0; i < emitted; ++i) LogWarn("test.flood");
  const size_t flood_lines = installer.sink().lines().size();
  // The burst passes; the rest is suppressed (the refill over this
  // sub-millisecond loop admits at most one extra line).
  EXPECT_GE(flood_lines, static_cast<size_t>(Logger::kRateLimitBurst));
  EXPECT_LE(flood_lines, static_cast<size_t>(Logger::kRateLimitBurst) + 1);

  // A different event has its own bucket and is not affected.
  LogWarn("test.other");
  EXPECT_EQ(installer.sink().lines().size(), flood_lines + 1);

  // Info lines are never rate-limited.
  installer.sink().Clear();
  for (int i = 0; i < emitted; ++i) LogInfo("test.info_flood");
  EXPECT_EQ(installer.sink().lines().size(), static_cast<size_t>(emitted));
}

}  // namespace
}  // namespace obs
}  // namespace prox
