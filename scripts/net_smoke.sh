#!/usr/bin/env bash
# Smoke test for the prox::net scale-out path (docs/NET.md), end to end
# through the shipped binaries:
#
#   1. prox_cli --save-snapshot writes one PROXSNAP file; three
#      prox_server replicas boot from it on --transport=epoll;
#   2. prox_router fronts them: 30 distinct summarize bodies fan out to
#      >= 2 replicas (X-Prox-Replica), and a repeated body lands on the
#      SAME replica as a byte-identical cache hit (the affinity
#      contract);
#   3. one replica is kill -9'd; a burst of idempotent GETs stays free
#      of 5xx — the router retries the dead replica's keys once on the
#      ring successor (prox_net_balancer_retry_total >= 1) and its
#      /healthz reports the replica unhealthy;
#   4. SIGINT drains the router and the surviving replicas to exit 0.
#
# Usage: scripts/net_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build}
cli_bin="$build_dir/examples/prox_cli"
server_bin="$build_dir/examples/prox_server"
router_bin="$build_dir/examples/prox_router"

for bin in "$cli_bin" "$server_bin" "$router_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "net_smoke: $bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

tmpdir=$(mktemp -d)
replica_pids=()
router_pid=
cleanup() {
  [[ -n "$router_pid" ]] && kill -9 "$router_pid" 2>/dev/null
  for pid in "${replica_pids[@]:-}"; do
    [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null
  done
  rm -rf "$tmpdir"
}
trap cleanup EXIT

fail() {
  echo "net_smoke: FAIL: $*" >&2
  for log in "$tmpdir"/*.log; do
    echo "--- $log ---" >&2
    cat "$log" >&2
  done
  exit 1
}

# Waits for a server's listen line and echoes the bound port.
wait_port() {
  local log=$1 pid=$2 port=
  for _ in $(seq 1 200); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$log")
    [[ -n "$port" ]] && break
    kill -0 "$pid" 2>/dev/null || return 1
    sleep 0.05
  done
  [[ -n "$port" ]] && echo "$port"
}

# --- 1. shared snapshot + 3 epoll replicas ---------------------------------
snap="$tmpdir/dataset.snap"
"$cli_bin" --save-snapshot="$snap" >/dev/null || fail "save-snapshot failed"

replica_ports=()
for i in 0 1 2; do
  "$server_bin" --port=0 --transport=epoll --snapshot="$snap" --threads=2 \
    --cache-mb=16 >"$tmpdir/replica$i.log" 2>&1 &
  replica_pids[$i]=$!
  port=$(wait_port "$tmpdir/replica$i.log" "${replica_pids[$i]}") \
    || fail "replica $i never listened"
  replica_ports[$i]=$port
done
echo "net_smoke: replicas up on ${replica_ports[*]}"

# --- 2. router + consistent-hash fan-out -----------------------------------
# Probe interval 5s: longer than the whole test, so every health
# transition below is passive detection.
"$router_bin" --port=0 \
  --replica=127.0.0.1:${replica_ports[0]} \
  --replica=127.0.0.1:${replica_ports[1]} \
  --replica=127.0.0.1:${replica_ports[2]} \
  --health-interval-ms=5000 >"$tmpdir/router.log" 2>&1 &
router_pid=$!
router_port=$(wait_port "$tmpdir/router.log" "$router_pid") \
  || fail "router never listened"
base="http://127.0.0.1:$router_port"
echo "net_smoke: router up on port $router_port"

declare -A replicas_seen
first_body='{"w_dist":0.2,"max_steps":4}'
first_replica=
for i in $(seq 1 30); do
  body="{\"w_dist\":0.$((i % 9 + 1)),\"max_steps\":$((3 + i % 8))}"
  code=$(curl -s -D "$tmpdir/h$i" -o "$tmpdir/b$i" -w '%{http_code}' \
           -X POST -d "$body" "$base/v1/summarize")
  [[ "$code" == 200 ]] || fail "summarize $i returned $code"
  grep -qi '^x-prox-cache: miss' "$tmpdir/h$i" || fail "summarize $i not a miss"
  replica=$(grep -i '^x-prox-replica:' "$tmpdir/h$i" | tr -d '\r' \
            | awk '{print $2}')
  [[ -n "$replica" ]] || fail "summarize $i carries no X-Prox-Replica"
  replicas_seen[$replica]=1
  [[ "$body" == "$first_body" ]] && first_replica=$replica
done
[[ ${#replicas_seen[@]} -ge 2 ]] \
  || fail "30 distinct bodies all landed on one replica"
echo "net_smoke: fan-out over ${#replicas_seen[@]} replicas"

# Affinity: the repeated body must land on the same replica, now warm,
# with byte-identical bytes.
code=$(curl -s -D "$tmpdir/repeat.h" -o "$tmpdir/repeat.json" \
         -w '%{http_code}' -X POST -d "$first_body" "$base/v1/summarize")
[[ "$code" == 200 ]] || fail "repeated summarize returned $code"
grep -qi '^x-prox-cache: hit' "$tmpdir/repeat.h" || fail "repeat not a hit"
repeat_replica=$(grep -i '^x-prox-replica:' "$tmpdir/repeat.h" | tr -d '\r' \
                 | awk '{print $2}')
[[ "$repeat_replica" == "$first_replica" ]] \
  || fail "repeat went to $repeat_replica, first went to $first_replica"
cmp -s "$tmpdir/b1" "$tmpdir/repeat.json" \
  || fail "cached repeat bytes differ from the cold body"

# --- 3. kill one replica => graceful degradation ---------------------------
dead_port=${first_replica##*:}
dead_index=
for i in 0 1 2; do
  [[ "${replica_ports[$i]}" == "$dead_port" ]] && dead_index=$i
done
[[ -n "$dead_index" ]] || fail "could not map $first_replica to a pid"
kill -9 "${replica_pids[$dead_index]}"
wait "${replica_pids[$dead_index]}" 2>/dev/null || true
replica_pids[$dead_index]=
echo "net_smoke: killed replica $dead_index (127.0.0.1:$dead_port)"

# Idempotent GET burst: distinct targets spread over the whole ring, so
# some land on the dead replica's range. Every answer must be an HTTP
# answer (200 for the real route, 404 for probe targets) — never a 5xx:
# the router replays the dead replica's keys once on the ring successor.
for i in $(seq 1 20); do
  target="/v1/summary/groups"
  [[ $i -gt 1 ]] && target="/v1/summary/groups?probe=$i"
  code=$(curl -s -o /dev/null -w '%{http_code}' "$base$target")
  [[ "$code" == 200 || "$code" == 404 ]] \
    || fail "GET $target returned $code after replica kill"
done

curl -s "$base/metrics" >"$tmpdir/router_metrics.txt"
retries=$(sed -n 's/^prox_net_balancer_retry_total \([0-9]*\)$/\1/p' \
          "$tmpdir/router_metrics.txt")
[[ -n "$retries" && "$retries" -ge 1 ]] \
  || fail "no retries recorded (prox_net_balancer_retry_total=$retries)"

curl -s "$base/healthz" >"$tmpdir/router_health.json"
grep -q '"healthy":false' "$tmpdir/router_health.json" \
  || fail "router /healthz never marked the dead replica unhealthy"
echo "net_smoke: burst survived the kill (retries=$retries, zero 5xx)"

# --- 4. graceful drain ------------------------------------------------------
kill -INT "$router_pid"
router_exit=0
wait "$router_pid" || router_exit=$?
[[ $router_exit -eq 0 ]] || fail "router exited $router_exit after SIGINT"
grep -q "drained" "$tmpdir/router.log" || fail "router never logged the drain"
router_pid=

for i in 0 1 2; do
  pid=${replica_pids[$i]}
  [[ -z "$pid" ]] && continue
  kill -INT "$pid"
  replica_exit=0
  wait "$pid" || replica_exit=$?
  [[ $replica_exit -eq 0 ]] || fail "replica $i exited $replica_exit"
  grep -q "drained" "$tmpdir/replica$i.log" \
    || fail "replica $i never logged the drain"
  replica_pids[$i]=
done

echo "net_smoke: OK (snapshot fan-out, affinity hit, kill survived, drains)"
