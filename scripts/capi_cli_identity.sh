#!/usr/bin/env bash
# C-ABI byte identity (docs/EMBEDDING.md): the pure-C11 embedding demo
# (examples/prox_embed.c, linked against libprox_c only) and the C++ CLI
# (examples/prox_cli.cpp, driving prox::engine::Engine directly) must
# produce byte-identical summarize response bodies over the same dataset
# spec and knobs — on all three dataset families. Both clients bottom out
# in the same facade, so any drift means the ABI re-encodes something it
# should pass through.
#
# Usage: scripts/capi_cli_identity.sh <build-dir>
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:?usage: capi_cli_identity.sh <build-dir>}
cli="$build_dir/examples/prox_cli"
embed="$build_dir/examples/prox_embed"

for binary in "$cli" "$embed"; do
  if [[ ! -x "$binary" ]]; then
    echo "capi_cli_identity: missing binary $binary (build examples first)" >&2
    exit 1
  fi
done

wdist=0.7
steps=8
workdir=$(mktemp -d /tmp/prox_capi_identity.XXXXXX)
trap 'rm -rf "$workdir"' EXIT

for family in movielens wikipedia ddp; do
  echo "capi_cli_identity: family=$family wdist=$wdist steps=$steps"

  # The C++ CLI: scripted session, canonical JSON body on the prompt line.
  printf 'selectall\nsummarize %s %s\nquit\n' "$wdist" "$steps" \
    | "$cli" --json --dataset="$family" --threads=1 \
    | sed -n 's/^prox> {/{/p' > "$workdir/cli_$family.json"

  # The pure-C embedder: same spec and knobs through the flat ABI.
  "$embed" --family="$family" --wdist="$wdist" --steps="$steps" --json \
    > "$workdir/capi_$family.json"

  if [[ ! -s "$workdir/cli_$family.json" ]]; then
    echo "capi_cli_identity: FAIL no JSON body from prox_cli ($family)" >&2
    exit 1
  fi
  if ! cmp -s "$workdir/cli_$family.json" "$workdir/capi_$family.json"; then
    echo "capi_cli_identity: FAIL bodies differ on $family" >&2
    diff "$workdir/cli_$family.json" "$workdir/capi_$family.json" >&2 || true
    exit 1
  fi
  echo "capi_cli_identity: $family OK ($(wc -c < "$workdir/cli_$family.json") bytes, byte-identical)"
done

echo "capi_cli_identity: all families byte-identical"
