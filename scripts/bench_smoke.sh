#!/usr/bin/env bash
# Smoke-gate for the parallel engine: the serial path (threads = 1) must
# stay free. Runs bench_core_micro's distance benches at PROX_THREADS=1
# and PROX_THREADS=$(nproc), stores/updates a serial baseline, and fails
# when any serial bench regresses more than 5% against that baseline.
#
# Usage: scripts/bench_smoke.sh [build-dir]
#   BENCH_SMOKE_BASELINE   baseline JSON path
#                          (default: <build-dir>/bench_smoke_baseline.json)
#   BENCH_SMOKE_UPDATE=1   overwrite the baseline with this run and exit 0
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build}
bench_bin="$build_dir/bench/bench_core_micro"
baseline=${BENCH_SMOKE_BASELINE:-$build_dir/bench_smoke_baseline.json}
filter='Distance'
threshold_pct=5

if [[ ! -x "$bench_bin" ]]; then
  echo "bench_smoke: $bench_bin not built (cmake --build $build_dir)" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

max_threads=$(nproc)
echo "bench_smoke: serial run (PROX_THREADS=1)"
PROX_THREADS=1 "$bench_bin" \
  --benchmark_filter="$filter" \
  --benchmark_min_time=0.05 \
  --benchmark_format=json >"$tmpdir/serial.json"

echo "bench_smoke: parallel run (PROX_THREADS=$max_threads)"
PROX_THREADS=$max_threads "$bench_bin" \
  --benchmark_filter="$filter" \
  --benchmark_min_time=0.05 \
  --benchmark_format=json >"$tmpdir/parallel.json"

# Informational: serial vs parallel per bench (speedup < 1 is expected on
# single-core machines — oversubscription has overhead, not parallelism).
jq -r -n \
  --slurpfile s "$tmpdir/serial.json" \
  --slurpfile p "$tmpdir/parallel.json" \
  --arg mt "$max_threads" '
  ($s[0].benchmarks | map({(.name): .cpu_time}) | add) as $serial |
  $p[0].benchmarks[] |
  "  \(.name): serial \($serial[.name] | floor)ns, " +
  "threads=\($mt) \(.cpu_time | floor)ns " +
  "(speedup \(($serial[.name] / .cpu_time * 100 | floor) / 100)x)"' \
  || true

if [[ ! -f "$baseline" || "${BENCH_SMOKE_UPDATE:-0}" == "1" ]]; then
  cp "$tmpdir/serial.json" "$baseline"
  echo "bench_smoke: wrote serial baseline to $baseline"
  exit 0
fi

# Gate: each serial bench within threshold of its baseline cpu_time.
failures=$(jq -r -n \
  --slurpfile base "$baseline" \
  --slurpfile now "$tmpdir/serial.json" \
  --argjson pct "$threshold_pct" '
  ($base[0].benchmarks | map({(.name): .cpu_time}) | add) as $b |
  $now[0].benchmarks[] |
  select($b[.name] != null) |
  select(.cpu_time > $b[.name] * (1 + $pct / 100)) |
  "  \(.name): \(.cpu_time | floor)ns vs baseline " +
  "\($b[.name] | floor)ns " +
  "(+\((.cpu_time / $b[.name] - 1) * 100 | floor)%)"')

if [[ -n "$failures" ]]; then
  echo "bench_smoke: serial (threads=1) regressions over ${threshold_pct}%:" >&2
  echo "$failures" >&2
  echo "bench_smoke: rerun with BENCH_SMOKE_UPDATE=1 to accept" >&2
  exit 1
fi

echo "bench_smoke: serial path within ${threshold_pct}% of baseline"
