#!/usr/bin/env bash
# Configure a dedicated ThreadSanitizer build (-DPROX_SANITIZE=thread) and
# run every CTest carrying the `tsan` label — the exec pool suite, the
# end-to-end determinism suite, the serve loopback suite (many worker
# threads against one session + cache), the ingest loopback suite
# (concurrent POST /v1/ingest writers vs summarize readers over one
# session, docs/INGEST.md), the legacy-vs-IR golden byte-identity suite
# (worker-overlay Apply at threads {1,8}), the batch-kernel golden
# suite (thread-local valuation blocks + call_once base packing on exec
# workers, docs/KERNELS.md), and the epoll transport loopback suite
# (event-loop shards + handler pool + blocking/epoll byte-identity,
# docs/NET.md) — under TSan.
#
# Usage: scripts/tsan_exec_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build-tsan}

cmake -B "$build_dir" -S . \
  -DPROX_SANITIZE=thread \
  -DPROX_BUILD_BENCHMARKS=OFF \
  -DPROX_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" --target prox_exec_test prox_serve_loopback_test \
  prox_ingest_loopback_test prox_ir_golden_test prox_kernels_golden_test \
  prox_net_loopback_test -j
ctest --test-dir "$build_dir" -L tsan --output-on-failure
