#!/usr/bin/env bash
# Smoke test for the prox::store snapshot subsystem (docs/STORE.md), end
# to end through the shipped binaries:
#
#   1. prox_cli --save-snapshot writes a PROXSNAP file;
#   2. a bit-flipped copy must be REJECTED with a typed store error that
#      names the damaged section (fail closed, exit non-zero);
#   3. the pristine file boots prox_cli byte-identically to the generator;
#   4. prox_server --snapshot --cache-persist drains a warm cache to disk
#      on SIGINT, and a restarted server answers its FIRST summarize from
#      that cache (X-Prox-Cache: hit) with the same bytes.
#
# Usage: scripts/store_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build}
cli_bin="$build_dir/examples/prox_cli"
server_bin="$build_dir/examples/prox_server"

for bin in "$cli_bin" "$server_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "store_smoke: $bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

tmpdir=$(mktemp -d)
server_pid=
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null
  rm -rf "$tmpdir"
}
trap cleanup EXIT

fail() {
  echo "store_smoke: FAIL: $*" >&2
  exit 1
}

snap="$tmpdir/dataset.snap"

# --- 1. save ---------------------------------------------------------------
"$cli_bin" --save-snapshot="$snap" >/dev/null || fail "save-snapshot exited $?"
[[ -s "$snap" ]] || fail "snapshot file is empty"
head -c 8 "$snap" | grep -q 'PROXSNAP' || fail "snapshot lacks PROXSNAP magic"

# --- 2. corrupt => typed rejection ----------------------------------------
cp "$snap" "$tmpdir/corrupt.snap"
size=$(stat -c %s "$tmpdir/corrupt.snap")
# Flip one bit inside the first section's payload (sections start right
# after the 64-byte header; zero padding between sections is intentionally
# not sealed, so a mid-file offset could land on a don't-care byte).
mid=72
[[ "$size" -gt $((mid + 1)) ]] || fail "snapshot too small"
orig=$(dd if="$tmpdir/corrupt.snap" bs=1 skip="$mid" count=1 2>/dev/null \
       | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $((orig ^ 0x10)))" \
  | dd of="$tmpdir/corrupt.snap" bs=1 seek="$mid" conv=notrunc 2>/dev/null

load_exit=0
printf 'quit\n' | "$cli_bin" --load-snapshot="$tmpdir/corrupt.snap" \
  >"$tmpdir/corrupt.out" 2>&1 || load_exit=$?
[[ $load_exit -ne 0 ]] || fail "corrupt snapshot was accepted"
grep -q 'store error kChecksum \[' "$tmpdir/corrupt.out" \
  || fail "rejection is not a typed checksum error naming a section:
$(cat "$tmpdir/corrupt.out")"
echo "store_smoke: corrupt snapshot rejected:" \
     "$(grep -o 'store error[^"]*' "$tmpdir/corrupt.out" | head -1)"

# --- 3. pristine file loads byte-identically -------------------------------
script='selectall
summarize 0.7 5
quit
'
echo "$script" | "$cli_bin" --json >"$tmpdir/generated.out" \
  || fail "generator CLI run failed"
echo "$script" | "$cli_bin" --json --load-snapshot="$snap" \
  >"$tmpdir/loaded.out" || fail "snapshot CLI run failed"
# Compare the summarize JSON lines (prompts and banners differ by design).
sed -n 's/^prox> {/{/p' "$tmpdir/generated.out" >"$tmpdir/generated.json"
sed -n 's/^prox> {/{/p' "$tmpdir/loaded.out" >"$tmpdir/loaded.json"
[[ -s "$tmpdir/generated.json" ]] || fail "generator run produced no JSON"
cmp -s "$tmpdir/generated.json" "$tmpdir/loaded.json" \
  || fail "snapshot summarize differs from generator summarize"

# --- 4. warm restart through prox_server -----------------------------------
start_server() {
  "$server_bin" --port=0 --threads=2 "$@" >"$tmpdir/server.log" 2>&1 &
  server_pid=$!
  port=
  for _ in $(seq 1 200); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
             "$tmpdir/server.log")
    [[ -n "$port" ]] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server died during startup:
$(cat "$tmpdir/server.log")"
    sleep 0.05
  done
  [[ -n "$port" ]] || fail "server never printed its listen line"
}

req='{"w_dist":0.7,"max_steps":5}'
persisted="$tmpdir/persisted.snap"

start_server --snapshot="$snap" --cache-persist="$persisted"
code=$(curl -s -D "$tmpdir/first.h" -o "$tmpdir/first.json" \
         -w '%{http_code}' -X POST -d "$req" \
         "http://127.0.0.1:$port/v1/summarize")
[[ "$code" == 200 ]] || fail "summarize on snapshot boot returned $code"
grep -qi '^x-prox-cache: miss' "$tmpdir/first.h" \
  || fail "first-process summarize was not a miss"
kill -INT "$server_pid"
wait "$server_pid" || fail "server exited non-zero after SIGINT"
server_pid=
[[ -s "$persisted" ]] || fail "server did not persist a snapshot on drain"

start_server --snapshot="$persisted"
code=$(curl -s -D "$tmpdir/warm.h" -o "$tmpdir/warm.json" \
         -w '%{http_code}' -X POST -d "$req" \
         "http://127.0.0.1:$port/v1/summarize")
[[ "$code" == 200 ]] || fail "summarize on warm restart returned $code"
grep -qi '^x-prox-cache: hit' "$tmpdir/warm.h" \
  || fail "restarted server's FIRST summarize was not a cache hit"
cmp -s "$tmpdir/first.json" "$tmpdir/warm.json" \
  || fail "warm restart body differs from the original computation"
kill -INT "$server_pid"
wait "$server_pid" || fail "restarted server exited non-zero after SIGINT"
server_pid=

echo "store_smoke: OK (save, typed corrupt rejection, byte-identical" \
     "load, warm restart hit)"
