#!/usr/bin/env bash
# Access-log schema check (docs/OBSERVABILITY.md, "Access-log schema"):
# run the demo CLI with --log-json, feed every emitted access line back
# through `prox_cli --validate-access-log` (which compares each line's
# key set to obs::AccessLogSchemaKeys()), then cross-check the same key
# set against the documented schema table. Three sources of truth — the
# writer, the validator, the docs — must agree.
#
# Usage: scripts/check_log_schema.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build}
cli_bin="$build_dir/examples/prox_cli"

if [[ ! -x "$cli_bin" ]]; then
  echo "check_log_schema: $cli_bin not built (cmake --build $build_dir)" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

fail() {
  echo "check_log_schema: FAIL: $*" >&2
  exit 1
}

# 1. The demo emits JSON lines on stderr; keep only the access lines.
"$cli_bin" --demo --log-json >/dev/null 2>"$tmpdir/log.jsonl" \
  || fail "prox_cli --demo --log-json exited non-zero"
grep '"event":"access"' "$tmpdir/log.jsonl" >"$tmpdir/access.jsonl" \
  || fail "demo run emitted no access lines"

# 2. Writer vs validator: every line must carry exactly the schema keys.
"$cli_bin" --validate-access-log <"$tmpdir/access.jsonl" \
  || fail "access lines do not match obs::AccessLogSchemaKeys()"

# 3. Writer vs docs: the keys of an actual line must equal the keys
# documented in the "Access-log schema" table.
line_keys=$(head -1 "$tmpdir/access.jsonl" \
            | grep -oE '"[a-z_]+":' | tr -d '":' | sort -u)
doc_keys=$(sed -n '/^### Access-log schema/,/^#/p' docs/OBSERVABILITY.md \
           | grep -oE '^\| `[a-z_]+`' | tr -d '|` ' | sort -u)
[[ -n "$doc_keys" ]] || fail "no schema table found in docs/OBSERVABILITY.md"
if ! diff <(echo "$line_keys") <(echo "$doc_keys") >"$tmpdir/keys.diff"; then
  echo "check_log_schema: emitted keys and documented keys differ:" >&2
  cat "$tmpdir/keys.diff" >&2
  exit 1
fi

count=$(wc -l <"$tmpdir/access.jsonl")
echo "check_log_schema: OK ($count access lines, schema in sync with docs)"
