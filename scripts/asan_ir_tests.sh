#!/usr/bin/env bash
# Configure a dedicated AddressSanitizer build (-DPROX_SANITIZE=address)
# and run the prox::ir suites under ASan: the TermPool/expression unit
# tests (`ir` label) and the legacy-vs-IR golden byte-identity suite. The
# IR core hands out raw spans into a shared arena and resolves
# overlay-tagged 32-bit ids against two pools — exactly the kind of code
# where a stale view or a mis-tagged id turns into silent corruption;
# under ASan it turns into a report instead.
#
# Usage: scripts/asan_ir_tests.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build-asan}

cmake -B "$build_dir" -S . \
  -DPROX_SANITIZE=address \
  -DPROX_BUILD_BENCHMARKS=OFF \
  -DPROX_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" --target prox_ir_test prox_ir_golden_test -j
ctest --test-dir "$build_dir" -L ir --output-on-failure
ctest --test-dir "$build_dir" -R 'GoldenIdentityTest' --output-on-failure
