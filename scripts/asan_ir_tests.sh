#!/usr/bin/env bash
# Configure a dedicated AddressSanitizer build (-DPROX_SANITIZE=address)
# and run the prox::ir and prox::store suites under ASan: the
# TermPool/expression unit tests (`ir` label), the batch-kernel units
# (`ir` label too — the kernels walk borrowed monomial spans into the
# TermPool arena), the legacy-vs-IR and batch-kernel golden
# byte-identity suites, the snapshot container/corruption suites
# (`store` label), and the streaming ingest suites (`ingest` label —
# ApplyBatch appends into the interned TermPool arena and the warm-start
# maintainer replays borrowed mapping state, docs/INGEST.md), plus the
# engine facade and C-ABI suites (`engine` label — the flat boundary
# hands malloc'd strings across an allocator seam and must reject
# use-after-close without touching freed memory, docs/EMBEDDING.md).
# The IR core hands out raw spans into a shared arena
# and resolves overlay-tagged 32-bit ids against two pools; the store
# layer parses attacker-shaped bytes out of an mmap — exactly the kind of
# code where a stale view, a mis-tagged id, or a lying length turns into
# silent corruption; under ASan it turns into a report instead.
# Fail-closed must never mean fail-by-UB.
#
# Usage: scripts/asan_ir_tests.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build-asan}

cmake -B "$build_dir" -S . \
  -DPROX_SANITIZE=address \
  -DPROX_BUILD_BENCHMARKS=OFF \
  -DPROX_BUILD_EXAMPLES=OFF
cmake --build "$build_dir" \
  --target prox_ir_test prox_ir_golden_test prox_kernels_test \
  prox_kernels_golden_test prox_store_test prox_ingest_test \
  prox_engine_test prox_capi_test -j
ctest --test-dir "$build_dir" -L ir --output-on-failure
ctest --test-dir "$build_dir" -L store --output-on-failure
ctest --test-dir "$build_dir" -L ingest --output-on-failure
ctest --test-dir "$build_dir" -L engine --output-on-failure
ctest --test-dir "$build_dir" -R 'GoldenIdentityTest|GoldenKernelsTest' \
  --output-on-failure
