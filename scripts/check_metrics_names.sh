#!/usr/bin/env bash
# Lint: every metric name literal ("prox_...") used in the sources must be
# catalogued in docs/OBSERVABILITY.md, and every catalogued name must still
# exist in the sources. Run from the repo root (CTest does:
# `ctest -R check_metrics_names`).
set -u

cd "$(dirname "$0")/.."

catalogue=docs/OBSERVABILITY.md
if [[ ! -f "$catalogue" ]]; then
  echo "check_metrics_names: missing $catalogue" >&2
  exit 1
fi

# Metric name literals in the library (including the prox_serve_* family
# from src/serve), benches and examples. Quoted-string matching keeps
# CMake target names (prox_common, ...) out; test sources are excluded
# because they register throwaway prox_test_* metrics.
used=$(grep -rhoE '"prox_[a-z0-9_]+"' src bench examples \
         --include='*.cc' --include='*.h' --include='*.cpp' \
       | tr -d '"' | sort -u)

# Catalogued names: backticked prox_* words in the markdown tables.
documented=$(grep -ohE '`prox_[a-z0-9_]+`' "$catalogue" \
             | tr -d '`' | sort -u)

status=0

undocumented=$(comm -23 <(echo "$used") <(echo "$documented"))
if [[ -n "$undocumented" ]]; then
  echo "check_metrics_names: metric names used in the sources but not" \
       "catalogued in $catalogue:" >&2
  echo "$undocumented" | sed 's/^/  /' >&2
  status=1
fi

stale=$(comm -13 <(echo "$used") <(echo "$documented"))
if [[ -n "$stale" ]]; then
  echo "check_metrics_names: metric names catalogued in $catalogue but" \
       "absent from the sources:" >&2
  echo "$stale" | sed 's/^/  /' >&2
  status=1
fi

# Naming conventions over the catalogue tables: counters must end in
# `_total` (Prometheus convention), and no non-counter may claim the
# suffix. The table rows carry the authoritative kind column.
bad_counters=$(grep -E '^\| `prox_[a-z0-9_]+` \| counter \|' "$catalogue" \
               | grep -oE '`prox_[a-z0-9_]+`' | tr -d '`' \
               | grep -v '_total$' || true)
if [[ -n "$bad_counters" ]]; then
  echo "check_metrics_names: counters not ending in _total:" >&2
  echo "$bad_counters" | sed 's/^/  /' >&2
  status=1
fi

total_noncounters=$(grep -E '^\| `prox_[a-z0-9_]+_total` \| (gauge|histogram) \|' \
                      "$catalogue" | grep -oE '`prox_[a-z0-9_]+`' | tr -d '`' \
                    || true)
if [[ -n "$total_noncounters" ]]; then
  echo "check_metrics_names: non-counters ending in _total:" >&2
  echo "$total_noncounters" | sed 's/^/  /' >&2
  status=1
fi

if [[ $status -eq 0 ]]; then
  echo "check_metrics_names: $(echo "$used" | wc -l) metric names in sync"
fi
exit $status
