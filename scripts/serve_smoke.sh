#!/usr/bin/env bash
# Smoke test for prox_server (docs/SERVING.md): boot on an ephemeral
# port with the access log and debug endpoints on, exercise every
# endpoint with curl, check that a repeated summarize is served from the
# SummaryCache with byte-identical body, that every response carries an
# X-Prox-Trace-Id that also shows up in the access log and the flight
# recorder, then SIGINT and require a clean drain (exit 0).
#
# Usage: scripts/serve_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build}
server_bin="$build_dir/examples/prox_server"

if [[ ! -x "$server_bin" ]]; then
  echo "serve_smoke: $server_bin not built (cmake --build $build_dir)" >&2
  exit 1
fi

tmpdir=$(mktemp -d)
server_pid=
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null
  rm -rf "$tmpdir"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$tmpdir/server.log" >&2
  exit 1
}

"$server_bin" --port=0 --threads=2 --cache-mb=16 --max-inflight=16 \
  --access-log="$tmpdir/access.jsonl" --debug-endpoints \
  >"$tmpdir/server.log" 2>&1 &
server_pid=$!

# Wait for the listen line and pull the bound port out of it.
port=
for _ in $(seq 1 100); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
           "$tmpdir/server.log")
  [[ -n "$port" ]] && break
  kill -0 "$server_pid" 2>/dev/null || fail "server died during startup"
  sleep 0.05
done
[[ -n "$port" ]] || fail "server never printed its listen line"
base="http://127.0.0.1:$port"
echo "serve_smoke: server up on port $port (pid $server_pid)"

code=$(curl -s -o "$tmpdir/health.json" -w '%{http_code}' "$base/healthz")
[[ "$code" == 200 ]] || fail "/healthz returned $code"
grep -q '"status":"ok"' "$tmpdir/health.json" || fail "/healthz body odd"

req='{"w_dist":0.7,"max_steps":5}'
code=$(curl -s -D "$tmpdir/cold.h" -o "$tmpdir/cold.json" -w '%{http_code}' \
         -X POST -d "$req" "$base/v1/summarize")
[[ "$code" == 200 ]] || fail "cold summarize returned $code"
grep -qi '^x-prox-cache: miss' "$tmpdir/cold.h" || fail "cold was not a miss"

code=$(curl -s -D "$tmpdir/warm.h" -o "$tmpdir/warm.json" -w '%{http_code}' \
         -X POST -d "$req" "$base/v1/summarize")
[[ "$code" == 200 ]] || fail "cached summarize returned $code"
grep -qi '^x-prox-cache: hit' "$tmpdir/warm.h" || fail "repeat was not a hit"
cmp -s "$tmpdir/cold.json" "$tmpdir/warm.json" \
  || fail "cold and cached bodies differ"

code=$(curl -s -o "$tmpdir/groups.json" -w '%{http_code}' \
         "$base/v1/summary/groups")
[[ "$code" == 200 ]] || fail "/v1/summary/groups returned $code"

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
         -d '{"w_dist":-1}' "$base/v1/summarize")
[[ "$code" == 400 ]] || fail "invalid knobs returned $code, want 400"

curl -s "$base/metrics" >"$tmpdir/metrics.txt"
for name in prox_serve_requests_total prox_serve_cache_hit_total \
            prox_service_requests_total prox_serve_route_duration_nanos \
            prox_serve_route_latency_p99_nanos prox_build_info; do
  grep -q "$name" "$tmpdir/metrics.txt" || fail "metrics missing $name"
done

# Tracing: the cold summarize's trace id must be a 32-hex string and
# appear in both the response header and the access-log line for the
# request, and the flight recorder must have retained the request.
trace_id=$(grep -i '^x-prox-trace-id:' "$tmpdir/cold.h" \
           | tr -d '\r' | awk '{print $2}')
[[ "$trace_id" =~ ^[0-9a-f]{32}$ ]] \
  || fail "cold response trace id '$trace_id' is not 32 hex chars"
grep -q "\"trace_id\":\"$trace_id\"" "$tmpdir/access.jsonl" \
  || fail "trace id $trace_id not found in the access log"
grep -q '"event":"access"' "$tmpdir/access.jsonl" \
  || fail "access log has no access lines"

code=$(curl -s -o "$tmpdir/debug.json" -w '%{http_code}' \
         "$base/v1/debug/requests")
[[ "$code" == 200 ]] || fail "/v1/debug/requests returned $code"
grep -q "\"trace_id\":\"$trace_id\"" "$tmpdir/debug.json" \
  || fail "flight recorder did not retain trace $trace_id"
grep -q '"spans":' "$tmpdir/debug.json" \
  || fail "flight recorder entries carry no spans"

kill -INT "$server_pid"
server_exit=0
wait "$server_pid" || server_exit=$?
[[ $server_exit -eq 0 ]] || fail "server exited $server_exit after SIGINT"
grep -q "drained" "$tmpdir/server.log" || fail "server never logged the drain"
server_pid=

echo "serve_smoke: OK (cold=miss, repeat=hit, byte-identical, clean drain)"
