#!/usr/bin/env bash
# Smoke test for the prox::ingest streaming subsystem (docs/INGEST.md),
# end to end through the shipped binaries:
#
#   1. prox_cli --save-snapshot writes the dataset;
#   2. a server booted from that snapshot answers summarize miss-then-hit,
#      ingests a delta batch over POST /v1/ingest (the /healthz fingerprint
#      chains forward), and the SAME knobs then miss-then-hit again on the
#      grown data;
#   3. an in-call "resummarize" directive warm-starts the next summary
#      ("warm": true) and primes the cache (the next summarize is a hit);
#   4. replay byte-identity: a FRESH server that ingests the same delta
#      stream and a prox_cli --append-deltas offline replay produce
#      byte-identical summarize JSON.
#
# Usage: scripts/ingest_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-build}
cli_bin="$build_dir/examples/prox_cli"
server_bin="$build_dir/examples/prox_server"

for bin in "$cli_bin" "$server_bin"; do
  if [[ ! -x "$bin" ]]; then
    echo "ingest_smoke: $bin not built (cmake --build $build_dir)" >&2
    exit 1
  fi
done

tmpdir=$(mktemp -d)
server_pid=
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null
  rm -rf "$tmpdir"
}
trap cleanup EXIT

fail() {
  echo "ingest_smoke: FAIL: $*" >&2
  exit 1
}

snap="$tmpdir/dataset.snap"
"$cli_bin" --save-snapshot="$snap" >/dev/null || fail "save-snapshot exited $?"

# Self-contained delta stream: a new movie + year + users, so every factor
# resolves no matter what titles the generator minted. batch1 and batch2
# are the raw stream; the *_resum variants add the resummarize directive.
batch1='{"sequence":1,"ops":[{"op":"add_annotation","domain":"year","name":"Y2030","attrs":["2030s"]},{"op":"add_annotation","domain":"movie","name":"Smoke Movie (2030)","attrs":["Drama","2030"]},{"op":"add_annotation","domain":"user","name":"UIN_A","attrs":["F","25-34","artist","90210"]},{"op":"add_annotation","domain":"user","name":"UIN_B","attrs":["M","25-34","artist","90210"]},{"op":"add_term","factors":["UIN_A","Smoke Movie (2030)","Y2030"],"group":"Smoke Movie (2030)","value":4},{"op":"add_term","factors":["UIN_B","Smoke Movie (2030)","Y2030"],"group":"Smoke Movie (2030)","value":3}]}'
batch2='{"sequence":2,"ops":[{"op":"add_annotation","domain":"user","name":"UIN_C","attrs":["F","25-34","artist","90210"]},{"op":"add_term","factors":["UIN_C","Smoke Movie (2030)","Y2030"],"group":"Smoke Movie (2030)","value":5}]}'

printf '%s\n%s\n' "$batch1" "$batch2" >"$tmpdir/deltas_plain.jsonl"
resum_knobs='{"w_dist":0.5,"w_size":0.5,"max_steps":5}'
printf '%s\n%s\n' \
  "${batch1%\}},\"resummarize\":true}" \
  "${batch2%\}},\"resummarize\":$resum_knobs}" \
  >"$tmpdir/deltas_resum.jsonl"

req="$resum_knobs"

start_server() {
  "$server_bin" --port=0 --threads=2 "$@" >"$tmpdir/server.log" 2>&1 &
  server_pid=$!
  port=
  for _ in $(seq 1 200); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
             "$tmpdir/server.log")
    [[ -n "$port" ]] && break
    kill -0 "$server_pid" 2>/dev/null || fail "server died during startup:
$(cat "$tmpdir/server.log")"
    sleep 0.05
  done
  [[ -n "$port" ]] || fail "server never printed its listen line"
}

stop_server() {
  kill -INT "$server_pid"
  wait "$server_pid" || fail "server exited non-zero after SIGINT"
  server_pid=
}

post() {  # post <path> <body> <header-out> <body-out> -> status code
  curl -s -D "$3" -o "$4" -w '%{http_code}' -X POST -d "$2" \
    "http://127.0.0.1:$port$1"
}

fingerprint() {
  curl -s "http://127.0.0.1:$port/healthz" \
    | sed -n 's/.*"dataset_fingerprint": *"\([0-9a-f]*\)".*/\1/p'
}

# --- 2. miss → hit → ingest → miss → hit -----------------------------------
start_server --snapshot="$snap"
fp_before=$(fingerprint)
[[ -n "$fp_before" ]] || fail "healthz has no dataset fingerprint"

code=$(post /v1/summarize "$req" "$tmpdir/cold.h" "$tmpdir/cold.json")
[[ "$code" == 200 ]] || fail "cold summarize returned $code"
grep -qi '^x-prox-cache: miss' "$tmpdir/cold.h" \
  || fail "cold summarize was not a miss"
code=$(post /v1/summarize "$req" "$tmpdir/hit.h" "$tmpdir/hit.json")
[[ "$code" == 200 ]] || fail "warm summarize returned $code"
grep -qi '^x-prox-cache: hit' "$tmpdir/hit.h" \
  || fail "second summarize was not a hit"

code=$(post /v1/ingest "$batch1" "$tmpdir/ingest1.h" "$tmpdir/ingest1.json")
[[ "$code" == 200 ]] || fail "ingest returned $code:
$(cat "$tmpdir/ingest1.json")"
grep -q '"terms_added":2' "$tmpdir/ingest1.json" \
  || fail "receipt lacks terms_added=2: $(cat "$tmpdir/ingest1.json")"

fp_after=$(fingerprint)
[[ -n "$fp_after" && "$fp_after" != "$fp_before" ]] \
  || fail "fingerprint did not chain forward on ingest"

code=$(post /v1/summarize "$req" "$tmpdir/miss2.h" "$tmpdir/miss2.json")
[[ "$code" == 200 ]] || fail "post-ingest summarize returned $code"
grep -qi '^x-prox-cache: miss' "$tmpdir/miss2.h" \
  || fail "post-ingest summarize was not a miss (stale cache served)"
code=$(post /v1/summarize "$req" "$tmpdir/hit2.h" "$tmpdir/hit2.json")
grep -qi '^x-prox-cache: hit' "$tmpdir/hit2.h" \
  || fail "post-ingest second summarize was not a hit"
cmp -s "$tmpdir/miss2.json" "$tmpdir/hit2.json" \
  || fail "post-ingest hit served different bytes than the miss"

# --- 3. in-call resummarize directive: warm + cache priming ----------------
body="${batch2%\}},\"resummarize\":$resum_knobs}"
code=$(post /v1/ingest "$body" "$tmpdir/ingest2.h" "$tmpdir/ingest2.json")
[[ "$code" == 200 ]] || fail "ingest+resummarize returned $code:
$(cat "$tmpdir/ingest2.json")"
grep -q '"warm":true' "$tmpdir/ingest2.json" \
  || fail "resummarize was not warm: $(cat "$tmpdir/ingest2.json")"
code=$(post /v1/summarize "$req" "$tmpdir/primed.h" "$tmpdir/primed.json")
grep -qi '^x-prox-cache: hit' "$tmpdir/primed.h" \
  || fail "summarize after in-call resummarize was not a primed hit"

metrics=$(curl -s "http://127.0.0.1:$port/metrics")
echo "$metrics" | grep -q '^prox_ingest_batches_total 2' \
  || fail "prox_ingest_batches_total != 2"
echo "$metrics" | grep -q '^prox_warmstart_runs_total [1-9]' \
  || fail "prox_warmstart_runs_total did not move"
stop_server

# --- 4. replay byte-identity ----------------------------------------------
start_server --snapshot="$snap"
code=$(post /v1/ingest "$batch1" /dev/null /dev/null)
[[ "$code" == 200 ]] || fail "fresh-server ingest 1 returned $code"
code=$(post /v1/ingest "$batch2" /dev/null /dev/null)
[[ "$code" == 200 ]] || fail "fresh-server ingest 2 returned $code"
code=$(post /v1/summarize "$req" "$tmpdir/serverB.h" "$tmpdir/serverB.json")
[[ "$code" == 200 ]] || fail "fresh-server summarize returned $code"
stop_server

printf 'selectall\nsummarize 0.5 5\nquit\n' \
  | "$cli_bin" --json --load-snapshot="$snap" \
      --append-deltas="$tmpdir/deltas_plain.jsonl" \
      >"$tmpdir/cli_plain.out" || fail "CLI replay failed"
sed -n 's/^prox> {/{/p' "$tmpdir/cli_plain.out" >"$tmpdir/cli_plain.json"
[[ -s "$tmpdir/cli_plain.json" ]] || fail "CLI replay produced no JSON"
cmp -s "$tmpdir/serverB.json" "$tmpdir/cli_plain.json" \
  || fail "CLI replay summarize differs from the server's bytes"

# The offline maintainer takes the same warm path the server did.
printf 'quit\n' \
  | "$cli_bin" --load-snapshot="$snap" \
      --append-deltas="$tmpdir/deltas_resum.jsonl" \
      >"$tmpdir/cli_resum.out" || fail "CLI resummarize replay failed"
grep -q '^resummarized (full' "$tmpdir/cli_resum.out" \
  || fail "first CLI resummarize was not a full run:
$(cat "$tmpdir/cli_resum.out")"
grep -q '^resummarized (warm' "$tmpdir/cli_resum.out" \
  || fail "second CLI resummarize was not warm:
$(cat "$tmpdir/cli_resum.out")"

echo "ingest_smoke: OK (miss→hit→ingest→miss→hit, chained fingerprint," \
     "warm in-call resummarize, replay byte-identity)"
