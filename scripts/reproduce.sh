#!/usr/bin/env bash
# Reproduces everything: build, full test suite, and every Chapter 6
# figure/table (DESIGN.md §4), capturing the official outputs.
#
# Usage: scripts/reproduce.sh [scale]
#   scale  optional PROX_BENCH_SCALE (default 1.0) to grow the workloads.

set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

PROX_BENCH_SCALE="$SCALE" bash -c \
  'for b in build/bench/bench_*; do [ -x "$b" ] && "$b"; done' \
  2>&1 | tee bench_output.txt

echo
echo "done: test_output.txt, bench_output.txt (scale $SCALE)"
