#!/usr/bin/env bash
# The engine/transport seam, enforced (docs/EMBEDDING.md):
#
#   1. prox::serve is pure transport. No file under src/serve may include
#      engine-internal headers (engine/codec.h, engine/summary_cache.h,
#      engine/engine_metrics.h) or anything below the facade (service/,
#      summarize/, ingest/, ir/, store/). The only engine header the
#      transport may see is engine/engine.h.
#   2. include/prox_c.h is C-clean: it must compile as pure C11, no
#      C++-isms, no missing includes.
#   3. libprox_c.so exports only prox_* symbols: the version script and
#      --exclude-libs must keep the statically linked C++ engine out of
#      the dynamic symbol table.
#
# Usage: scripts/check_layering.sh [build-dir]
# The symbol check is skipped (with a note) when no build dir is given or
# the shared library has not been built there.
set -uo pipefail

cd "$(dirname "$0")/.."

build_dir=${1:-}
failures=0

note() { printf 'check_layering: %s\n' "$*"; }
fail() {
  printf 'check_layering: FAIL %s\n' "$*" >&2
  failures=$((failures + 1))
}

# --- 1. serve is pure transport ------------------------------------------
forbidden='^#include "(service|summarize|ingest|ir|store|capi)/'
offenders=$(grep -rEn "$forbidden" src/serve || true)
if [[ -n "$offenders" ]]; then
  fail "src/serve includes engine-internal layers:"
  printf '%s\n' "$offenders" >&2
fi

offenders=$(grep -rn '#include "engine/' src/serve | grep -v 'engine/engine\.h' || true)
if [[ -n "$offenders" ]]; then
  fail "src/serve includes engine internals (only engine/engine.h is allowed):"
  printf '%s\n' "$offenders" >&2
fi
note "serve include lint: OK (transport sees only engine/engine.h)"

# --- 1b. net is pure transport too ----------------------------------------
# prox::net (event loop + balancer) sits beside serve: it may include
# net/, serve/, exec/, obs/ and common/ — never the engine or anything
# below it. Handlers are opaque std::functions; the loop cannot know what
# they compute.
offenders=$(grep -rhn '#include "' src/net \
  | grep -vE '#include "(net|serve|exec|obs|common)/' || true)
if [[ -n "$offenders" ]]; then
  fail "src/net includes layers below the transport seam:"
  printf '%s\n' "$offenders" >&2
fi
note "net include lint: OK (event loop sees only serve/exec/obs/common)"

# --- 1c. every socket send is SIGPIPE-proof -------------------------------
# A peer that closes mid-write must surface as EPIPE, never as a
# process-killing SIGPIPE: every send(2) in the transport layers carries
# MSG_NOSIGNAL (docs/NET.md). The char class keeps string literals like
# "send(): " out of the match.
offenders=$(grep -rn '[^a-zA-Z_.:"]send(' src/serve src/net examples \
  | grep -v MSG_NOSIGNAL || true)
if [[ -n "$offenders" ]]; then
  fail "socket send() without MSG_NOSIGNAL:"
  printf '%s\n' "$offenders" >&2
fi
note "MSG_NOSIGNAL lint: OK (no raw socket sends)"

# --- 2. prox_c.h is pure C11 ---------------------------------------------
c_compiler=${CC:-cc}
if command -v "$c_compiler" >/dev/null 2>&1; then
  if ! "$c_compiler" -std=c11 -pedantic-errors -Wall -Wextra -Werror \
      -x c -fsyntax-only include/prox_c.h; then
    fail "include/prox_c.h does not compile as pure C11"
  else
    note "prox_c.h C11 syntax check: OK"
  fi
else
  note "no C compiler found; skipping prox_c.h C11 check"
fi

# --- 3. libprox_c.so exports only prox_* ---------------------------------
shared_lib=""
if [[ -n "$build_dir" ]]; then
  shared_lib=$(find "$build_dir" -name 'libprox_c.so*' -type f 2>/dev/null \
    | head -n 1)
fi
if [[ -n "$shared_lib" ]] && command -v nm >/dev/null 2>&1; then
  # Dynamic, defined, global symbols. Version-definition tags (PROX_C_1,
  # type A) and the linker's bookkeeping symbols are not API surface.
  leaked=$(nm -D --defined-only "$shared_lib" \
    | awk '$2 != "A" && $2 != "a" { print $3 }' \
    | grep -vE '^(prox_|__bss_start$|_edata$|_end$|_fini$|_init$)' || true)
  if [[ -n "$leaked" ]]; then
    fail "libprox_c.so leaks non-prox_ symbols:"
    printf '%s\n' "$leaked" >&2
  else
    note "libprox_c.so symbol surface: OK (prox_* only)"
  fi
  exported=$(nm -D --defined-only "$shared_lib" | grep -c ' prox_' || true)
  if [[ "$exported" -lt 10 ]]; then
    fail "libprox_c.so exports only $exported prox_* symbols (expected the full ABI)"
  fi
else
  note "libprox_c.so not found under '${build_dir:-<none>}'; skipping symbol check"
fi

if [[ "$failures" -gt 0 ]]; then
  note "$failures check(s) failed"
  exit 1
fi
note "all layering checks passed"
